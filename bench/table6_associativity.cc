/**
 * @file
 * Table 6: Banshee's DRAM cache miss rate as associativity sweeps
 * {1, 2, 4, 8} ways.
 *
 * Paper headline (Section 5.5.5): miss rate falls with associativity
 * with quickly diminishing returns above 4 ways (36.1 / 32.5 / 30.9 /
 * 30.7 % in the paper) — which is why 4 ways (2 PTE way bits) is the
 * default design point.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "table6_associativity");
    printBanner("Table 6: cache miss rate vs. associativity (Banshee)",
                "Banshee (MICRO'17), Table 6");

    const std::vector<std::uint32_t> ways = {1, 2, 4, 8};
    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (std::uint32_t ways_ : ways) {
            SystemConfig c = opt.base;
            c.workload = w;
            c.withScheme(SchemeKind::Banshee);
            c.banshee.ways = ways_;
            exps.push_back({w + "/w" + std::to_string(ways_), c});
        }
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    std::vector<std::string> headers = {"ways"};
    for (std::uint32_t w : ways)
        headers.push_back(std::to_string(w) + " way");
    TablePrinter table(headers, 12);
    table.printHeader();

    std::vector<std::string> row = {"miss rate"};
    for (std::uint32_t ways_ : ways) {
        double miss = 0.0;
        for (const auto &w : opt.workloads)
            miss += index.at(w, "w" + std::to_string(ways_)).missRate;
        row.push_back(fmt(100.0 * miss / opt.workloads.size(), 1) + "%");
    }
    table.printRow(row);

    std::printf("\nPaper: 36.1%% / 32.5%% / 30.9%% / 30.7%% — "
                "diminishing returns above 4 ways.\n");
    return 0;
}
