/**
 * @file
 * Figure 9: sweeping Banshee's sampling coefficient {1, 0.1, 0.01}:
 * (a) DRAM cache miss rate, (b) in-package traffic breakdown with
 * the Counter component split out.
 *
 * Paper headline (Section 5.5.4): the miss rate rises only slightly
 * as the coefficient shrinks, while counter traffic becomes
 * negligible at coefficients <= 0.1.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "fig9_sampling");
    printBanner("Figure 9: sampling-coefficient sweep (Banshee)",
                "Banshee (MICRO'17), Fig. 9");

    const std::vector<double> coeffs = {1.0, 0.1, 0.01};
    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (double coeff : coeffs) {
            SystemConfig c = opt.base;
            c.workload = w;
            c.withScheme(SchemeKind::Banshee);
            c.banshee.samplingCoeff = coeff;
            // Sweep the coefficient only: the replacement threshold
            // stays at the default design point (64 x 0.1 / 2). At
            // coefficient 1.0 the auto-formula would yield 32, which
            // exceeds the 5-bit counter maximum and would disable
            // replacement entirely.
            c.banshee.replaceThreshold = 3.2;
            exps.push_back({w + "/c" + fmt(coeff), c});
        }
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table({"coeff", "missRate", "HitData", "MissData", "Tag",
                        "Counter", "Replace", "Total"},
                       10);
    table.printHeader();

    for (double coeff : coeffs) {
        double miss = 0, hit = 0, missd = 0, tag = 0, ctr = 0, rep = 0;
        for (const auto &w : opt.workloads) {
            const RunResult &r = index.at(w, "c" + fmt(coeff));
            miss += r.missRate;
            hit += r.inPkgBpi(TrafficCat::HitData);
            missd += r.inPkgBpi(TrafficCat::MissData);
            tag += r.inPkgBpi(TrafficCat::Tag);
            ctr += r.inPkgBpi(TrafficCat::Counter);
            rep += r.inPkgBpi(TrafficCat::Replacement);
        }
        const double n = static_cast<double>(opt.workloads.size());
        table.printRow({fmt(coeff), fmt(miss / n, 3), fmt(hit / n),
                        fmt(missd / n), fmt(tag / n, 3), fmt(ctr / n, 3),
                        fmt(rep / n), fmt((hit + missd + tag + ctr + rep) /
                                          n)});
    }

    std::printf("\nExpected shape: miss rate rises slightly as the "
                "coefficient drops; Counter traffic\nshrinks ~10x per "
                "step and is negligible at <= 0.1.\n");
    return 0;
}
