/**
 * @file
 * Figure 6: off-package DRAM traffic in bytes per instruction for
 * every workload and cache scheme.
 *
 * Paper headline (Section 5.3): Banshee's off-package traffic is
 * 3.1 % lower than the best Alloy variant, 42.4 % lower than Unison
 * and 43.2 % lower than TDC.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "fig6_offpkg_traffic");
    printBanner("Figure 6: off-package DRAM traffic (bytes/instruction)",
                "Banshee (MICRO'17), Fig. 6");

    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (auto &e : schemeSweep(opt.base, w))
            exps.push_back(std::move(e));
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    const auto schemes = std::vector<std::string>{
        "Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee"};
    std::vector<std::string> headers = {"workload"};
    for (const auto &s : schemes)
        headers.push_back(s);
    TablePrinter table(headers, 12);
    table.printHeader();

    std::map<std::string, double> sums;
    for (const auto &w : opt.workloads) {
        std::vector<std::string> row = {w};
        for (const auto &s : schemes) {
            const double bpi = index.at(w, s).offPkgTotalBpi();
            row.push_back(fmt(bpi));
            sums[s] += bpi;
        }
        table.printRow(row);
    }
    table.printRule();
    std::vector<std::string> row = {"average"};
    for (const auto &s : schemes)
        row.push_back(fmt(sums[s] / opt.workloads.size()));
    table.printRow(row);

    const double banshee = sums["Banshee"];
    std::printf("\nBanshee vs Alloy 1 : %+.1f%%  (paper: -3.1%%)\n",
                100.0 * (banshee / sums["Alloy 1"] - 1.0));
    std::printf("Banshee vs Unison  : %+.1f%%  (paper: -42.4%%)\n",
                100.0 * (banshee / sums["Unison"] - 1.0));
    std::printf("Banshee vs TDC     : %+.1f%%  (paper: -43.2%%)\n",
                100.0 * (banshee / sums["TDC"] - 1.0));
    return 0;
}
