/**
 * @file
 * Extension: multi-tenant slice partitioning and QoS arbitration.
 *
 * Part 1 (isolation): a cache-friendly resident tenant (qos_resident:
 * slow sweeps of a set that fits its quota) is co-located with a
 * cache-hostile streaming tenant (qos_churn: an intense stream larger
 * than the whole device, whose per-page bursts out-count the
 * resident's leisurely revisits in the FBR directory). Three runs:
 *
 *  - solo: the resident tenant's cores alone on the machine;
 *  - quota: the same co-location with the cache partitioned 3:1 over
 *    the consistent-hash ring — the stream is confined to its own
 *    slices and the resident tenant's *miss rate* must stay within a
 *    small epsilon of solo;
 *  - shared: the unpartitioned baseline — the stream's bursts win
 *    admission everywhere and the resident tenant's miss rate
 *    inflates several-fold.
 *
 * The gated claim is deliberately the miss rate, not IPC-vs-solo:
 * sweeping this scenario showed co-location IPC cost is dominated by
 * shared-channel queueing (both tenants' requests ride the same
 * in-package channels), which slice placement does not govern — a
 * capacity quota guarantees *residency*, and the bench reports the
 * IPC and channel-utilization columns alongside so that split is
 * visible rather than hidden. (Bounding a tenant's channel share
 * would need a QoS-aware memory scheduler — see ROADMAP.)
 *
 * Part 2 (QoS arbitration): the quota mix restarted with a stale 1:1
 * slice layout under the 3:1 weights. The arbiter rebalances one
 * slice-drain per epoch until ownership matches the entitlement,
 * demonstrating runtime quota changes without a flush.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"
#include "workload/workloads.hh"

using namespace banshee;
using namespace banshee::benchutil;

namespace {

constexpr double kResidentWeight = 3.0;
constexpr double kChurnWeight = 1.0;

std::vector<TenantConfig>
mixTenants(std::uint32_t coresPerTenant)
{
    return {{"resident", "qos_resident", kResidentWeight, coresPerTenant},
            {"churn", "qos_churn", kChurnWeight, coresPerTenant}};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "ext_tenant");
    printBanner("Extension: multi-tenant DRAM-cache partitioning + QoS "
                "arbitration",
                "Banshee (MICRO'17) software-managed placement; Chang "
                "et al. (consistent hashing)");

    const std::uint32_t coresPerTenant = opt.base.numCores / 2;

    // Consolidation-node proportions: a DRAM cache sized a few times
    // the resident tenant's working set (the regime where quota
    // placement decides residency), an SRAM LLC small enough not to
    // couple the tenants through a resource quotas cannot protect,
    // and enough backing bandwidth that co-location is a *capacity*
    // question rather than a channel-bandwidth one (with the paper's
    // single off-package channel, any miss-heavy neighbor saturates
    // it and drowns the placement effect this bench isolates).
    opt.base.mem.inPkgCapacity = 8ull << 20;
    opt.base.footprintScale = 1.0 / 16.0;
    opt.base.hierarchy.l3Size = 512 * 1024;
    opt.base.mem.numOffPkgChannels = 4;

    // The resident tenant's performance rides on measuring from
    // steady-state residency: warm up long enough for its sweeps to
    // clear FBR admission regardless of the --quick budget (the
    // churn stream has no steady state to warm into).
    opt.base.warmupInstrPerCore =
        std::max<std::uint64_t>(opt.base.warmupInstrPerCore, 400'000);
    opt.base.autoWarmup = false;

    // ------------------------------------------- Part 1: isolation
    std::vector<Experiment> exps;
    {
        SystemConfig solo = opt.base;
        solo.numCores = coresPerTenant;
        solo.workload = "qos_resident";
        exps.push_back({"resident/solo", solo});

        SystemConfig quota = opt.base;
        quota.withTenants(mixTenants(coresPerTenant));
        exps.push_back({"resident/quota", quota});

        SystemConfig shared = opt.base;
        shared.withTenants(mixTenants(coresPerTenant),
                           /*partition=*/false);
        exps.push_back({"resident/shared", shared});
    }
    SweepPerf perf;
    std::vector<RunResult> results =
        runExperiments(exps, opt.threads, true, &perf);
    const RunResult &solo = results[0];
    const RunResult &quota = results[1];
    const RunResult &shared = results[2];

    const double quotaDeg = 100.0 * (1.0 - quota.tenants[0].ipc / solo.ipc);
    const double sharedDeg =
        100.0 * (1.0 - shared.tenants[0].ipc / solo.ipc);

    std::printf("\nResident tenant (weight %.0f of %.0f => %u of %u "
                "slices) vs the streaming tenant:\n",
                kResidentWeight, kResidentWeight + kChurnWeight,
                quota.tenants[0].slicesOwned,
                opt.base.resize.hash.numSlices);
    TablePrinter table({"run", "res IPC", "dIPC", "res miss", "churn IPC",
                        "res slices"},
                       13);
    table.printHeader();
    table.printRow({"solo", fmt(solo.ipc, 3), "-", fmt(solo.missRate, 3),
                    "-", "-"});
    table.printRow({"quota", fmt(quota.tenants[0].ipc, 3),
                    fmt(-quotaDeg, 1) + "%",
                    fmt(quota.tenants[0].missRate, 3),
                    fmt(quota.tenants[1].ipc, 3),
                    std::to_string(quota.tenants[0].slicesOwned) + "/" +
                        std::to_string(opt.base.resize.hash.numSlices)});
    table.printRow({"shared", fmt(shared.tenants[0].ipc, 3),
                    fmt(-sharedDeg, 1) + "%",
                    fmt(shared.tenants[0].missRate, 3),
                    fmt(shared.tenants[1].ipc, 3), "shared"});
    table.printRule();

    const double soloMiss = solo.missRate;
    const double quotaMiss = quota.tenants[0].missRate;
    const double sharedMiss = shared.tenants[0].missRate;
    const bool quotaHolds = quotaMiss <= soloMiss + 0.01;
    const bool sharedEvicts =
        sharedMiss >= 3.0 * quotaMiss && sharedMiss >= quotaMiss + 0.02;
    std::printf("\nIsolation (gated on residency): quota keeps the "
                "resident tenant's miss rate at\n%.3f vs %.3f solo "
                "(gate: within 0.01 -> %s); unpartitioned it inflates "
                "to %.3f\n(gate: >= 3x quota and quota+0.02 -> %s). "
                "The streaming tenant cannot evict the\nresident below "
                "its quota; in the shared cache it does.\n",
                quotaMiss, soloMiss, quotaHolds ? "PASS" : "FAIL",
                sharedMiss, sharedEvicts ? "PASS" : "FAIL");
    std::printf("\nCo-location IPC cost (vs solo): quota %.1f%%, "
                "shared %.1f%% — dominated by shared\nin-package "
                "channel queueing, which placement quotas do not "
                "govern (see header).\n",
                quotaDeg, sharedDeg);
    std::printf("\nChannel load (in-pkg / off-pkg bus util): solo "
                "%.2f/%.2f, quota %.2f/%.2f, shared %.2f/%.2f\n",
                solo.inPkgBusUtil, solo.offPkgBusUtil, quota.inPkgBusUtil,
                quota.offPkgBusUtil, shared.inPkgBusUtil,
                shared.offPkgBusUtil);
    std::printf("OS machinery (pteRuns/shootdowns/replBlocked): solo "
                "%llu/%llu/%llu, quota %llu/%llu/%llu, shared "
                "%llu/%llu/%llu\n",
                (unsigned long long)solo.pteUpdateRuns,
                (unsigned long long)solo.tlbShootdowns,
                (unsigned long long)solo.replacementsBlocked,
                (unsigned long long)quota.pteUpdateRuns,
                (unsigned long long)quota.tlbShootdowns,
                (unsigned long long)quota.replacementsBlocked,
                (unsigned long long)shared.pteUpdateRuns,
                (unsigned long long)shared.tlbShootdowns,
                (unsigned long long)shared.replacementsBlocked);
    std::printf("Mean LLC-miss service cycles: solo %.0f, quota %.0f, "
                "shared %.0f\n",
                solo.avgFetchLatency, quota.avgFetchLatency,
                shared.avgFetchLatency);

    // ------------------------------------- Part 2: QoS arbitration
    std::vector<Experiment> qosExps;
    {
        SystemConfig c = opt.base;
        c.withTenants(mixTenants(coresPerTenant));
        c.withQosArbiter();
        // Stale layout: slices still split 1:1 from an old quota; the
        // configured weights say 3:1.
        c.resize.tenantWeights = {1.0, 1.0};
        qosExps.push_back({"resident/qos-rebalance", c});
    }
    SweepPerf qosPerf;
    std::vector<RunResult> qosResults =
        runExperiments(qosExps, opt.threads, true, &qosPerf);
    const RunResult &qos = qosResults[0];

    std::printf("\nQoS arbitration after a quota change (layout 4/4, "
                "weights 3:1):\n");
    TablePrinter qt({"tenant", "slices", "IPC", "missRate", "inPkgMB"},
                    13);
    qt.printHeader();
    for (const TenantRunStats &t : qos.tenants) {
        qt.printRow({t.name,
                     std::to_string(t.slicesOwned) + "/" +
                         std::to_string(opt.base.resize.hash.numSlices),
                     fmt(t.ipc, 3), fmt(t.missRate, 3),
                     fmt(t.inPkgBytes / 1e6, 1)});
    }
    qt.printRule();
    std::printf("\nArbiter moved %llu slice(s) toward the 3:1 "
                "entitlement (resident now owns %u)\n",
                static_cast<unsigned long long>(qos.qosReassigns),
                qos.tenants[0].slicesOwned);

    // Fold the QoS sweep into the isolation sweep's results — and its
    // host perf: writeResultsJson requires one perf entry per result,
    // so --host-perf used to panic here.
    for (std::size_t i = 0; i < qosExps.size(); ++i) {
        exps.push_back(std::move(qosExps[i]));
        results.push_back(qosResults[i]);
    }
    perf.wallSeconds += qosPerf.wallSeconds;
    perf.experiments.insert(perf.experiments.end(),
                            qosPerf.experiments.begin(),
                            qosPerf.experiments.end());
    maybeWriteJson(opt, "ext_tenant", exps, results, &perf);
    return 0;
}
