/**
 * @file
 * Extension: multi-tenant slice partitioning and QoS arbitration.
 *
 * Part 1 (isolation): a cache-friendly resident tenant (qos_resident:
 * slow sweeps of a set that fits its quota) is co-located with a
 * cache-hostile streaming tenant (qos_churn: an intense stream larger
 * than the whole device, whose per-page bursts out-count the
 * resident's leisurely revisits in the FBR directory). Three runs:
 *
 *  - solo: the resident tenant's cores alone on the machine;
 *  - quota: the same co-location with the cache partitioned 3:1 over
 *    the consistent-hash ring — the stream is confined to its own
 *    slices and the resident tenant's *miss rate* must stay within a
 *    small epsilon of solo;
 *  - shared: the unpartitioned baseline — the stream's bursts win
 *    admission everywhere and the resident tenant's miss rate
 *    inflates several-fold.
 *
 * The gated claim is deliberately the miss rate, not IPC-vs-solo:
 * sweeping this scenario showed co-location IPC cost is dominated by
 * shared-channel queueing (both tenants' requests ride the same
 * in-package channels), which slice placement does not govern — a
 * capacity quota guarantees *residency*, and the bench reports the
 * IPC and channel-utilization columns alongside so that split is
 * visible rather than hidden. (Bounding a tenant's channel share
 * would need a QoS-aware memory scheduler — see ROADMAP.)
 *
 * Part 2 (QoS arbitration): the quota mix restarted with a stale 1:1
 * slice layout under the 3:1 weights. The arbiter rebalances one
 * slice-drain per epoch until ownership matches the entitlement,
 * demonstrating runtime quota changes without a flush.
 *
 * Part 3 (--sched, the QoS memory scheduler): the channel-queueing
 * cost Part 1 leaves on the table. The quota mix is re-run twice at
 * the same 3:1 slice quota — once with the stock FR-FCFS channel
 * scheduler, once with the credit/age-bound QoS scheduler
 * (SystemConfig::withDramQos) whose per-tenant bandwidth credits
 * follow the same 3:1 entitlement. The claim: the resident tenant's
 * IPC-vs-solo gap shrinks and its p95 in-package queueing sojourn
 * drops, because the churn tenant's bursts can no longer monopolize
 * the shared channels once its epoch credit is spent.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"
#include "workload/workloads.hh"

using namespace banshee;
using namespace banshee::benchutil;

namespace {

constexpr double kResidentWeight = 3.0;
constexpr double kChurnWeight = 1.0;

std::vector<TenantConfig>
mixTenants(std::uint32_t coresPerTenant)
{
    return {{"resident", "qos_resident", kResidentWeight, coresPerTenant},
            {"churn", "qos_churn", kChurnWeight, coresPerTenant}};
}

} // namespace

int
main(int argc, char **argv)
{
    bool sched = false;
    BenchOptions opt =
        parseArgs(argc, argv, "ext_tenant", {{"--sched", &sched}});
    printBanner("Extension: multi-tenant DRAM-cache partitioning + QoS "
                "arbitration",
                "Banshee (MICRO'17) software-managed placement; Chang "
                "et al. (consistent hashing)");

    const std::uint32_t coresPerTenant = opt.base.numCores / 2;

    // Consolidation-node proportions: a DRAM cache sized a few times
    // the resident tenant's working set (the regime where quota
    // placement decides residency), an SRAM LLC small enough not to
    // couple the tenants through a resource quotas cannot protect,
    // and enough backing bandwidth that co-location is a *capacity*
    // question rather than a channel-bandwidth one (with the paper's
    // single off-package channel, any miss-heavy neighbor saturates
    // it and drowns the placement effect this bench isolates).
    opt.base.mem.inPkgCapacity = 8ull << 20;
    opt.base.footprintScale = 1.0 / 16.0;
    opt.base.hierarchy.l3Size = 512 * 1024;
    opt.base.mem.numOffPkgChannels = 4;

    // The resident tenant's performance rides on measuring from
    // steady-state residency: warm up long enough for its sweeps to
    // clear FBR admission regardless of the --quick budget (the
    // churn stream has no steady state to warm into).
    opt.base.warmupInstrPerCore =
        std::max<std::uint64_t>(opt.base.warmupInstrPerCore, 400'000);
    opt.base.autoWarmup = false;

    // ------------------------------------------- Part 1: isolation
    std::vector<Experiment> exps;
    {
        SystemConfig solo = opt.base;
        solo.numCores = coresPerTenant;
        solo.workload = "qos_resident";
        exps.push_back({"resident/solo", solo});

        SystemConfig quota = opt.base;
        quota.withTenants(mixTenants(coresPerTenant));
        exps.push_back({"resident/quota", quota});

        SystemConfig shared = opt.base;
        shared.withTenants(mixTenants(coresPerTenant),
                           /*partition=*/false);
        exps.push_back({"resident/shared", shared});
    }
    SweepPerf perf;
    std::vector<RunResult> results =
        runExperiments(exps, opt.threads, true, &perf);
    const RunResult &solo = results[0];
    const RunResult &quota = results[1];
    const RunResult &shared = results[2];

    const double quotaDeg = 100.0 * (1.0 - quota.tenants[0].ipc / solo.ipc);
    const double sharedDeg =
        100.0 * (1.0 - shared.tenants[0].ipc / solo.ipc);

    std::printf("\nResident tenant (weight %.0f of %.0f => %u of %u "
                "slices) vs the streaming tenant:\n",
                kResidentWeight, kResidentWeight + kChurnWeight,
                quota.tenants[0].slicesOwned,
                opt.base.resize.hash.numSlices);
    TablePrinter table({"run", "res IPC", "dIPC", "res miss", "churn IPC",
                        "res slices"},
                       13);
    table.printHeader();
    table.printRow({"solo", fmt(solo.ipc, 3), "-", fmt(solo.missRate, 3),
                    "-", "-"});
    table.printRow({"quota", fmt(quota.tenants[0].ipc, 3),
                    fmt(-quotaDeg, 1) + "%",
                    fmt(quota.tenants[0].missRate, 3),
                    fmt(quota.tenants[1].ipc, 3),
                    std::to_string(quota.tenants[0].slicesOwned) + "/" +
                        std::to_string(opt.base.resize.hash.numSlices)});
    table.printRow({"shared", fmt(shared.tenants[0].ipc, 3),
                    fmt(-sharedDeg, 1) + "%",
                    fmt(shared.tenants[0].missRate, 3),
                    fmt(shared.tenants[1].ipc, 3), "shared"});
    table.printRule();

    const double soloMiss = solo.missRate;
    const double quotaMiss = quota.tenants[0].missRate;
    const double sharedMiss = shared.tenants[0].missRate;
    const bool quotaHolds = quotaMiss <= soloMiss + 0.01;
    const bool sharedEvicts =
        sharedMiss >= 3.0 * quotaMiss && sharedMiss >= quotaMiss + 0.02;
    std::printf("\nIsolation (gated on residency): quota keeps the "
                "resident tenant's miss rate at\n%.3f vs %.3f solo "
                "(gate: within 0.01 -> %s); unpartitioned it inflates "
                "to %.3f\n(gate: >= 3x quota and quota+0.02 -> %s). "
                "The streaming tenant cannot evict the\nresident below "
                "its quota; in the shared cache it does.\n",
                quotaMiss, soloMiss, quotaHolds ? "PASS" : "FAIL",
                sharedMiss, sharedEvicts ? "PASS" : "FAIL");
    std::printf("\nCo-location IPC cost (vs solo): quota %.1f%%, "
                "shared %.1f%% — dominated by shared\nin-package "
                "channel queueing, which placement quotas do not "
                "govern (see header).\n",
                quotaDeg, sharedDeg);
    std::printf("\nChannel load (in-pkg / off-pkg bus util): solo "
                "%.2f/%.2f, quota %.2f/%.2f, shared %.2f/%.2f\n",
                solo.inPkgBusUtil, solo.offPkgBusUtil, quota.inPkgBusUtil,
                quota.offPkgBusUtil, shared.inPkgBusUtil,
                shared.offPkgBusUtil);
    std::printf("OS machinery (pteRuns/shootdowns/replBlocked): solo "
                "%llu/%llu/%llu, quota %llu/%llu/%llu, shared "
                "%llu/%llu/%llu\n",
                (unsigned long long)solo.pteUpdateRuns,
                (unsigned long long)solo.tlbShootdowns,
                (unsigned long long)solo.replacementsBlocked,
                (unsigned long long)quota.pteUpdateRuns,
                (unsigned long long)quota.tlbShootdowns,
                (unsigned long long)quota.replacementsBlocked,
                (unsigned long long)shared.pteUpdateRuns,
                (unsigned long long)shared.tlbShootdowns,
                (unsigned long long)shared.replacementsBlocked);
    std::printf("Mean LLC-miss service cycles: solo %.0f, quota %.0f, "
                "shared %.0f\n",
                solo.avgFetchLatency, quota.avgFetchLatency,
                shared.avgFetchLatency);

    // ------------------------------------- Part 2: QoS arbitration
    std::vector<Experiment> qosExps;
    {
        SystemConfig c = opt.base;
        c.withTenants(mixTenants(coresPerTenant));
        c.withQosArbiter();
        // Stale layout: slices still split 1:1 from an old quota; the
        // configured weights say 3:1.
        c.resize.tenantWeights = {1.0, 1.0};
        qosExps.push_back({"resident/qos-rebalance", c});
    }
    SweepPerf qosPerf;
    std::vector<RunResult> qosResults =
        runExperiments(qosExps, opt.threads, true, &qosPerf);
    const RunResult &qos = qosResults[0];

    std::printf("\nQoS arbitration after a quota change (layout 4/4, "
                "weights 3:1):\n");
    TablePrinter qt({"tenant", "slices", "IPC", "missRate", "inPkgMB"},
                    13);
    qt.printHeader();
    for (const TenantRunStats &t : qos.tenants) {
        qt.printRow({t.name,
                     std::to_string(t.slicesOwned) + "/" +
                         std::to_string(opt.base.resize.hash.numSlices),
                     fmt(t.ipc, 3), fmt(t.missRate, 3),
                     fmt(t.inPkgBytes / 1e6, 1)});
    }
    qt.printRule();
    std::printf("\nArbiter moved %llu slice(s) toward the 3:1 "
                "entitlement (resident now owns %u)\n",
                static_cast<unsigned long long>(qos.qosReassigns),
                qos.tenants[0].slicesOwned);

    // Fold the QoS sweep into the isolation sweep's results — and its
    // host perf: writeResultsJson requires one perf entry per result,
    // so --host-perf used to panic here.
    for (std::size_t i = 0; i < qosExps.size(); ++i) {
        exps.push_back(std::move(qosExps[i]));
        results.push_back(qosResults[i]);
    }
    perf.wallSeconds += qosPerf.wallSeconds;
    perf.experiments.insert(perf.experiments.end(),
                            qosPerf.experiments.begin(),
                            qosPerf.experiments.end());

    // ----------------------- Part 3: QoS memory scheduler (--sched)
    if (sched) {
        std::vector<Experiment> schedExps;
        {
            SystemConfig off = opt.base;
            off.withTenants(mixTenants(coresPerTenant));
            // Telemetry on in both runs (it does not perturb the
            // simulation — pinned by TracingDoesNotPerturbSimulation)
            // so the resident tenant's p95 queueing is comparable. An
            // empty path keeps the JSONL sink off.
            if (!off.telemetry.enabled)
                off.withTelemetry("");
            schedExps.push_back({"resident/sched-off", off});

            SystemConfig on = off;
            // The read-age cap is the lever that cuts the resident
            // tenant's tail: an over-age read pre-empts the migration
            // write drains the churn tenant triggers. It must sit
            // above the typical sojourn (else FR-FCFS degenerates to
            // FCFS and row locality collapses) and below the drain
            // tail it is meant to clip.
            // Short write-drain batches are the second lever: the
            // churn tenant's migration bursts otherwise hold the
            // channel in 48->16 drains that every resident read
            // landing mid-drain waits out.
            on.withDramQos(/*epochCycles=*/8192, /*readAgeCap=*/4096,
                           /*writeAgeCap=*/16384, /*writeDrainHigh=*/24,
                           /*writeDrainLow=*/8);
            schedExps.push_back({"resident/sched-on", on});
        }
        SweepPerf schedPerf;
        std::vector<RunResult> schedResults =
            runExperiments(schedExps, opt.threads, true, &schedPerf);
        const RunResult &soff = schedResults[0];
        const RunResult &son = schedResults[1];

        auto p95Of = [](const RunResult &r, const std::string &name) {
            for (const HistogramSummary &h : r.histograms)
                if (h.name == name)
                    return h.p95;
            return std::uint64_t{0};
        };
        const std::uint64_t qlatOff =
            p95Of(soff, "tenant.resident.queueLat");
        const std::uint64_t qlatOn =
            p95Of(son, "tenant.resident.queueLat");
        const double gapOff =
            100.0 * (1.0 - soff.tenants[0].ipc / solo.ipc);
        const double gapOn =
            100.0 * (1.0 - son.tenants[0].ipc / solo.ipc);

        std::printf("\nQoS memory scheduler (same 3:1 slice quota; "
                    "channel credits follow the entitlement):\n");
        TablePrinter st({"run", "res IPC", "gap vs solo", "p95 qlat",
                         "churn IPC", "churn defers"},
                        14);
        st.printHeader();
        st.printRow({"sched-off", fmt(soff.tenants[0].ipc, 3),
                     fmt(gapOff, 1) + "%",
                     std::to_string((unsigned long long)qlatOff),
                     fmt(soff.tenants[1].ipc, 3), "-"});
        st.printRow({"sched-on", fmt(son.tenants[0].ipc, 3),
                     fmt(gapOn, 1) + "%",
                     std::to_string((unsigned long long)qlatOn),
                     fmt(son.tenants[1].ipc, 3),
                     std::to_string(
                         (unsigned long long)son.tenants[1].qosDefers)});
        st.printRule();

        const bool gapCloses = gapOn < gapOff;
        const bool qlatDrops = qlatOn < qlatOff;
        std::printf("\nScheduler closes the resident tenant's "
                    "IPC-vs-solo gap from %.1f%% to %.1f%% (%s)\nand "
                    "cuts its p95 in-package queueing from %llu to "
                    "%llu core cycles (%s);\nthe churn tenant was "
                    "deferred %llu times after spending its epoch "
                    "credit\n(resident grants %llu, defers %llu).\n",
                    gapOff, gapOn, gapCloses ? "PASS" : "FAIL",
                    (unsigned long long)qlatOff,
                    (unsigned long long)qlatOn,
                    qlatDrops ? "PASS" : "FAIL",
                    (unsigned long long)son.tenants[1].qosDefers,
                    (unsigned long long)son.tenants[0].qosGrants,
                    (unsigned long long)son.tenants[0].qosDefers);

        for (std::size_t i = 0; i < schedExps.size(); ++i) {
            exps.push_back(std::move(schedExps[i]));
            results.push_back(schedResults[i]);
        }
        perf.wallSeconds += schedPerf.wallSeconds;
        perf.experiments.insert(perf.experiments.end(),
                                schedPerf.experiments.begin(),
                                schedPerf.experiments.end());
    }

    maybeWriteJson(opt, "ext_tenant", exps, results, &perf);
    return 0;
}
