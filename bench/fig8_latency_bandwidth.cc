/**
 * @file
 * Figure 8: sensitivity to in-package DRAM latency (100 % / 66 % /
 * 50 % of off-package) and bandwidth (8x / 4x / 2x off-package,
 * i.e. 8/4/2 channels) for Banshee, Alloy, TDC and Unison, geomean
 * speedup over NoCache.
 *
 * Paper headline (Section 5.5.3): all schemes improve with more
 * bandwidth / less latency; bandwidth matters far more than latency;
 * Banshee's edge grows as bandwidth shrinks.
 *
 * By default this bench sweeps a representative six-workload subset
 * (the full 16-workload sweep is 384 simulations; use --workloads to
 * override).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

namespace {

const std::vector<std::pair<std::string, SchemeKind>> kSchemes = {
    {"Banshee", SchemeKind::Banshee},
    {"Alloy", SchemeKind::Alloy},
    {"TDC", SchemeKind::Tdc},
    {"Unison", SchemeKind::Unison},
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "fig8_latency_bandwidth");
    bool defaultList = true;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--workloads")
            defaultList = false;
    if (defaultList) {
        opt.workloads = {"pagerank", "graph500", "mcf",
                         "lbm", "omnetpp", "libquantum"};
    }

    printBanner("Figure 8: DRAM cache latency and bandwidth sweeps "
                "(geomean speedup vs NoCache)",
                "Banshee (MICRO'17), Fig. 8");

    std::vector<Experiment> exps;
    // One NoCache baseline per workload (independent of cache params).
    for (const auto &w : opt.workloads) {
        SystemConfig c = opt.base;
        c.workload = w;
        c.withScheme(SchemeKind::NoCache);
        exps.push_back({w + "/NoCache", c});
    }

    const std::vector<double> latScales = {1.0, 0.66, 0.5};
    const std::vector<std::uint32_t> channels = {8, 4, 2};

    auto addPoint = [&](const std::string &tag, double latScale,
                        std::uint32_t chans) {
        for (const auto &w : opt.workloads) {
            for (const auto &[name, kind] : kSchemes) {
                SystemConfig c = opt.base;
                c.workload = w;
                c.withScheme(kind);
                c.withAlloyFillProb(0.1);
                c.mem.inPkgTiming.latencyScale = latScale;
                c.mem.numMcs = chans;
                exps.push_back({w + "/" + name + "@" + tag, c});
            }
        }
    };
    for (double s : latScales)
        addPoint("lat" + fmt(s), s, opt.base.mem.numMcs);
    for (std::uint32_t ch : channels)
        addPoint("bw" + std::to_string(ch), 1.0, ch);

    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    auto printSweep = [&](const std::string &title,
                          const std::vector<std::string> &tags,
                          const std::vector<std::string> &labels) {
        std::printf("\n(%s)\n", title.c_str());
        std::vector<std::string> headers = {"scheme"};
        for (const auto &l : labels)
            headers.push_back(l);
        TablePrinter table(headers, 12);
        table.printHeader();
        for (const auto &[name, kind] : kSchemes) {
            std::vector<std::string> row = {name};
            for (const auto &tag : tags) {
                std::vector<double> speedups;
                for (const auto &w : opt.workloads) {
                    const RunResult &r = index.at(w, name + "@" + tag);
                    const RunResult &b = index.at(w, "NoCache");
                    speedups.push_back(static_cast<double>(b.cycles) /
                                       r.cycles);
                }
                row.push_back(fmt(geomean(speedups)));
            }
            table.printRow(row);
        }
    };

    printSweep("b: DRAM cache latency, relative to off-package",
               {"lat" + fmt(1.0), "lat" + fmt(0.66), "lat" + fmt(0.5)},
               {"100%", "66%", "50%"});
    printSweep("c: DRAM cache bandwidth, relative to off-package",
               {"bw8", "bw4", "bw2"}, {"8X", "4X", "2X"});
    return 0;
}
