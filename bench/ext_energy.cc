/**
 * @file
 * Extension: DRAM energy — scheme comparison and power-cap resizing.
 *
 * Part 1 (the paper's energy argument, Section 5 made quantitative):
 * total DRAM energy per instruction for Unison, TDC, Alloy-1 and
 * Banshee. Banshee's bandwidth savings are energy savings: every tag
 * probe, speculative fill and footprint over-fetch the baselines
 * issue is burst + I/O energy Banshee never spends, and off-package
 * bytes cost ~4x the interface energy of in-package ones.
 *
 * Part 2 (power-cap resizing): the same Banshee system re-run under a
 * PowerCapPolicy whose watt budget sits below the uncapped run's
 * measured in-package power. The policy sheds slices until the device
 * fits the budget; deactivated slices stop refreshing and gate their
 * background power, so the capped run must report strictly lower
 * background+refresh energy at a bounded IPC cost.
 *
 * Defaults to four paper workloads that are robust at --quick scale
 * (omnetpp, mcf, milc, gcc); --workloads overrides.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "ext_energy");
    if (!opt.workloadsExplicit)
        opt.workloads = {"omnetpp", "mcf", "milc", "gcc"};
    printBanner("Extension: DRAM energy per scheme + power-cap-driven "
                "cache resizing",
                "Banshee (MICRO'17) energy claim; Chang et al. "
                "(resizing); Bakhshalipour et al. (energy)");

    const std::vector<std::string> schemes = {"Unison", "TDC", "Alloy 1",
                                              "Banshee"};
    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (const auto &e : schemeSweep(opt.base, w)) {
            for (const auto &s : schemes) {
                if (e.label == w + "/" + s)
                    exps.push_back(e);
            }
        }
    }
    SweepPerf perf;
    auto results = runExperiments(exps, opt.threads, true, &perf);
    const ResultIndex index(exps, results);

    // ------------------------------------------------ Part 1: energy
    TablePrinter table({"workload", "Unison", "TDC", "Alloy 1", "Banshee",
                        "Banshee bg+ref"},
                       15);
    std::printf("\nTotal DRAM energy per instruction (pJ/instr; "
                "in-package + off-package,\ndynamic + standby + "
                "background + refresh):\n");
    table.printHeader();

    int winsVsAlloy = 0;
    int winsVsUnison = 0;
    for (const auto &w : opt.workloads) {
        const RunResult &banshee = index.at(w, "Banshee");
        if (banshee.energyPerInstrPJ() <
            index.at(w, "Alloy 1").energyPerInstrPJ()) {
            ++winsVsAlloy;
        }
        if (banshee.energyPerInstrPJ() <
            index.at(w, "Unison").energyPerInstrPJ()) {
            ++winsVsUnison;
        }
        const double bgRef =
            banshee.instructions == 0
                ? 0.0
                : banshee.inPkgBgRefreshPJ() / banshee.instructions;
        table.printRow({w, fmt(index.at(w, "Unison").energyPerInstrPJ(), 1),
                        fmt(index.at(w, "TDC").energyPerInstrPJ(), 1),
                        fmt(index.at(w, "Alloy 1").energyPerInstrPJ(), 1),
                        fmt(banshee.energyPerInstrPJ(), 1), fmt(bgRef, 1)});
    }
    std::printf("\nBanshee uses less total DRAM energy/instr than "
                "Alloy-1 on %d/%zu and Unison on %d/%zu workloads\n",
                winsVsAlloy, opt.workloads.size(), winsVsUnison,
                opt.workloads.size());

    // -------------------------------------- Part 2: power-cap resize
    // Budget: 25% under the uncapped run's measured in-package power —
    // decisively below the epoch-to-epoch dynamic noise, so the
    // policy sheds slices to its floor (6 of 8) and holds, gating a
    // quarter of the background+refresh power at a bounded IPC cost.
    std::vector<Experiment> capExps;
    for (const auto &w : opt.workloads) {
        const RunResult &un = index.at(w, "Banshee");
        SystemConfig c = opt.base;
        c.workload = w;
        c.withScheme(SchemeKind::Banshee);
        c.withPowerCap(0.75 * un.inPkgAvgPowerWatts, /*minSlices=*/6);
        capExps.push_back(Experiment{w + "/PowerCap", c});
    }
    auto capResults = runExperiments(capExps, opt.threads);
    const ResultIndex capIndex(capExps, capResults);

    std::printf("\nPower-capped Banshee vs uncapped (cap = 75%% of the "
                "measured in-package power;\nshrink executed by the "
                "consistent-hash migration engine):\n");
    TablePrinter capTable({"workload", "bg+ref un", "bg+ref cap",
                           "saved", "slices", "dIPC"},
                          14);
    capTable.printHeader();

    int bgWins = 0;
    std::vector<double> ipcRatios;
    for (const auto &w : opt.workloads) {
        const RunResult &un = index.at(w, "Banshee");
        const RunResult &cap = capIndex.at(w, "PowerCap");
        if (cap.inPkgBgRefreshPJ() < un.inPkgBgRefreshPJ())
            ++bgWins;
        ipcRatios.push_back(cap.ipc / un.ipc);
        const double savedPct =
            un.inPkgBgRefreshPJ() == 0.0
                ? 0.0
                : 100.0 * (1.0 - cap.inPkgBgRefreshPJ() /
                                     un.inPkgBgRefreshPJ());
        capTable.printRow(
            {w, fmt(un.inPkgBgRefreshPJ() / 1e6, 2) + " uJ",
             fmt(cap.inPkgBgRefreshPJ() / 1e6, 2) + " uJ",
             fmt(savedPct, 1) + "%",
             std::to_string(cap.finalActiveSlices) + "/" +
                 std::to_string(opt.base.resize.hash.numSlices),
             fmt(100.0 * (cap.ipc / un.ipc - 1.0), 1) + "%"});
    }
    capTable.printRule();
    std::printf("\nPower cap lowers background+refresh energy on %d/%zu "
                "workloads; geomean IPC ratio %.3f\n",
                bgWins, opt.workloads.size(), geomean(ipcRatios));

    for (std::size_t i = 0; i < capExps.size(); ++i) {
        exps.push_back(std::move(capExps[i]));
        results.push_back(capResults[i]);
    }
    maybeWriteJson(opt, "ext_energy", exps, results, &perf);
    return 0;
}
