/**
 * @file
 * Section 5.4.2: BATMAN-style bandwidth balancing layered on Alloy
 * and on Banshee. When in-package DRAM carries more than 80 % of the
 * traffic, part of the address space bypasses the cache so both
 * memories' bandwidth gets used.
 *
 * Paper headline: +5 % average (up to +24 %) for Alloy, +1 % average
 * (up to +11 %) for Banshee — smaller for Banshee because it already
 * moves less total traffic. With balancing on, Banshee still wins by
 * 12.4 %.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "ext_bandwidth_balance");
    printBanner("Section 5.4.2: BATMAN bandwidth balancing on Alloy "
                "and Banshee",
                "Banshee (MICRO'17), Section 5.4.2");

    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (const bool batman : {false, true}) {
            const std::string suffix = batman ? "+BW" : "";
            {
                SystemConfig c = opt.base;
                c.workload = w;
                c.withScheme(SchemeKind::Alloy);
                c.withAlloyFillProb(0.1);
                c.enableBatman = batman;
                exps.push_back({w + "/Alloy" + suffix, c});
            }
            {
                SystemConfig c = opt.base;
                c.workload = w;
                c.withScheme(SchemeKind::Banshee);
                c.enableBatman = batman;
                exps.push_back({w + "/Banshee" + suffix, c});
            }
        }
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table({"scheme", "avg gain", "max gain"}, 14);
    table.printHeader();

    double bansheeBw = 0.0, alloyBw = 0.0;
    for (const std::string scheme : {"Alloy", "Banshee"}) {
        double sum = 0.0, best = -1.0;
        std::vector<double> balanced, plain;
        for (const auto &w : opt.workloads) {
            const RunResult &off = index.at(w, scheme);
            const RunResult &on = index.at(w, scheme + "+BW");
            const double gain =
                static_cast<double>(off.cycles) / on.cycles - 1.0;
            sum += gain;
            best = std::max(best, gain);
            balanced.push_back(1.0 / on.cycles);
            plain.push_back(1.0 / off.cycles);
        }
        const double n = static_cast<double>(opt.workloads.size());
        table.printRow({scheme, fmt(100.0 * sum / n, 1) + "%",
                        fmt(100.0 * best, 1) + "%"});
        const double g = geomean(balanced);
        if (scheme == "Banshee")
            bansheeBw = g;
        else
            alloyBw = g;
    }

    std::printf("\nWith balancing on both, Banshee vs Alloy: %+.1f%% "
                "(paper: +12.4%%)\n",
                100.0 * (bansheeBw / alloyBw - 1.0));
    std::printf("Paper: Alloy +5%% avg (max +24%%); Banshee +1%% avg "
                "(max +11%%).\n");
    return 0;
}
