/**
 * @file
 * Section 5.4.1: large (2 MB) page support. Graph workloads with all
 * data on 2 MB pages (sampling coefficient 0.001, threshold scaled
 * per Section 4.2.2), perfect TLBs for both configurations, compared
 * against the 4 KB-page baseline Banshee.
 *
 * Paper headline: +3.6 % average from more accurate hot-page
 * detection at 2 MB granularity plus fewer counter and PTE updates.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "ext_large_pages");
    bool defaultList = true;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--workloads")
            defaultList = false;
    if (defaultList)
        opt.workloads = WorkloadFactory::graphNames();

    printBanner("Section 5.4.1: 2 MB large pages vs 4 KB pages "
                "(Banshee, graph suite, perfect TLBs)",
                "Banshee (MICRO'17), Section 5.4.1");

    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        SystemConfig small = opt.base;
        small.workload = w;
        small.withScheme(SchemeKind::Banshee);
        small.tlb.missLatency = 0; // perfect TLB (both configs)
        // 2 MB promotions move 512x the data of a 4 KB one; in the
        // paper they amortize over 100 G instructions. Give both
        // configs a long warmup so steady state (not cold fills) is
        // measured.
        small.warmupInstrPerCore = 3 * opt.base.warmupInstrPerCore;
        exps.push_back({w + "/4K", small});

        SystemConfig large = small;
        large.banshee.pageBits = kLargePageBits;
        // The paper uses coefficient 0.001 over 100 G instructions;
        // at our ~10^4x shorter runs that rate never accumulates
        // counter evidence, so we rescale the sampling coefficient to
        // the run length and pin the threshold to the same effective
        // value the paper's formula yields (~16 counter points).
        large.banshee.samplingCoeff = 0.02;
        large.banshee.replaceThreshold = 24.0;
        large.mem.mcStripeBits = kLargePageBits;
        exps.push_back({w + "/2M", large});
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table({"workload", "4K cycles", "2M cycles", "2M gain",
                        "4K miss%", "2M miss%"},
                       13);
    table.printHeader();

    std::vector<double> gains;
    for (const auto &w : opt.workloads) {
        const RunResult &s = index.at(w, "4K");
        const RunResult &l = index.at(w, "2M");
        const double gain = static_cast<double>(s.cycles) / l.cycles;
        gains.push_back(gain);
        table.printRow({w, std::to_string(s.cycles),
                        std::to_string(l.cycles),
                        fmt(100.0 * (gain - 1.0), 1) + "%",
                        fmt(100.0 * s.missRate, 1),
                        fmt(100.0 * l.missRate, 1)});
    }
    table.printRule();
    std::printf("average 2M-page gain: %+.1f%%  (paper: +3.6%%)\n",
                100.0 * (geomean(gains) - 1.0));
    return 0;
}
