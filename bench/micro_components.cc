/**
 * @file
 * google-benchmark microbenchmarks of the library's hot data
 * structures: Tag Buffer, FBR directory, alias-table sampling, SRAM
 * cache lookups, DRAM channel scheduling and workload generation.
 * These guard the simulator's own performance (simulation speed), not
 * the paper's results.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/alias_table.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "core/fbr_directory.hh"
#include "core/tag_buffer.hh"
#include "dram/dram_model.hh"
#include "workload/pattern.hh"

using namespace banshee;

static void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

static void
BM_AliasTableSample(benchmark::State &state)
{
    AliasTable table(zipfWeights(1 << 16, 0.9));
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_AliasTableSample);

static void
BM_TagBufferLookup(benchmark::State &state)
{
    TagBuffer tb(TagBufferParams{}, "bm");
    Rng rng(3);
    for (std::uint32_t i = 0; i < 512; ++i)
        tb.insertClean(i * 97, PageMapping{true, 1});
    PageNum p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tb.lookup(p * 97));
        p = (p + 1) & 1023;
    }
}
BENCHMARK(BM_TagBufferLookup);

static void
BM_TagBufferRemapHarvest(benchmark::State &state)
{
    for (auto _ : state) {
        TagBuffer tb(TagBufferParams{}, "bm");
        for (std::uint32_t i = 0; i < 700; ++i)
            tb.insertRemap(i * 31, PageMapping{true, 0});
        benchmark::DoNotOptimize(tb.harvest());
    }
}
BENCHMARK(BM_TagBufferRemapHarvest);

static void
BM_FbrDirectoryAccess(benchmark::State &state)
{
    FbrParams p;
    p.numSets = 2048;
    FbrDirectory dir(p);
    std::uint32_t set = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir.findCached(set, set * 5));
        benchmark::DoNotOptimize(dir.minCountWay(set));
        set = (set + 1) & 2047;
    }
}
BENCHMARK(BM_FbrDirectoryAccess);

static void
BM_SramCacheLookup(benchmark::State &state)
{
    CacheParams p;
    p.sizeBytes = 8ull << 20;
    p.ways = 16;
    Cache cache(p);
    Rng rng(4);
    for (int i = 0; i < 100000; ++i)
        cache.insert(rng.nextBelow(1 << 20), false);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.lookup(rng.nextBelow(1 << 20), false));
}
BENCHMARK(BM_SramCacheLookup);

static void
BM_DramChannelThroughput(benchmark::State &state)
{
    // Measures simulated-requests-per-second of the DRAM model.
    for (auto _ : state) {
        EventQueue eq;
        DramModel dram(eq, DramTiming{}, 1, "bm");
        Rng rng(5);
        for (int i = 0; i < 1000; ++i) {
            DramRequest req;
            req.addr = rng.nextBelow(1 << 28) & ~63ull;
            req.bytes = 64;
            dram.access(0, std::move(req));
        }
        eq.run();
        benchmark::DoNotOptimize(eq.now());
    }
}
BENCHMARK(BM_DramChannelThroughput);

static void
BM_ZipfPatternNext(benchmark::State &state)
{
    ZipfPagePattern pattern(0, 1 << 18, 0.85, 2, 0.1, 3);
    Rng rng(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(pattern.next(rng).addr);
}
BENCHMARK(BM_ZipfPatternNext);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [&sum, i] { sum += i; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

BENCHMARK_MAIN();
