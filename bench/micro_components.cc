/**
 * @file
 * google-benchmark microbenchmarks of the library's hot data
 * structures: Tag Buffer, FBR directory, alias-table sampling, SRAM
 * cache lookups, DRAM channel scheduling and workload generation.
 * These guard the simulator's own performance (simulation speed), not
 * the paper's results.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/alias_table.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "core/banshee.hh"
#include "core/fbr_directory.hh"
#include "core/tag_buffer.hh"
#include "dram/dram_model.hh"
#include "mem/mem_system.hh"
#include "os/os_services.hh"
#include "os/page_table.hh"
#include "sim/domain_engine.hh"
#include "workload/pattern.hh"

using namespace banshee;

static void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

static void
BM_AliasTableSample(benchmark::State &state)
{
    AliasTable table(zipfWeights(1 << 16, 0.9));
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_AliasTableSample);

static void
BM_TagBufferLookup(benchmark::State &state)
{
    TagBuffer tb(TagBufferParams{}, "bm");
    Rng rng(3);
    for (std::uint32_t i = 0; i < 512; ++i)
        tb.insertClean(i * 97, PageMapping{true, 1});
    PageNum p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tb.lookup(p * 97));
        p = (p + 1) & 1023;
    }
}
BENCHMARK(BM_TagBufferLookup);

static void
BM_TagBufferRemapHarvest(benchmark::State &state)
{
    for (auto _ : state) {
        TagBuffer tb(TagBufferParams{}, "bm");
        for (std::uint32_t i = 0; i < 700; ++i)
            tb.insertRemap(i * 31, PageMapping{true, 0});
        benchmark::DoNotOptimize(tb.harvest());
    }
}
BENCHMARK(BM_TagBufferRemapHarvest);

static void
BM_FbrDirectoryAccess(benchmark::State &state)
{
    FbrParams p;
    p.numSets = 2048;
    FbrDirectory dir(p);
    std::uint32_t set = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dir.findCached(set, set * 5));
        benchmark::DoNotOptimize(dir.minCountWay(set));
        set = (set + 1) & 2047;
    }
}
BENCHMARK(BM_FbrDirectoryAccess);

static void
BM_SramCacheLookup(benchmark::State &state)
{
    CacheParams p;
    p.sizeBytes = 8ull << 20;
    p.ways = 16;
    Cache cache(p);
    Rng rng(4);
    for (int i = 0; i < 100000; ++i)
        cache.insert(rng.nextBelow(1 << 20), false);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.lookup(rng.nextBelow(1 << 20), false));
}
BENCHMARK(BM_SramCacheLookup);

static void
BM_DramChannelThroughput(benchmark::State &state)
{
    // Measures simulated-requests-per-second of the DRAM model.
    for (auto _ : state) {
        EventQueue eq;
        DramModel dram(eq, DramTiming{}, 1, "bm");
        Rng rng(5);
        for (int i = 0; i < 1000; ++i) {
            DramRequest req;
            req.addr = rng.nextBelow(1 << 28) & ~63ull;
            req.bytes = 64;
            dram.access(0, std::move(req));
        }
        eq.run();
        benchmark::DoNotOptimize(eq.now());
    }
}
BENCHMARK(BM_DramChannelThroughput);

static void
BM_ZipfPatternNext(benchmark::State &state)
{
    ZipfPagePattern pattern(0, 1 << 18, 0.85, 2, 0.1, 3);
    Rng rng(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(pattern.next(rng).addr);
}
BENCHMARK(BM_ZipfPatternNext);

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i, [&sum, i] { sum += i; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_EventQueueOneShotSteadyState(benchmark::State &state)
{
    // Steady-state completion traffic: each firing schedules the
    // next, so the pooled one-shot node is recycled every iteration
    // (the pattern DRAM done-callbacks produce).
    EventQueue eq;
    std::uint64_t fired = 0;
    std::function<void()> chain = [&] {
        fired++;
        eq.schedule(eq.now() + 3, chain);
    };
    eq.schedule(1, chain);
    for (auto _ : state) {
        eq.run(eq.now() + 3000);
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueueOneShotSteadyState);

static void
BM_TickEventKickRearm(benchmark::State &state)
{
    // The DRAM-kick pattern: one intrusive event per channel,
    // repeatedly superseded to earlier cycles and re-armed from its
    // own callback. Measures arm/supersede/fire cost with no
    // allocation per arm.
    EventQueue eq;
    std::uint64_t kicks = 0;
    TickEvent kick;
    kick.setCallback([&] {
        kicks++;
        eq.schedule(kick, eq.now() + 8);
    });
    eq.schedule(kick, 4);
    for (auto _ : state) {
        // Supersede the pending arm to an earlier cycle, as a request
        // arrival would, then run up to it.
        const Cycle earlier =
            kick.when() > eq.now() + 2 ? kick.when() - 2 : kick.when();
        eq.schedule(kick, earlier);
        eq.run(earlier);
        benchmark::DoNotOptimize(kicks);
    }
}
BENCHMARK(BM_TickEventKickRearm);

static void
BM_EventQueueFarHeap(benchmark::State &state)
{
    // Epoch-scale scheduling: events far beyond the timing wheel
    // exercise the far heap and its migration into the window.
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (int i = 0; i < 64; ++i) {
            eq.schedule(static_cast<Cycle>(100'000 + i * 50'000),
                        [&sum, i] { sum += static_cast<unsigned>(i); });
        }
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_EventQueueFarHeap);

// ------------------------------------------------------------------
// Event-domain engine (sim/domain_engine.hh)
// ------------------------------------------------------------------

static void
BM_DomainEpochBarrier(benchmark::State &state)
{
    // Barrier round-trip with idle channel domains: release two
    // workers, run an (almost) empty frontend window, wait, exchange
    // empty mailboxes. This is the fixed per-epoch tax every parallel
    // run pays W simulated cycles.
    EventQueue fe;
    DomainEngine engine(fe, 2);
    MemSystemParams mp;
    mp.numMcs = 4;
    mp.hasOffPkg = false;
    MemSystem mem(fe, mp, &engine);
    engine.attach(mem);

    const Cycle w = engine.epochCycles();
    for (auto _ : state) {
        bool fired = false;
        fe.schedule(fe.now() + w, [&fired](Cycle) { fired = true; });
        engine.runPhase([&fired] { return fired; });
    }
    state.counters["epochs"] = static_cast<double>(engine.epochsRun());
}
BENCHMARK(BM_DomainEpochBarrier);

static void
BM_DomainMailboxRoundTrip(benchmark::State &state)
{
    // Full cross-domain cycle: frontend pushes a request (mailbox
    // envelope), the channel domain runs it, the completion merges
    // back and wakes the frontend callback — mailbox push + drain on
    // both directions plus the epoch barriers in between.
    EventQueue fe;
    DomainEngine engine(fe, 2);
    MemSystemParams mp;
    mp.numMcs = 4;
    mp.hasOffPkg = false;
    MemSystem mem(fe, mp, &engine);
    engine.attach(mem);

    std::uint64_t received = 0, sent = 0;
    for (auto _ : state) {
        fe.schedule(fe.now() + 1, [&](Cycle) {
            DramRequest req;
            req.addr = (sent * 4096) & ((1u << 24) - 1);
            req.bytes = 64;
            req.done = [&received](Cycle) { ++received; };
            mem.inPkg()->access(0, std::move(req));
        });
        ++sent;
        engine.runPhase([&] { return received == sent; });
    }
}
BENCHMARK(BM_DomainMailboxRoundTrip);

// ------------------------------------------------------------------
// Per-core mapping memo (core/banshee.hh)
// ------------------------------------------------------------------

namespace {

/** Minimal scheme surroundings (mirrors tests/scheme_harness.hh). */
struct MemoBench
{
    EventQueue eq;
    DramModel inPkg{eq, DramTiming{}, 1, "bmIn"};
    DramModel offPkg{eq, DramTiming{}, 1, "bmOff"};
    PageTableManager pageTable;
    OsServices os{eq, pageTable};
    SchemeContext ctx;
    std::unique_ptr<BansheeScheme> scheme;

    MemoBench()
    {
        ctx.eq = &eq;
        ctx.inPkg = &inPkg;
        ctx.offPkg = &offPkg;
        ctx.mcId = 0;
        ctx.numMcs = 1;
        ctx.cacheBytesPerMc = 8ull << 20;
        ctx.pageTable = &pageTable;
        ctx.os = &os;
        ctx.seed = 1;
        scheme = std::make_unique<BansheeScheme>(ctx, BansheeConfig{});
    }
};

} // namespace

static void
BM_MappingMemoHit(benchmark::State &state)
{
    // The fetch fast path: same page, same core — one compare.
    MemoBench b;
    for (auto _ : state)
        benchmark::DoNotOptimize(b.scheme->setOfMemo(0x123, 0));
}
BENCHMARK(BM_MappingMemoHit);

static void
BM_MappingMemoMissRecompute(benchmark::State &state)
{
    // Alternating pages defeat the depth-1 MRU: every lookup pays the
    // full hash + modulus (the pre-memo cost, for comparison).
    MemoBench b;
    PageNum p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(b.scheme->setOfMemo(0x1000 + (p & 1), 0));
        ++p;
    }
}
BENCHMARK(BM_MappingMemoMissRecompute);

BENCHMARK_MAIN();
