/**
 * @file
 * Extension: consolidation-scale sweep throughput (the engine-core
 * refactor's payoff bench).
 *
 * The paper's evaluation — and the mode-comparison sweeps framed by
 * "Die-Stacked DRAM: Memory, Cache, or MemCache?" — multiply scheme
 * × capacity × tenant grids until the simulator itself is the
 * bottleneck. This bench drives a 64-core / 16-tenant consolidation
 * node over a scheme × cache-capacity grid (plus quota-partitioned
 * Banshee points) through the sharded sweep runner and reports the
 * *host* cost of every experiment: wall-clock seconds, simulation
 * events committed, and events/sec, plus the sweep-level aggregate.
 *
 * Throughput claim: with N worker threads the sweep's aggregate
 * events/sec must scale toward N× the serial figure (each experiment
 * is an isolated System; see the contract note in sim/runner.hh).
 * Run with --compare-serial to measure the ratio on this machine:
 * the same grid is re-run at --threads 1 and the speedup printed.
 * On a many-core runner the parallel sweep is expected to clear 5×.
 *
 * All simulated results stay deterministic: the grid's per-
 * experiment RunResults are independent of thread count and shard
 * size; only the hostPerf numbers vary run to run.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

namespace {

/** 16 tenants x 4 cores: a consolidation mix cycling the paper's
 *  workloads, with a spread of quota weights. */
std::vector<TenantConfig>
gridTenants()
{
    // Graph workloads share one heap across cores and cannot be
    // partitioned into tenants; the pool is SPEC-style + mixes.
    std::vector<std::string> pool;
    for (const std::string &n : WorkloadFactory::paperNames()) {
        if (!WorkloadFactory::isGraph(n))
            pool.push_back(n);
    }
    std::vector<TenantConfig> tenants;
    tenants.reserve(16);
    for (std::uint32_t t = 0; t < 16; ++t) {
        TenantConfig tc;
        tc.name = "t" + std::to_string(t);
        tc.workload = pool[t % pool.size()];
        tc.weight = 1.0 + static_cast<double>(t % 4); // 1..4
        tc.numCores = 4;
        tenants.push_back(tc);
    }
    return tenants;
}

std::vector<Experiment>
buildGrid(const SystemConfig &base)
{
    std::vector<Experiment> exps;

    struct SchemePoint
    {
        const char *label;
        SchemeKind kind;
    };
    const SchemePoint schemes[] = {{"Banshee", SchemeKind::Banshee},
                                   {"Alloy", SchemeKind::Alloy},
                                   {"Unison", SchemeKind::Unison},
                                   {"TDC", SchemeKind::Tdc}};
    const std::uint64_t capacities[] = {64ull << 20, 128ull << 20};

    for (const SchemePoint &s : schemes) {
        for (const std::uint64_t cap : capacities) {
            SystemConfig c = base;
            c.withScheme(s.kind);
            if (s.kind == SchemeKind::Alloy)
                c.withAlloyFillProb(1.0);
            c.mem.inPkgCapacity = cap;
            c.withTenants(gridTenants(), /*partition=*/false);
            exps.push_back(
                {std::string(s.label) + "/" +
                     std::to_string(cap >> 20) + "M/shared",
                 c});
        }
    }
    // Quota-partitioned points (the ring implies the Banshee scheme).
    for (const std::uint64_t cap : capacities) {
        SystemConfig c = base;
        c.withScheme(SchemeKind::Banshee);
        c.mem.inPkgCapacity = cap;
        // Enough ring slices that 16 weighted tenants each hold one.
        c.resize.hash.numSlices = 32;
        c.withTenants(gridTenants(), /*partition=*/true);
        exps.push_back(
            {"Banshee/" + std::to_string(cap >> 20) + "M/quota", c});
    }
    return exps;
}

void
printPerfTable(const std::vector<Experiment> &exps,
               const SweepPerf &perf, unsigned threads)
{
    TablePrinter table({"experiment", "wall s", "Mevents", "Mev/s"}, 16);
    table.printHeader();
    table.printRule();
    for (std::size_t i = 0; i < exps.size(); ++i) {
        const RunPerf &p = perf.experiments[i];
        table.printRow({exps[i].label, fmt(p.wallSeconds, 2),
                        fmt(static_cast<double>(p.events) / 1e6, 1),
                        fmt(p.eventsPerSec() / 1e6, 2)});
    }
    table.printRule();
    std::printf("sweep: %zu experiments, %u threads, %.2f s wall, "
                "%.1f Mevents, %.2f Mevents/s aggregate\n",
                exps.size(), threads, perf.wallSeconds,
                static_cast<double>(perf.totalEvents()) / 1e6,
                perf.eventsPerSec() / 1e6);
}

/**
 * A/B mode for the intra-system event-domain engine
 * (sim/domain_engine.hh): instead of sweeping the grid, run its most
 * DRAM-bound point — Unison at 64 MB, where channel events dominate
 * the serial profile — once on the serial engine and twice split
 * across @p domains event domains, print the measured
 * single-experiment speedup, and assert the two domain runs are
 * bit-equal (the engine's reproducibility contract at fixed N).
 *
 * The labels are domain-count-independent so one committed baseline
 * gates the hostPerf numbers regardless of the N CI picks.
 */
int
runIntraDomainMode(BenchOptions &opt, std::uint32_t domains)
{
    SystemConfig c = opt.base;
    c.withScheme(SchemeKind::Unison);
    c.mem.inPkgCapacity = 64ull << 20;
    c.withTenants(gridTenants(), /*partition=*/false);

    SystemConfig p = c;
    p.withIntraDomains(domains);

    const std::vector<Experiment> exps = {
        {"Unison/64M/serial", c},
        {"Unison/64M/domains", p},
        {"Unison/64M/domains-repeat", p},
    };

    std::printf("A/B: one %u-core experiment, serial engine vs %u "
                "event domains (frontend + up to %u channel workers)\n\n",
                c.numCores, domains, domains - 1);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && hw < domains) {
        std::printf("note: host has %u CPU%s for %u domain threads — "
                    "the pipeline cannot overlap and the speedup below "
                    "measures oversubscription overhead, not the "
                    "engine's scaling\n\n",
                    hw, hw == 1 ? "" : "s", domains);
    }

    SweepPerf perf;
    perf.experiments.resize(exps.size());
    std::vector<RunResult> results;
    double wall = 0.0;
    for (const Experiment &e : exps) {
        SweepPerf one;
        results.push_back(
            runExperiments({e}, 1, true, &one).front());
        perf.experiments[results.size() - 1] = one.experiments.front();
        wall += one.wallSeconds;
    }
    perf.wallSeconds = wall;

    const RunResult &a = results[1];
    const RunResult &b = results[2];
    sim_assert(a.instructions == b.instructions && a.cycles == b.cycles &&
                   a.ipc == b.ipc && a.missRate == b.missRate &&
                   a.inPkgBytes == b.inPkgBytes &&
                   a.offPkgBytes == b.offPkgBytes &&
                   a.totalEnergyPJ() == b.totalEnergyPJ(),
               "repeated runs at --intra-domains %u diverged — the "
               "domain engine lost bit-reproducibility",
               domains);
    std::printf("\nrepeated domain runs bit-equal: OK "
                "(ipc %.4f, %llu cycles)\n",
                a.ipc, static_cast<unsigned long long>(a.cycles));

    printPerfTable(exps, perf, 1);

    const double serialWall = perf.experiments[0].wallSeconds;
    const double parWall = std::min(perf.experiments[1].wallSeconds,
                                    perf.experiments[2].wallSeconds);
    std::printf("\nsingle-experiment speedup at --intra-domains %u: "
                "%.2fx (serial %.2f s -> %.2f s)\n",
                domains, parWall > 0.0 ? serialWall / parWall : 0.0,
                serialWall, parWall);

    maybeWriteJson(opt, "ext_scale_intra", exps, results, &perf);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel off our own flags before the shared parser (it rejects
    // unknown arguments).
    bool compareSerial = false;
    bool quick = false;
    std::uint32_t intraDomains = 1;
    std::vector<char *> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--compare-serial") == 0) {
            compareSerial = true;
            continue;
        }
        if (std::strcmp(argv[i], "--intra-domains") == 0 &&
            i + 1 < argc) {
            intraDomains =
                static_cast<std::uint32_t>(std::strtoul(argv[++i],
                                                        nullptr, 10));
            if (intraDomains < 1) {
                std::fprintf(stderr,
                             "--intra-domains needs a count >= 1\n");
                return 2;
            }
            continue;
        }
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true; // also forwarded to the shared parser
        args.push_back(argv[i]);
    }
    BenchOptions opt =
        parseArgs(static_cast<int>(args.size()), args.data(),
                  "ext_scale");
    printBanner("Extension: sweep throughput at consolidation scale "
                "(64 cores, 16 tenants)",
                "Banshee (MICRO'17) evaluation grids; sharded sweep "
                "runner");

    opt.base.numCores = 64;
    // Keep one experiment's work at sweep-friendly size: the grid is
    // 10 systems of 64 cores each, so per-core budgets a fraction of
    // the default already total ~10x an ext_tenant run. --quick is a
    // smoke budget sized so a sanitizer build finishes in CI minutes.
    opt.base.warmupInstrPerCore = quick ? 20'000 : 150'000;
    opt.base.measureInstrPerCore = quick ? 40'000 : 300'000;
    opt.base.autoWarmup = false;
    opt.base.footprintScale = 1.0 / 4.0;

    if (intraDomains > 1)
        return runIntraDomainMode(opt, intraDomains);

    const std::vector<Experiment> exps = buildGrid(opt.base);

    SweepPerf perf;
    std::vector<RunResult> results =
        runExperiments(exps, opt.threads, true, &perf);

    std::printf("\nHost cost per experiment (%s):\n",
                opt.threads == 1 ? "serial" : "sharded across threads");
    printPerfTable(exps, perf, opt.threads);

    // Simulated sanity column so the bench is not a pure stopwatch:
    // aggregate IPC per scheme point.
    std::printf("\nSimulated aggregate IPC (determinism check — "
                "independent of --threads):\n");
    TablePrinter ipcTable({"experiment", "IPC", "missRate"}, 16);
    ipcTable.printHeader();
    ipcTable.printRule();
    for (std::size_t i = 0; i < exps.size(); ++i) {
        ipcTable.printRow({exps[i].label, fmt(results[i].ipc, 3),
                           fmt(results[i].missRate, 4)});
    }

    if (compareSerial) {
        std::printf("\nRe-running the grid serially (--threads 1) for "
                    "the speedup ratio...\n");
        SweepPerf serial;
        std::vector<RunResult> serialResults =
            runExperiments(exps, 1, true, &serial);
        for (std::size_t i = 0; i < results.size(); ++i) {
            sim_assert(serialResults[i].ipc == results[i].ipc &&
                           serialResults[i].cycles == results[i].cycles,
                       "experiment '%s' diverged across thread counts",
                       exps[i].label.c_str());
        }
        const double speedup =
            serial.wallSeconds > 0.0 && perf.wallSeconds > 0.0
                ? serial.wallSeconds / perf.wallSeconds
                : 0.0;
        std::printf("\nserial: %.2f s wall (%.2f Mevents/s); "
                    "sharded: %.2f s wall (%.2f Mevents/s); "
                    "speedup %.2fx\n",
                    serial.wallSeconds, serial.eventsPerSec() / 1e6,
                    perf.wallSeconds, perf.eventsPerSec() / 1e6,
                    speedup);
    }

    maybeWriteJson(opt, "ext_scale", exps, results, &perf);
    return 0;
}
