/**
 * @file
 * Figure 4: speedup over NoCache (and MPKI) for every workload under
 * Unison, TDC, Alloy 1, Alloy 0.1, Banshee and CacheOnly.
 *
 * Paper headline (Section 5.2): Banshee outperforms Unison by 68.9 %,
 * TDC by 26.1 % and Alloy by 15.0 % on the geometric mean; Banshee
 * and Alloy 0.1 lose on lbm; Banshee beats CacheOnly on some
 * bandwidth-bound graph codes.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "fig4_speedup");
    printBanner("Figure 4: speedup normalized to NoCache (MPKI in "
                "parentheses)",
                "Banshee (MICRO'17), Fig. 4");

    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (auto &e : schemeSweep(opt.base, w))
            exps.push_back(std::move(e));
    }
    SweepPerf perf;
    const auto results = runExperiments(exps, opt.threads, true, &perf);
    const ResultIndex index(exps, results);

    const auto schemes = figureSchemes();
    std::vector<std::string> headers = {"workload"};
    for (const auto &s : schemes)
        headers.push_back(s);
    TablePrinter table(headers, 16);
    table.printHeader();

    std::map<std::string, std::vector<double>> speedups;
    for (const auto &w : opt.workloads) {
        const double baseCycles =
            static_cast<double>(index.at(w, "NoCache").cycles);
        std::vector<std::string> row = {w};
        for (const auto &s : schemes) {
            const RunResult &r = index.at(w, s);
            const double speedup = baseCycles / r.cycles;
            speedups[s].push_back(speedup);
            row.push_back(fmt(speedup) + " (" + fmt(r.mpki, 1) + ")");
        }
        table.printRow(row);
    }

    table.printRule();
    std::vector<std::string> row = {"geo-mean"};
    for (const auto &s : schemes)
        row.push_back(fmt(geomean(speedups[s])));
    table.printRow(row);

    // The paper's headline ratios.
    const double banshee = geomean(speedups["Banshee"]);
    std::printf("\nBanshee vs Unison   : %+.1f%%  (paper: +68.9%%)\n",
                100.0 * (banshee / geomean(speedups["Unison"]) - 1.0));
    std::printf("Banshee vs TDC      : %+.1f%%  (paper: +26.1%%)\n",
                100.0 * (banshee / geomean(speedups["TDC"]) - 1.0));
    const double alloyBest = std::max(geomean(speedups["Alloy 1"]),
                                      geomean(speedups["Alloy 0.1"]));
    std::printf("Banshee vs Alloy    : %+.1f%%  (paper: +15.0%% vs best "
                "Alloy)\n",
                100.0 * (banshee / alloyBest - 1.0));
    maybeWriteJson(opt, "fig4_speedup", exps, results, &perf);
    return 0;
}
