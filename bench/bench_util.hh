/**
 * @file
 * Shared plumbing for the bench binaries: run-length presets, CLI
 * parsing (--quick / --full / --workloads a,b,c), and result lookup.
 */

#ifndef BANSHEE_BENCH_BENCH_UTIL_HH
#define BANSHEE_BENCH_BENCH_UTIL_HH

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/system_config.hh"
#include "workload/workloads.hh"

namespace banshee::benchutil {

struct BenchOptions
{
    SystemConfig base = SystemConfig::scaledDefault();
    std::vector<std::string> workloads = WorkloadFactory::paperNames();
    unsigned threads = 0;
};

/**
 * Parse common flags:
 *   --quick          quarter-length runs (CI smoke)
 *   --full           paper-sized system (1 GB cache, long runs)
 *   --workloads a,b  restrict the workload list
 *   --threads N      worker threads
 */
inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            opt.base.warmupInstrPerCore /= 4;
            opt.base.measureInstrPerCore /= 4;
        } else if (arg == "--full") {
            opt.base = SystemConfig::paperDefault();
        } else if (arg == "--workloads" && i + 1 < argc) {
            opt.workloads.clear();
            std::string list = argv[++i];
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                opt.workloads.push_back(
                    list.substr(pos, comma == std::string::npos
                                         ? comma
                                         : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--full] "
                         "[--workloads a,b,c] [--threads N]\n",
                         argv[0]);
            std::exit(1);
        }
    }
    return opt;
}

/** Index results of a sweep by (workload, scheme-label suffix). */
class ResultIndex
{
  public:
    ResultIndex(const std::vector<Experiment> &exps,
                const std::vector<RunResult> &results)
    {
        for (std::size_t i = 0; i < exps.size(); ++i)
            byLabel_[exps[i].label] = &results[i];
    }

    const RunResult &
    at(const std::string &workload, const std::string &scheme) const
    {
        return *byLabel_.at(workload + "/" + scheme);
    }

    bool
    has(const std::string &workload, const std::string &scheme) const
    {
        return byLabel_.count(workload + "/" + scheme) > 0;
    }

  private:
    std::map<std::string, const RunResult *> byLabel_;
};

/** The scheme labels used across Figures 4-6, in the paper's order. */
inline std::vector<std::string>
figureSchemes()
{
    return {"Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee",
            "CacheOnly"};
}

} // namespace banshee::benchutil

#endif // BANSHEE_BENCH_BENCH_UTIL_HH
