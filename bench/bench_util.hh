/**
 * @file
 * Shared plumbing for the bench binaries: run-length presets, CLI
 * parsing (--quick / --full / --workloads a,b,c / --json path /
 * --telemetry path / --verbose), and result lookup.
 */

#ifndef BANSHEE_BENCH_BENCH_UTIL_HH
#define BANSHEE_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/system_config.hh"
#include "workload/workloads.hh"

namespace banshee::benchutil {

struct BenchOptions
{
    SystemConfig base = SystemConfig::scaledDefault();
    std::vector<std::string> workloads = WorkloadFactory::paperNames();
    /** True when --workloads was given (benches with their own
     *  defaults only override the list when the user did not). */
    bool workloadsExplicit = false;
    unsigned threads = 0;
    /** Empty = no JSON output. */
    std::string jsonPath;
    /** Stamp host wall-clock / events-per-sec into --json output.
     *  Opt-in: host timings are nondeterministic, and default JSON
     *  output is guarded byte-identical across engine refactors. */
    bool hostPerf = false;
    /** Non-empty when --spans was given: the directory span traces
     *  land in (one <label>.trace.json per experiment). */
    std::string spansDir;
};

/**
 * Parse common flags:
 *   --quick          quarter-length runs (CI smoke)
 *   --full           paper-sized system (1 GB cache, long runs)
 *   --workloads a,b  restrict the workload list
 *   --threads N      worker threads
 *   --json path      also emit machine-readable results (BENCH_*.json)
 *   --host-perf      stamp wall-clock + events/sec into --json output
 *   --telemetry path epoch-resolved JSONL trace (telemetry_summary.py);
 *                    a directory path writes one <label>.jsonl per run
 *   --spans[=N]      span tracing into SPANS_<bench>/<label>.trace.json
 *                    with sample shift N (default 6 = 1/64 of pages)
 *   --verbose / -v   raise log verbosity (also: BANSHEE_LOG env var)
 *
 * @p benchName names the binary in usage/error messages (argv[0] when
 * empty) and the default --spans output directory.
 *
 * @p extraFlags lets a bench register additional boolean switches
 * (e.g. ext_tenant's --sched): each pair maps a flag spelling to the
 * bool it sets. Extra flags appear in the usage line.
 */
inline BenchOptions
parseArgs(int argc, char **argv, const std::string &benchName = "",
          std::initializer_list<std::pair<const char *, bool *>>
              extraFlags = {})
{
    BenchOptions opt;
    const std::string prog = benchName.empty() ? argv[0] : benchName;
    auto usage = [&prog, &extraFlags](const std::string &why) {
        std::fprintf(stderr, "%s: %s\n", prog.c_str(), why.c_str());
        std::string extra;
        for (const auto &fl : extraFlags)
            extra += std::string(" [") + fl.first + "]";
        std::fprintf(stderr,
                     "usage: %s [--quick] [--full] "
                     "[--workloads a,b,c] [--threads N] [--json path] "
                     "[--host-perf] [--telemetry path] [--spans[=N]] "
                     "[--verbose|-v]%s\n",
                     prog.c_str(), extra.c_str());
        std::exit(1);
    };
    auto matchExtra = [&extraFlags](const std::string &arg) {
        for (const auto &fl : extraFlags) {
            if (arg == fl.first) {
                *fl.second = true;
                return true;
            }
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (matchExtra(arg)) {
            // handled
        } else if (arg == "--quick") {
            opt.base.warmupInstrPerCore /= 4;
            opt.base.measureInstrPerCore /= 4;
        } else if (arg == "--full") {
            opt.base = SystemConfig::paperDefault();
        } else if (arg == "--workloads" && i + 1 < argc) {
            opt.workloads.clear();
            opt.workloadsExplicit = true;
            std::string list = argv[++i];
            std::size_t pos = 0;
            // Split on commas, skipping empty tokens so stray commas
            // ("a,", "a,,b") do not inject an unknown-workload fault.
            while (pos < list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::size_t end =
                    comma == std::string::npos ? list.size() : comma;
                if (end > pos)
                    opt.workloads.push_back(list.substr(pos, end - pos));
                pos = end + 1;
            }
            if (opt.workloads.empty())
                usage("--workloads needs at least one workload name");
        } else if (arg == "--threads" && i + 1 < argc) {
            // Strict parse: atoi would map garbage ("abc") to 0,
            // which silently means "use every core".
            const char *s = argv[++i];
            char *end = nullptr;
            const unsigned long v = std::strtoul(s, &end, 10);
            if (*s == '\0' || end == nullptr || *end != '\0' ||
                v > 4096) {
                usage(std::string("--threads needs a number in "
                                  "[0, 4096], got '") +
                      s + "'");
            }
            opt.threads = static_cast<unsigned>(v);
        } else if (arg == "--json" && i + 1 < argc) {
            opt.jsonPath = argv[++i];
        } else if (arg == "--host-perf") {
            opt.hostPerf = true;
        } else if (arg == "--telemetry" && i + 1 < argc) {
            opt.base.withTelemetry(argv[++i]);
        } else if (arg == "--spans" ||
                   arg.rfind("--spans=", 0) == 0) {
            // Same strict-parse discipline as --threads: reject
            // garbage shifts instead of silently sampling everything.
            std::uint32_t shift = 6;
            if (arg.size() > 7) {
                const char *s = arg.c_str() + 8;
                char *end = nullptr;
                const unsigned long v = std::strtoul(s, &end, 10);
                if (*s == '\0' || end == nullptr || *end != '\0' ||
                    v > 24) {
                    usage(std::string("--spans needs a sample shift in "
                                      "[0, 24], got '") +
                          s + "'");
                }
                shift = static_cast<std::uint32_t>(v);
            }
            opt.spansDir = "SPANS_" + prog;
            opt.base.withSpanTrace(opt.spansDir + "/", shift);
        } else if (arg == "--verbose" || arg == "-v") {
            ++banshee::logVerbosity;
        } else {
            usage("unknown or incomplete argument '" + arg + "'");
        }
    }
    if (!opt.spansDir.empty()) {
        std::printf("[spans] tracing 1/%u of pages into %s/ "
                    "(scripts/spans_to_perfetto.py)\n",
                    1u << opt.base.spans.sampleShift,
                    opt.spansDir.c_str());
    }
    return opt;
}

/** Emit BENCH_*.json when --json was given (shared by every bench).
 *  Pass the sweep's SweepPerf to honor --host-perf; host timings are
 *  stamped only when that flag was given. */
inline void
maybeWriteJson(const BenchOptions &opt, const std::string &bench,
               const std::vector<Experiment> &exps,
               const std::vector<RunResult> &results,
               const SweepPerf *perf = nullptr)
{
    if (opt.jsonPath.empty())
        return;
    std::vector<std::string> labels;
    labels.reserve(exps.size());
    for (const auto &e : exps)
        labels.push_back(e.label);
    writeResultsJson(opt.jsonPath, bench, labels, results,
                     opt.hostPerf ? perf : nullptr);
    std::printf("\n[json] wrote %zu results to %s\n", results.size(),
                opt.jsonPath.c_str());
}

/** Index results of a sweep by (workload, scheme-label suffix). */
class ResultIndex
{
  public:
    ResultIndex(const std::vector<Experiment> &exps,
                const std::vector<RunResult> &results)
    {
        for (std::size_t i = 0; i < exps.size(); ++i)
            byLabel_[exps[i].label] = &results[i];
    }

    const RunResult &
    at(const std::string &workload, const std::string &scheme) const
    {
        return *byLabel_.at(workload + "/" + scheme);
    }

    bool
    has(const std::string &workload, const std::string &scheme) const
    {
        return byLabel_.count(workload + "/" + scheme) > 0;
    }

  private:
    std::map<std::string, const RunResult *> byLabel_;
};

/** The scheme labels used across Figures 4-6, in the paper's order. */
inline std::vector<std::string>
figureSchemes()
{
    return {"Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee",
            "CacheOnly"};
}

} // namespace banshee::benchutil

#endif // BANSHEE_BENCH_BENCH_UTIL_HH
