/**
 * @file
 * Figure 5: in-package DRAM traffic (bytes per instruction), broken
 * into HitData / MissData / Tag / Replacement, for every workload and
 * cache scheme.
 *
 * Paper headline (Section 5.3): Banshee moves 35.8 % less in-package
 * traffic than the best baseline; its bars contain no MissData and
 * almost no Tag component.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "fig5_inpkg_traffic");
    printBanner("Figure 5: in-package DRAM traffic breakdown "
                "(bytes/instruction)",
                "Banshee (MICRO'17), Fig. 5");

    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (auto &e : schemeSweep(opt.base, w))
            exps.push_back(std::move(e));
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table(
        {"workload", "scheme", "HitData", "MissData", "Tag",
         "Replacement", "Total"},
        12);
    table.printHeader();

    // Fig. 5 folds the frequency counters into Tag; Fig. 9 splits.
    auto tagBpi = [](const RunResult &r) {
        return r.inPkgBpi(TrafficCat::Tag) + r.inPkgBpi(TrafficCat::Counter);
    };

    std::map<std::string, std::vector<double>> totals;
    const auto schemes = std::vector<std::string>{
        "Unison", "TDC", "Alloy 1", "Alloy 0.1", "Banshee"};
    for (const auto &w : opt.workloads) {
        for (const auto &s : schemes) {
            const RunResult &r = index.at(w, s);
            table.printRow({w, s, fmt(r.inPkgBpi(TrafficCat::HitData)),
                            fmt(r.inPkgBpi(TrafficCat::MissData)),
                            fmt(tagBpi(r)),
                            fmt(r.inPkgBpi(TrafficCat::Replacement)),
                            fmt(r.inPkgTotalBpi())});
            totals[s].push_back(r.inPkgTotalBpi());
        }
        table.printRule();
    }

    std::printf("\nAverage total in-package traffic (bytes/instr):\n");
    double bestBaseline = 1e30;
    double bansheeAvg = 0.0;
    for (const auto &s : schemes) {
        double sum = 0.0;
        for (double v : totals[s])
            sum += v;
        const double avg = sum / totals[s].size();
        std::printf("  %-10s %.2f\n", s.c_str(), avg);
        if (s == "Banshee")
            bansheeAvg = avg;
        else
            bestBaseline = std::min(bestBaseline, avg);
    }
    std::printf("\nBanshee vs best baseline: %+.1f%% traffic "
                "(paper: -35.8%%)\n",
                100.0 * (bansheeAvg / bestBaseline - 1.0));
    return 0;
}
