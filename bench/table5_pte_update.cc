/**
 * @file
 * Table 5: performance loss from the page-table-update software
 * routine as its cost sweeps {10, 20, 40} us, relative to free
 * updates.
 *
 * Paper headline (Section 5.5.2): average loss under 1 % and
 * sublinear in the cost, because the tag buffer batches updates and
 * the bandwidth-aware policy keeps replacements (and hence remaps)
 * rare.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/units.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "table5_pte_update");
    printBanner("Table 5: page-table update overhead (Banshee)",
                "Banshee (MICRO'17), Table 5");

    const std::vector<double> costsUs = {0.0, 10.0, 20.0, 40.0};
    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (double us : costsUs) {
            SystemConfig c = opt.base;
            c.workload = w;
            c.withScheme(SchemeKind::Banshee);
            c.osCosts.pteUpdateRoutine = usToCycles(us);
            if (us == 0.0) {
                c.osCosts.shootdownInitiator = 0;
                c.osCosts.shootdownSlave = 0;
            }
            exps.push_back({w + "/u" + fmt(us, 0), c});
        }
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table({"cost (us)", "avg perf loss", "max perf loss",
                        "updates/run"},
                       16);
    table.printHeader();

    for (double us : costsUs) {
        if (us == 0.0)
            continue;
        double sumLoss = 0.0, maxLoss = 0.0, updates = 0.0;
        for (const auto &w : opt.workloads) {
            const RunResult &free = index.at(w, "u0");
            const RunResult &r = index.at(w, "u" + fmt(us, 0));
            const double loss =
                static_cast<double>(r.cycles) / free.cycles - 1.0;
            sumLoss += loss;
            maxLoss = std::max(maxLoss, loss);
            updates += static_cast<double>(r.pteUpdateRuns);
        }
        const double n = static_cast<double>(opt.workloads.size());
        table.printRow({fmt(us, 0), fmt(100.0 * sumLoss / n, 2) + "%",
                        fmt(100.0 * maxLoss, 2) + "%",
                        fmt(updates / n, 1)});
    }

    std::printf("\nPaper: 10us -> 0.11%% avg / 0.76%% max; "
                "20us -> 0.18%% / 1.3%%; 40us -> 0.31%% / 2.4%%.\n");
    return 0;
}
