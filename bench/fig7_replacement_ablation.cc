/**
 * @file
 * Figure 7: where Banshee's replacement gains come from. Compares
 * Banshee with LRU replace-on-miss (Unison-style, no footprint),
 * Banshee FBR without counter sampling (CHOP-style), full Banshee,
 * and TDC. Bars: speedup over NoCache (averaged); dots: in-package
 * DRAM traffic.
 *
 * Paper headline (Section 5.5.1): LRU is worst; FBR-no-sample pays
 * ~2x Banshee's metadata traffic; both FBR and sampling are needed.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "fig7_replacement_ablation");
    printBanner("Figure 7: replacement-policy ablation "
                "(speedup vs NoCache, in-package traffic)",
                "Banshee (MICRO'17), Fig. 7");

    struct Variant
    {
        std::string label;
        SchemeKind kind;
        BansheeConfig::Policy policy;
    };
    const std::vector<Variant> variants = {
        {"Banshee LRU", SchemeKind::Banshee,
         BansheeConfig::Policy::LruEveryMiss},
        {"Banshee FBR no-sample", SchemeKind::Banshee,
         BansheeConfig::Policy::FbrNoSample},
        {"Banshee", SchemeKind::Banshee, BansheeConfig::Policy::Fbr},
        {"TDC", SchemeKind::Tdc, BansheeConfig::Policy::Fbr},
    };

    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        SystemConfig base = opt.base;
        base.workload = w;
        {
            SystemConfig c = base;
            c.withScheme(SchemeKind::NoCache);
            exps.push_back({w + "/NoCache", c});
        }
        for (const auto &v : variants) {
            SystemConfig c = base;
            c.withScheme(v.kind);
            c.banshee.policy = v.policy;
            exps.push_back({w + "/" + v.label, c});
        }
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table({"variant", "speedup", "inPkgBPI", "ctrBPI",
                        "missRate"},
                       14);
    table.printHeader();

    for (const auto &v : variants) {
        std::vector<double> speedups;
        double bpi = 0.0, ctr = 0.0, miss = 0.0;
        for (const auto &w : opt.workloads) {
            const RunResult &r = index.at(w, v.label);
            const RunResult &base = index.at(w, "NoCache");
            speedups.push_back(static_cast<double>(base.cycles) /
                               r.cycles);
            bpi += r.inPkgTotalBpi();
            ctr += r.inPkgBpi(TrafficCat::Counter);
            miss += r.missRate;
        }
        const double n = static_cast<double>(opt.workloads.size());
        table.printRow({v.label, fmt(geomean(speedups)), fmt(bpi / n),
                        fmt(ctr / n, 3), fmt(miss / n, 3)});
    }

    std::printf("\nExpected shape: LRU << FBR-no-sample < Banshee; "
                "no-sample counter traffic ~2x Banshee's.\n");
    return 0;
}
