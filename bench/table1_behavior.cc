/**
 * @file
 * Table 1: measured per-access behavior of each DRAM cache design.
 *
 * The paper's Table 1 is analytic; this bench measures the same
 * quantities from the simulator. Two micro-regimes isolate the rows:
 *   "resident" — a footprint that fits in the cache, so accesses are
 *                ~all hits: in-package bytes/access shows hit traffic;
 *   "thrash"   — a much larger uniform footprint, so accesses are
 *                ~all misses: speculative/probe traffic and the
 *                replacement traffic per miss become visible.
 * LLC-miss service latency is reported for both regimes (the paper's
 * ~1x vs ~2x column). HMA is included (the paper's table has it; its
 * figures do not).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "table1_behavior");
    printBanner("Table 1: per-scheme DRAM cache behavior (measured)",
                "Banshee (MICRO'17), Table 1");

    struct Row
    {
        std::string label;
        SchemeKind kind;
        double alloyProb = 1.0;
    };
    const std::vector<Row> schemes = {
        {"Unison", SchemeKind::Unison},     {"Alloy", SchemeKind::Alloy},
        {"TDC", SchemeKind::Tdc},           {"HMA", SchemeKind::Hma},
        {"Banshee", SchemeKind::Banshee},
    };

    // "resident": hot zipf working set well inside the 128 MB cache.
    // "thrash": uniform sweep far beyond it.
    std::vector<Experiment> exps;
    for (const auto &s : schemes) {
        {
            SystemConfig c = opt.base;
            c.workload = "libquantum"; // fits in-cache by construction
            c.withScheme(s.kind);
            c.withAlloyFillProb(s.alloyProb);
            exps.push_back({std::string("resident/") + s.label, c});
        }
        {
            SystemConfig c = opt.base;
            c.workload = "milc"; // sparse, large: high miss rate
            c.withScheme(s.kind);
            c.withAlloyFillProb(s.alloyProb);
            exps.push_back({std::string("thrash/") + s.label, c});
        }
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table({"scheme", "hit B/acc", "hitLat", "miss B/acc",
                        "missLat", "repl B/miss"},
                       13);
    table.printHeader();

    for (const auto &s : schemes) {
        const RunResult &hitR = index.at("resident", s.label);
        const RunResult &missR = index.at("thrash", s.label);

        // Hit regime: in-package bytes per access net of replacement.
        const double hitBytes =
            (hitR.inPkgBpi(TrafficCat::HitData) +
             hitR.inPkgBpi(TrafficCat::MissData) +
             hitR.inPkgBpi(TrafficCat::Tag) +
             hitR.inPkgBpi(TrafficCat::Counter)) *
            hitR.instructions / std::max<std::uint64_t>(1,
                hitR.dramCacheAccesses);

        const double missBytes =
            (missR.inPkgBpi(TrafficCat::MissData) +
             missR.inPkgBpi(TrafficCat::Tag) +
             missR.inPkgBpi(TrafficCat::Counter)) *
            missR.instructions / std::max<std::uint64_t>(1,
                missR.dramCacheMisses);

        const double replBytes =
            (missR.inPkgBpi(TrafficCat::Replacement) +
             missR.offPkgBpi(TrafficCat::Fill) +
             missR.offPkgBpi(TrafficCat::Writeback)) *
            missR.instructions / std::max<std::uint64_t>(1,
                missR.dramCacheMisses);

        table.printRow({s.label, fmt(hitBytes, 0),
                        fmt(hitR.avgFetchLatency, 0) + "cy",
                        fmt(missBytes, 0),
                        fmt(missR.avgFetchLatency, 0) + "cy",
                        fmt(replBytes, 0)});
    }

    std::printf("\nPaper's Table 1: Unison hit >=128B, Alloy 96B, "
                "TDC/HMA/Banshee 64B (0 extra bytes on top of data);\n"
                "miss latency ~2x for probing schemes (Unison/Alloy), "
                "~1x for PTE/TLB-mapped ones (TDC/HMA/Banshee).\n");
    return 0;
}
