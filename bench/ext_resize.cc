/**
 * @file
 * Extension: dynamic DRAM-cache resizing — consistent-hash remapping
 * vs a naive flush-resize.
 *
 * Mid-run the cache shrinks from 8 to 6 active slices (-25% of its
 * capacity, e.g. a power cap or a co-tenant claiming its quota). The
 * consistent-hash transition migrates only the pages whose slice was
 * deactivated (~2/8 of residents); the flush baseline drains every
 * resident page, the way a mod-N indexed cache would have to. Both
 * run through the same rate-limited background migration engine, so
 * the comparison isolates the remapping policy.
 *
 * Reported per workload: off-package bytes per instruction during
 * the measured (transition-containing) phase, the migration volume,
 * and the IPC penalty relative to an unresized run.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/report.hh"

using namespace banshee;
using namespace banshee::benchutil;

namespace {

std::uint64_t
offPkgTotal(const RunResult &r)
{
    std::uint64_t t = 0;
    for (std::size_t cat = 0; cat < kNumTrafficCats; ++cat)
        t += r.offPkgBytes[cat];
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseArgs(argc, argv, "ext_resize");
    printBanner("Extension: dynamic cache resizing — consistent hash "
                "vs flush",
                "Chang et al. (consistent-hash DRAM cache resizing), "
                "on Banshee (MICRO'17)");

    // Resize knobs: 8 slices, shrink to 6 two epochs into the
    // measured phase, drained at a demand-friendly trickle.
    SystemConfig base = opt.base;
    base.resize.hash.numSlices = 8;
    base.resize.policy.epoch = usToCycles(20.0);
    base.resize.migration.pagesPerBatch = 8;
    base.resize.migration.batchInterval = nsToCycles(200.0);
    constexpr std::uint64_t kEpoch = 2;
    constexpr std::uint32_t kTarget = 6;

    std::vector<Experiment> exps;
    for (const auto &w : opt.workloads) {
        for (auto &e : resizeSweep(base, w, kEpoch, kTarget))
            exps.push_back(std::move(e));
    }
    const auto results = runExperiments(exps, opt.threads);
    const ResultIndex index(exps, results);

    TablePrinter table({"workload", "off-BPI none", "off-BPI CH",
                        "off-BPI flush", "mig CH", "mig flush",
                        "dIPC CH", "dIPC flush"},
                       14);
    table.printHeader();

    std::vector<double> chBpi, flushBpi;
    int chWins = 0;
    for (const auto &w : opt.workloads) {
        const RunResult &none = index.at(w, "NoResize");
        const RunResult &ch = index.at(w, "CH-resize");
        const RunResult &flush = index.at(w, "Flush-resize");
        chBpi.push_back(ch.offPkgTotalBpi());
        flushBpi.push_back(flush.offPkgTotalBpi());
        if (offPkgTotal(ch) < offPkgTotal(flush))
            ++chWins;
        table.printRow(
            {w, fmt(none.offPkgTotalBpi()), fmt(ch.offPkgTotalBpi()),
             fmt(flush.offPkgTotalBpi()),
             std::to_string(ch.pagesMigrated),
             std::to_string(flush.pagesMigrated),
             fmt(100.0 * (ch.ipc / none.ipc - 1.0), 1) + "%",
             fmt(100.0 * (flush.ipc / none.ipc - 1.0), 1) + "%"});
    }
    table.printRule();
    table.printRow({"geomean", "", fmt(geomean(chBpi)),
                    fmt(geomean(flushBpi)), "", "", "", ""});

    std::printf("\nConsistent-hash resize moves less off-package data "
                "than flush-resize on %d/%zu workloads\n",
                chWins, opt.workloads.size());
    std::printf("(off-BPI = off-package bytes/instruction over the "
                "measured phase containing the shrink;\n mig = pages "
                "drained by the migration engine; dIPC = IPC change "
                "vs the unresized run)\n");
    return 0;
}
