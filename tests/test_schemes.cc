/**
 * @file
 * Scheme-level tests of the baselines: the per-access traffic each
 * design pays (paper Table 1), footprint machinery, stochastic
 * fills, FIFO behavior, HMA epochs and the BATMAN controller.
 */

#include <gtest/gtest.h>

#include "schemes/alloy.hh"
#include "schemes/batman.hh"
#include "schemes/footprint.hh"
#include "schemes/hma.hh"
#include "schemes/simple.hh"
#include "schemes/tdc.hh"
#include "schemes/unison.hh"
#include "scheme_harness.hh"

namespace banshee {
namespace {

using testing::SchemeHarness;

//
// Footprint machinery.
//

TEST(Footprint, ResidencyGroupCounting)
{
    PageResidency r;
    EXPECT_EQ(r.touchedGroups(), 0u);
    r.touch(0, false);
    r.touch(1, false);
    EXPECT_EQ(r.touchedGroups(), 1u); // lines 0-3 = one group
    r.touch(4, true);
    EXPECT_EQ(r.touchedGroups(), 2u);
    EXPECT_EQ(r.dirtyGroups(), 1u);
    r.touch(63, false);
    EXPECT_EQ(r.touchedGroups(), 3u);
}

TEST(Footprint, PredictorConvergesAndClamps)
{
    FootprintPredictor p(8.0, 0.5);
    for (int i = 0; i < 64; ++i)
        p.observe(16);
    EXPECT_EQ(p.predictLines(), 64u); // full page
    for (int i = 0; i < 64; ++i)
        p.observe(0);
    EXPECT_EQ(p.predictLines(), 4u); // never below one group
}

//
// NoCache / CacheOnly.
//

TEST(SimpleSchemes, NoCacheIsPureOffPackage)
{
    SchemeHarness h;
    NoCacheScheme s(h.ctx);
    h.fetch(s, lineOf(0x1000));
    s.demandWriteback(lineOf(0x2000));
    h.drain();
    EXPECT_EQ(h.offBytes(TrafficCat::Demand), 64u);
    EXPECT_EQ(h.offBytes(TrafficCat::Writeback), 64u);
    EXPECT_EQ(h.inTotal(), 0u);
    EXPECT_EQ(s.missRate(), 1.0);
}

TEST(SimpleSchemes, CacheOnlyAlwaysHits)
{
    SchemeHarness h;
    CacheOnlyScheme s(h.ctx);
    for (int i = 0; i < 10; ++i)
        h.fetch(s, lineOf(0x1000 + i * 4096));
    EXPECT_EQ(s.missRate(), 0.0);
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 640u);
    EXPECT_EQ(h.offTotal(), 0u);
}

//
// Alloy.
//

AlloyConfig
alloyAlways()
{
    AlloyConfig c;
    c.fillProbability = 1.0;
    return c;
}

TEST(Alloy, MissProbesThenFetchesThenFills)
{
    SchemeHarness h;
    AlloyScheme s(h.ctx, alloyAlways());
    h.fetch(s, lineOf(0x4000));
    // Probe: 96 B (32 Tag + 64 MissData); fetch: 64 B off;
    // fill: 96 B (32 Tag + 64 Replacement).
    EXPECT_EQ(h.inBytes(TrafficCat::MissData), 64u);
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 64u);
    EXPECT_EQ(h.inBytes(TrafficCat::Replacement), 64u);
    EXPECT_EQ(h.offBytes(TrafficCat::Demand), 64u);
}

TEST(Alloy, HitReadsOneTad)
{
    SchemeHarness h;
    AlloyScheme s(h.ctx, alloyAlways());
    h.fetch(s, lineOf(0x4000));
    h.resetTraffic();
    h.fetch(s, lineOf(0x4000));
    EXPECT_EQ(s.hits(), 1u);
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 32u);
    EXPECT_EQ(h.offTotal(), 0u);
}

TEST(Alloy, MissLatencyIsSerializedProbePlusFetch)
{
    SchemeHarness h;
    AlloyScheme s(h.ctx, alloyAlways());
    const Cycle missLat = h.fetch(s, lineOf(0x8000)); // from cycle 0
    const Cycle start = h.eq.now();
    const Cycle hitLat = h.fetch(s, lineOf(0x8000)) - start;
    // The paper's ~2x column: the miss pays probe + off-package.
    EXPECT_GT(missLat, hitLat * 3 / 2);
}

TEST(Alloy, StochasticFillZeroNeverFills)
{
    SchemeHarness h;
    AlloyConfig cfg;
    cfg.fillProbability = 0.0;
    AlloyScheme s(h.ctx, cfg);
    h.fetch(s, lineOf(0x4000));
    h.fetch(s, lineOf(0x4000));
    EXPECT_EQ(s.hits(), 0u); // never cached
    EXPECT_EQ(s.stats().value("fills"), 0u);
    EXPECT_EQ(s.stats().value("fillsSkipped"), 2u);
}

TEST(Alloy, WritebackProbeHitWritesInPackage)
{
    SchemeHarness h;
    AlloyScheme s(h.ctx, alloyAlways());
    h.fetch(s, lineOf(0x4000)); // fill
    h.resetTraffic();
    s.demandWriteback(lineOf(0x4000));
    h.drain();
    // 32 B probe + 96 B data+tag write, nothing off-package.
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 64u);
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(h.offTotal(), 0u);
}

TEST(Alloy, WritebackProbeMissGoesOffPackage)
{
    SchemeHarness h;
    AlloyScheme s(h.ctx, alloyAlways());
    s.demandWriteback(lineOf(0xF000));
    h.drain();
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 32u);
    EXPECT_EQ(h.offBytes(TrafficCat::Writeback), 64u);
}

TEST(Alloy, DirtyVictimWrittenBackOnConflict)
{
    SchemeHarness h(72 * 64); // 64 TADs: tiny direct-mapped cache
    AlloyScheme s(h.ctx, alloyAlways());
    const LineAddr a = lineOf(0x4000);
    h.fetch(s, a);
    s.demandWriteback(a); // a dirty in cache
    h.drain();
    // Find a conflicting line (same set).
    LineAddr b = a;
    for (LineAddr cand = a + 1; cand < a + 100000; ++cand) {
        AlloyScheme probe(h.ctx, alloyAlways());
        // Conflict iff fetching cand then a evicts... simpler: use the
        // public behavior: fetch cand and check a no longer hits.
        (void)probe;
        h.fetch(s, cand);
        h.resetTraffic();
        h.fetch(s, a);
        if (s.stats().value("victimWritebacks") > 0) {
            b = cand;
            break;
        }
    }
    EXPECT_NE(b, a); // some conflicting line evicted dirty a
}

//
// Unison.
//

TEST(Unison, HitPaysDataTagAndLruUpdate)
{
    SchemeHarness h;
    UnisonScheme s(h.ctx, UnisonConfig{});
    h.fetch(s, lineOf(0x10000)); // miss + fill
    h.resetTraffic();
    h.fetch(s, lineOf(0x10000));
    EXPECT_EQ(s.hits(), 1u);
    // 96 B read (64 HitData + 32 Tag) + 32 B LRU write: >= 128 B.
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 64u);
    EXPECT_EQ(h.offTotal(), 0u);
}

TEST(Unison, MissReplacesOnEveryMissWithFootprint)
{
    SchemeHarness h;
    UnisonScheme s(h.ctx, UnisonConfig{});
    h.fetch(s, lineOf(0x10000));
    // Speculative 96 B + demand 64 B off + footprint fill.
    EXPECT_EQ(h.inBytes(TrafficCat::MissData), 64u);
    EXPECT_EQ(h.offBytes(TrafficCat::Demand), 64u);
    EXPECT_GT(h.offBytes(TrafficCat::Fill), 0u);
    EXPECT_EQ(h.offBytes(TrafficCat::Fill),
              h.inBytes(TrafficCat::Replacement));
    EXPECT_EQ(s.stats().value("replacements"), 1u);
    // Second miss on another page: another replacement.
    h.fetch(s, lineOf(0x90000));
    EXPECT_EQ(s.stats().value("replacements"), 2u);
}

TEST(Unison, AllLinesOfResidentPageHit)
{
    SchemeHarness h;
    UnisonScheme s(h.ctx, UnisonConfig{});
    h.fetch(s, lineOf(0x10000));
    for (std::uint32_t l = 1; l < kLinesPerPage; l += 7)
        h.fetch(s, lineOf(0x10000) + l);
    EXPECT_EQ(s.misses(), 1u); // perfect footprint: only first miss
}

TEST(Unison, DirtyFootprintWrittenBackOnEviction)
{
    SchemeHarness h(4096 * 4); // one 4-way set
    UnisonScheme s(h.ctx, UnisonConfig{});
    const LineAddr a = lineOf(0x10000);
    h.fetch(s, a);
    s.demandWriteback(a);
    h.drain();
    // Fill the set with 4 more pages: a must be evicted dirty.
    h.resetTraffic();
    for (int i = 1; i <= 4; ++i)
        h.fetch(s, lineOf(0x10000 + i * 0x1000));
    EXPECT_GT(h.offBytes(TrafficCat::Writeback), 0u);
}

//
// TDC.
//

TEST(Tdc, HitMovesExactly64BNoTagTraffic)
{
    SchemeHarness h;
    TdcScheme s(h.ctx);
    h.fetch(s, lineOf(0x20000));
    h.resetTraffic();
    h.fetch(s, lineOf(0x20000));
    EXPECT_EQ(s.hits(), 1u);
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 0u); // tagless
    EXPECT_EQ(h.inTotal(), 64u);
}

TEST(Tdc, FifoEvictionOrder)
{
    SchemeHarness h(3 * 4096); // 3 frames
    TdcScheme s(h.ctx);
    h.fetch(s, lineOf(0x1000));
    h.fetch(s, lineOf(0x2000));
    h.fetch(s, lineOf(0x3000));
    EXPECT_EQ(s.residentPages(), 3u);
    // Touch page 1 (would refresh LRU, but FIFO ignores it).
    h.fetch(s, lineOf(0x1000));
    h.fetch(s, lineOf(0x4000)); // evicts 0x1000 (oldest)
    h.resetTraffic();
    h.fetch(s, lineOf(0x1000));
    EXPECT_EQ(h.offBytes(TrafficCat::Demand), 64u); // it was evicted
}

TEST(Tdc, WritebackToResidentPageStaysInPackage)
{
    SchemeHarness h;
    TdcScheme s(h.ctx);
    h.fetch(s, lineOf(0x30000));
    h.resetTraffic();
    s.demandWriteback(lineOf(0x30000));
    h.drain();
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(h.offTotal(), 0u);
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 0u); // never probes
}

//
// HMA.
//

TEST(Hma, EpochMovesHotPagesIn)
{
    // NOTE: HMA re-arms its epoch event forever, so this test only
    // ever runs the queue up to explicit horizons (an unbounded
    // drain would never return).
    SchemeHarness h(4096 * 8);
    HmaConfig cfg;
    cfg.epoch = 10000;
    cfg.baseCost = 100;
    cfg.perPageCost = 10;
    HmaScheme s(h.ctx, cfg);
    // Touch two pages repeatedly; they miss before the first epoch.
    for (int i = 0; i < 20; ++i) {
        s.demandFetch(lineOf(0x1000), MappingInfo{}, 0, nullptr);
        s.demandFetch(lineOf(0x2000), MappingInfo{}, 0, nullptr);
    }
    EXPECT_EQ(s.hits(), 0u);
    // Let the first epoch fire.
    h.eq.run(15000);
    EXPECT_GE(s.epochsRun(), 1u);
    h.resetTraffic();
    s.demandFetch(lineOf(0x1000), MappingInfo{}, 0, nullptr);
    h.eq.run(18000);
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u); // now resident
}

TEST(Hma, EpochStallsAllCores)
{
    SchemeHarness h(4096 * 8);
    Cycle stalled = 0;
    h.os->registerCore(OsServices::CoreHooks{
        [&stalled](Cycle c) { stalled += c; }, [] {}});
    HmaConfig cfg;
    cfg.epoch = 10000;
    cfg.baseCost = 100;
    cfg.perPageCost = 10;
    HmaScheme s(h.ctx, cfg);
    s.demandFetch(lineOf(0x1000), MappingInfo{}, 0, nullptr);
    h.eq.run(15000);
    EXPECT_GT(stalled, 0u);
}

//
// BATMAN.
//

TEST(Batman, BypassFractionRisesUnderInPackageDominance)
{
    SchemeHarness h;
    BatmanParams params;
    params.epoch = 1000;
    BatmanController ctrl(h.eq, h.inPkg.get(), h.offPkg.get(), params);
    // All traffic in-package -> fraction must climb.
    for (int epoch = 0; epoch < 5; ++epoch) {
        for (int i = 0; i < 32; ++i) {
            DramRequest req;
            req.addr = static_cast<Addr>(i) * 64;
            req.bytes = 64;
            req.cat = TrafficCat::HitData;
            h.inPkg->access(0, std::move(req));
        }
        h.eq.run(h.eq.now() + 1000);
    }
    EXPECT_GT(ctrl.bypassFraction(), 0.1);

    // Now all off-package -> fraction must fall back toward zero.
    for (int epoch = 0; epoch < 8; ++epoch) {
        for (int i = 0; i < 32; ++i) {
            DramRequest req;
            req.addr = static_cast<Addr>(i) * 64;
            req.bytes = 64;
            h.offPkg->access(0, std::move(req));
        }
        h.eq.run(h.eq.now() + 1000);
    }
    EXPECT_LT(ctrl.bypassFraction(), 0.1);
}

TEST(Batman, BypassDecisionIsDeterministicPerPage)
{
    SchemeHarness h;
    BatmanParams params;
    params.epoch = 1000000; // never ticks in this test
    BatmanController ctrl(h.eq, h.inPkg.get(), h.offPkg.get(), params);
    EXPECT_FALSE(ctrl.shouldBypass(1));
    EXPECT_FALSE(ctrl.shouldBypass(2)); // fraction 0: nothing bypassed
}

} // namespace
} // namespace banshee
