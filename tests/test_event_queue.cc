/**
 * @file
 * Unit tests of the intrusive two-level event queue: same-cycle FIFO
 * determinism, stop/limit semantics, cancel/re-arm (including the
 * positional revival contract the DRAM kick relies on), and
 * wheel <-> far-heap migration.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/event_queue.hh"

using namespace banshee;

namespace {

/** Far enough ahead that entries land in the far heap (wheel span is
 *  an implementation detail; 1M cycles is beyond any plausible one). */
constexpr Cycle kFar = 1'000'000;

} // namespace

TEST(EventQueue, SameCycleFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(0); });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(10, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameCycleScheduleFromCallbackRunsThisCycle)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&] {
        order.push_back(0);
        // Scheduled at the current cycle from within it: runs after
        // everything already queued for cycle 7, before cycle 8.
        eq.schedule(7, [&] { order.push_back(2); });
    });
    eq.schedule(7, [&] { order.push_back(1); });
    eq.schedule(8, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, RunLimitBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { fired |= 1; });
    eq.schedule(11, [&] { fired |= 2; });
    // Events at exactly the limit run; later ones stay queued.
    EXPECT_EQ(eq.run(10), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RequestStopHaltsBetweenEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.requestStop();
    });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(6, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(order, (std::vector<int>{0}));
    // The same-cycle suffix resumes, in order, on the next run().
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, PreSetStopRunsNothing)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(1, [&] { fired = true; });
    eq.requestStop();
    EXPECT_EQ(eq.run(), 0u);
    EXPECT_FALSE(fired);
    // The stop is consumed; a following run() proceeds.
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(fired);
}

TEST(TickEvent, CancelPreventsFiring)
{
    EventQueue eq;
    int fires = 0;
    TickEvent ev([&] { fires++; });
    eq.schedule(ev, 10);
    EXPECT_TRUE(ev.armed());
    EXPECT_EQ(ev.when(), 10u);
    ev.cancel();
    EXPECT_FALSE(ev.armed());
    EXPECT_TRUE(eq.empty());
    eq.schedule(50, [] {});
    eq.run();
    EXPECT_EQ(fires, 0);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(TickEvent, RearmSupersedes)
{
    EventQueue eq;
    std::vector<Cycle> fires;
    TickEvent ev([&] { fires.push_back(eq.now()); });
    eq.schedule(ev, 100);
    eq.schedule(ev, 40); // moved earlier; the arm at 100 is dead
    eq.run();
    EXPECT_EQ(fires, (std::vector<Cycle>{40}));
    EXPECT_FALSE(ev.armed());
    // Re-arm after firing works from the callback's point of view too.
    eq.schedule(ev, 200);
    eq.run();
    EXPECT_EQ(fires, (std::vector<Cycle>{40, 200}));
}

TEST(TickEvent, SelfRearmingClock)
{
    EventQueue eq;
    int ticks = 0;
    TickEvent clock;
    clock.setCallback([&] {
        if (++ticks < 5)
            eq.scheduleAfter(clock, 10);
    });
    eq.scheduleAfter(clock, 10);
    eq.run();
    EXPECT_EQ(ticks, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(TickEvent, RevivalKeepsOriginalPosition)
{
    // The DRAM-kick pattern: arm at W, supersede to an earlier cycle,
    // and from that firing re-arm back to exactly W. The event must
    // fire at the *original* entry's FIFO position within W, ahead of
    // events scheduled between the first arm and the re-arm.
    EventQueue eq;
    std::vector<int> order;
    TickEvent kick([&] { order.push_back(0); });
    TickEvent early([&] {
        // The earlier work is done; re-arm back onto cycle 100.
        eq.schedule(kick, 100);
    });
    eq.schedule(kick, 100);                        // entry A at 100
    eq.schedule(kick, 90);                         // supersede to 90
    eq.schedule(100, [&] { order.push_back(1); }); // queued after A
    eq.schedule(early, 95);                        // re-arms kick to 100
    eq.run();
    // kick fired at 90 (the live arm), then early re-armed it onto
    // cycle 100 where entry A still sits ahead of the "1" closure.
    EXPECT_EQ(order, (std::vector<int>{0, 0, 1}));
}

TEST(TickEvent, DestructorUnregistersArmedEvent)
{
    EventQueue eq;
    bool other = false;
    {
        TickEvent ev([] { ADD_FAILURE() << "destroyed event fired"; });
        eq.schedule(ev, 10);
        eq.schedule(ev, kFar + 10); // also leave a far-heap entry
        eq.schedule(ev, 5);
    }
    eq.schedule(20, [&] { other = true; });
    eq.run();
    EXPECT_TRUE(other);
}

TEST(EventQueue, FarHeapMigration)
{
    EventQueue eq;
    std::vector<int> order;
    // Far-future events, scheduled out of order, plus near ones.
    eq.schedule(kFar + 3, [&] { order.push_back(3); });
    eq.schedule(kFar + 1, [&] { order.push_back(1); });
    eq.schedule(2, [&] {
        order.push_back(0);
        // From a near event, schedule into the same far cycle: FIFO
        // says it runs after the entry already queued for kFar+1.
        eq.schedule(kFar + 1, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), kFar + 3);
}

TEST(EventQueue, TickEventAcrossWheelAndHeap)
{
    EventQueue eq;
    std::vector<Cycle> fires;
    TickEvent ev([&] { fires.push_back(eq.now()); });
    eq.schedule(ev, kFar); // far heap
    eq.schedule(ev, 10);   // superseded into the wheel
    eq.run();
    EXPECT_EQ(fires, (std::vector<Cycle>{10}));
    // And the reverse: wheel arm superseded by... nothing can move it
    // later (supersede-to-later is a new arm too); verify it fires
    // once at the new cycle.
    eq.schedule(ev, eq.now() + kFar);
    eq.schedule(ev, eq.now() + 1);
    eq.run();
    EXPECT_EQ(fires.size(), 2u);
    EXPECT_EQ(fires[1], 11u);
}

TEST(EventQueue, CountsAndReset)
{
    EventQueue eq;
    int fires = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(static_cast<Cycle>(i * 500), [&] { fires++; });
    EXPECT_EQ(eq.size(), 10u);
    eq.run();
    EXPECT_EQ(fires, 10);
    EXPECT_EQ(eq.eventsExecuted(), 10u);

    TickEvent ev([&] { fires++; });
    eq.schedule(ev, eq.now() + 100);
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.eventsExecuted(), 0u);
    EXPECT_FALSE(ev.armed());
    // The queue is fully usable after reset.
    eq.schedule(ev, 7);
    eq.run();
    EXPECT_EQ(fires, 11);
}
