/**
 * @file
 * Unit tests for the OS substrate: page-table current/committed
 * split (the lazy-coherence foundation), reverse-map aliasing, and
 * the PTE-update routine's cost and locking protocol.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "common/units.hh"
#include "os/os_services.hh"
#include "os/page_table.hh"

namespace banshee {
namespace {

TEST(PageTable, DefaultsToUncached)
{
    PageTableManager pt;
    EXPECT_FALSE(pt.currentMapping(7).cached);
    EXPECT_FALSE(pt.committedMapping(7).cached);
    EXPECT_FALSE(pt.isStale(7));
}

TEST(PageTable, RemapMakesPteStaleUntilCommit)
{
    PageTableManager pt;
    pt.setCurrentMapping(7, PageMapping{true, 3});
    EXPECT_TRUE(pt.currentMapping(7).cached);
    EXPECT_FALSE(pt.committedMapping(7).cached); // PTE lags
    EXPECT_TRUE(pt.isStale(7));
    EXPECT_EQ(pt.staleCount(), 1u);

    pt.commit(7);
    EXPECT_TRUE(pt.committedMapping(7).cached);
    EXPECT_EQ(pt.committedMapping(7).way, 3);
    EXPECT_FALSE(pt.isStale(7));
    EXPECT_EQ(pt.staleCount(), 0u);
}

TEST(PageTable, VersionsAdvanceOnRemapAndCommit)
{
    PageTableManager pt;
    const auto v0 = pt.committedVersion(9);
    pt.setCurrentMapping(9, PageMapping{true, 0});
    EXPECT_EQ(pt.committedVersion(9), v0); // commit not yet run
    EXPECT_GT(pt.currentVersion(9), v0);
    pt.commit(9);
    EXPECT_EQ(pt.committedVersion(9), pt.currentVersion(9));
}

TEST(PageTable, CommitWritesOnePtePerAlias)
{
    PageTableManager pt;
    pt.setCurrentMapping(5, PageMapping{true, 1});
    EXPECT_EQ(pt.commit(5), 1u); // no aliases: one PTE
    pt.addAlias(5, 0xAAAA);
    pt.addAlias(5, 0xBBBB);
    pt.setCurrentMapping(5, PageMapping{false, 0});
    // The reverse map must reach all three PTEs (paper Section 3.4:
    // this is the aliasing case TDC's inverted page table misses).
    EXPECT_EQ(pt.commit(5), 3u);
    EXPECT_EQ(pt.aliasesOf(5).size(), 2u);
}

TEST(PageTable, RemapToSameMappingIsNotStale)
{
    PageTableManager pt;
    pt.setCurrentMapping(4, PageMapping{true, 2});
    pt.commit(4);
    pt.setCurrentMapping(4, PageMapping{true, 2});
    EXPECT_FALSE(pt.isStale(4)); // mapping value unchanged
}

class OsServicesTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    PageTableManager pt;
};

TEST_F(OsServicesTest, UpdateCommitsHarvestedPages)
{
    OsServices os(eq, pt);
    pt.setCurrentMapping(1, PageMapping{true, 0});
    pt.setCurrentMapping(2, PageMapping{true, 1});
    os.registerTagBufferHarvester(
        [] { return std::vector<PageNum>{1, 2}; });
    os.requestPteUpdate();
    EXPECT_TRUE(os.updateInProgress());
    eq.run();
    EXPECT_FALSE(os.updateInProgress());
    EXPECT_EQ(pt.staleCount(), 0u);
    EXPECT_EQ(os.stats().value("pagesCommitted"), 2u);
}

TEST_F(OsServicesTest, RoutineTakesConfiguredTime)
{
    OsCosts costs;
    costs.pteUpdateRoutine = usToCycles(20.0);
    OsServices os(eq, pt, costs);
    os.registerTagBufferHarvester([] { return std::vector<PageNum>{}; });
    os.requestPteUpdate();
    eq.run();
    EXPECT_EQ(eq.now(), usToCycles(20.0)); // 54000 cycles at 2.7 GHz
}

TEST_F(OsServicesTest, LocksHeldForRoutineDuration)
{
    OsServices os(eq, pt);
    std::vector<std::pair<Cycle, bool>> lockTrace;
    os.registerReplacementLock([&](bool locked) {
        lockTrace.emplace_back(eq.now(), locked);
    });
    os.registerTagBufferHarvester([] { return std::vector<PageNum>{}; });
    os.requestPteUpdate();
    eq.run();
    ASSERT_EQ(lockTrace.size(), 2u);
    EXPECT_TRUE(lockTrace[0].second);
    EXPECT_FALSE(lockTrace[1].second);
    EXPECT_EQ(lockTrace[0].first, 0u);
    EXPECT_EQ(lockTrace[1].first, usToCycles(20.0));
}

TEST_F(OsServicesTest, HandlerCoreStalledShootdownCostsSplit)
{
    OsServices os(eq, pt);
    std::vector<Cycle> stalls(3, 0);
    int flushes = 0;
    for (int c = 0; c < 3; ++c) {
        os.registerCore(OsServices::CoreHooks{
            [&stalls, c](Cycle cy) { stalls[c] += cy; },
            [&flushes] { ++flushes; }});
    }
    os.registerTagBufferHarvester([] { return std::vector<PageNum>{}; });
    os.requestPteUpdate();
    eq.run();
    EXPECT_EQ(flushes, 3); // system-wide shootdown
    // One core paid routine (20 us) + initiator (4 us); the others
    // paid the 1 us slave cost.
    Cycle maxStall = 0, minStall = ~0ull;
    for (Cycle s : stalls) {
        maxStall = std::max(maxStall, s);
        minStall = std::min(minStall, s);
    }
    EXPECT_EQ(maxStall, usToCycles(20.0) + usToCycles(4.0));
    EXPECT_EQ(minStall, usToCycles(1.0));
}

TEST_F(OsServicesTest, ConcurrentRequestsCoalesce)
{
    OsServices os(eq, pt);
    int harvests = 0;
    os.registerTagBufferHarvester([&harvests] {
        ++harvests;
        return std::vector<PageNum>{};
    });
    os.requestPteUpdate();
    os.requestPteUpdate(); // ignored: one already in flight
    eq.run();
    EXPECT_EQ(harvests, 1);
    EXPECT_EQ(os.updateRuns(), 1u);
}

TEST_F(OsServicesTest, StallAllCoresHelper)
{
    OsServices os(eq, pt);
    Cycle total = 0;
    for (int c = 0; c < 4; ++c) {
        os.registerCore(OsServices::CoreHooks{
            [&total](Cycle cy) { total += cy; }, [] {}});
    }
    os.stallAllCores(100);
    EXPECT_EQ(total, 400u);
}

} // namespace
} // namespace banshee
