/**
 * @file
 * Scheme-level tests of Banshee: exact demand-path traffic (the
 * Table 1 "64B / 0B" row), Algorithm 1 dynamics, tag-buffer-driven
 * lazy PTE coherence, the writeback probe filter, ablation policies
 * and large-page mode.
 */

#include <gtest/gtest.h>

#include "core/banshee.hh"
#include "resize/resize_domain.hh"
#include "scheme_harness.hh"

namespace banshee {
namespace {

using testing::SchemeHarness;

BansheeConfig
neverSample()
{
    BansheeConfig c;
    c.samplingCoeff = 0.0; // never sample: pure demand path
    c.checkStaleInvariant = true;
    return c;
}

BansheeConfig
aggressive()
{
    BansheeConfig c;
    c.policy = BansheeConfig::Policy::FbrNoSample;
    c.replaceThreshold = 0.0;
    c.checkStaleInvariant = true;
    return c;
}

TEST(BansheeScheme, MissMovesExactly64BytesOffPackage)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, neverSample());
    h.fetch(s, lineOf(0x100000));
    EXPECT_EQ(h.offBytes(TrafficCat::Demand), 64u);
    EXPECT_EQ(h.offTotal(), 64u);
    EXPECT_EQ(h.inTotal(), 0u); // Table 1: miss costs 0 B in-package
    EXPECT_EQ(s.misses(), 1u);
}

TEST(BansheeScheme, AggressivePolicyCachesOnSecondAccess)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, aggressive());
    const LineAddr line = lineOf(0x200000);
    h.fetch(s, line);      // candidate takeover, count = 1
    h.fetch(s, line);      // count = 2 > 0 + 0 -> replacement
    h.resetTraffic();
    h.fetch(s, line);
    EXPECT_EQ(s.hits(), 1u);
    // Hit: 64 B HitData plus the per-access metadata of the
    // no-sampling ablation (32 B read + 32 B write).
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(h.inBytes(TrafficCat::Counter), 64u);
    EXPECT_EQ(h.offTotal(), 0u); // Table 1: hit costs 0 B off-package
}

TEST(BansheeScheme, ReplacementMovesOnePageEachWay)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, aggressive());
    const LineAddr line = lineOf(0x300000);
    h.fetch(s, line);
    h.resetTraffic();
    h.fetch(s, line); // triggers the replacement
    EXPECT_EQ(h.offBytes(TrafficCat::Fill), 4096u);
    EXPECT_EQ(h.inBytes(TrafficCat::Replacement), 4096u);
    EXPECT_EQ(h.offBytes(TrafficCat::Writeback), 0u); // victim empty
    EXPECT_EQ(s.pagesInserted(), 1u);
}

TEST(BansheeScheme, DirtyVictimDoublesReplacementTraffic)
{
    // One-set cache (4 KB per way) so a new page must evict.
    SchemeHarness h(4096 * 1);
    BansheeConfig cfg = aggressive();
    cfg.ways = 1;
    BansheeScheme s(h.ctx, cfg);
    const LineAddr a = lineOf(0x100000);
    const LineAddr b = lineOf(0x200000);
    h.fetch(s, a);
    h.fetch(s, a); // a cached
    s.demandWriteback(a);
    h.drain(); // a dirty
    h.fetch(s, b);
    h.resetTraffic();
    h.fetch(s, b); // b's counter beats a's? both low...
    h.fetch(s, b);
    h.fetch(s, b); // eventually b overtakes a
    // b must have replaced a, writing the dirty victim back.
    EXPECT_GT(h.offBytes(TrafficCat::Writeback), 0u);
    EXPECT_EQ(h.offBytes(TrafficCat::Writeback) % 4096, 0u);
    EXPECT_TRUE(h.pageTable.currentMapping(pageOfLine(b)).cached);
    EXPECT_FALSE(h.pageTable.currentMapping(pageOfLine(a)).cached);
}

TEST(BansheeScheme, StaleTlbMappingCorrectedByTagBuffer)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, aggressive());
    const LineAddr line = lineOf(0x400000);
    const PageNum page = pageOfLine(line);
    h.fetch(s, line);
    h.fetch(s, line); // cached now; PTE not yet updated
    EXPECT_TRUE(h.pageTable.isStale(page));
    ASSERT_TRUE(s.tagBuffer().lookup(page).has_value());

    // A request carrying the stale "not cached" PTE bits must still be
    // served from the cache.
    MappingInfo stale;
    stale.valid = true;
    stale.cached = false;
    h.resetTraffic();
    h.fetch(s, line, stale);
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(h.offBytes(TrafficCat::Demand), 0u);
}

TEST(BansheeScheme, PteUpdateCommitsAndClearsStaleness)
{
    SchemeHarness h;
    BansheeConfig cfg = aggressive();
    cfg.tagBuffer.entries = 16;
    cfg.tagBuffer.ways = 4;
    BansheeScheme s(h.ctx, cfg);
    // Cache enough pages to cross the 70 % remap threshold.
    for (int i = 0; i < 12; ++i) {
        const LineAddr line = lineOf(0x1000000 + i * kPageBytes);
        h.fetch(s, line);
        h.fetch(s, line);
    }
    h.drain();
    EXPECT_GE(h.os->updateRuns(), 1u);
    // Replacements after the last flush leave fresh remaps behind;
    // one more explicit update must clear everything.
    h.os->requestPteUpdate();
    h.drain();
    EXPECT_EQ(h.pageTable.staleCount(), 0u);
    EXPECT_EQ(s.tagBuffer().remapCount(), 0u);
}

TEST(BansheeScheme, ReplacementsBlockedWhileLocked)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, aggressive());
    // Manually lock via the OS hook path.
    h.os->registerTagBufferHarvester([] { return std::vector<PageNum>{}; });
    const LineAddr line = lineOf(0x500000);
    h.fetch(s, line);
    // Lock replacements, then hammer: no page may be inserted.
    s.setReplacementsLocked(true);
    h.fetch(s, line);
    h.fetch(s, line);
    EXPECT_EQ(s.pagesInserted(), 0u);
    EXPECT_GT(s.stats().value("replacementsBlocked"), 0u);
    s.setReplacementsLocked(false);
    h.fetch(s, line);
    EXPECT_EQ(s.pagesInserted(), 1u);
}

TEST(BansheeScheme, WritebackProbeOnlyOnTagBufferMiss)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, neverSample());
    const LineAddr line = lineOf(0x600000);
    // Cold writeback: tag buffer misses -> one 32 B probe, then the
    // clean entry suppresses the probe for the next eviction.
    s.demandWriteback(line);
    h.drain();
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 32u);
    EXPECT_EQ(h.offBytes(TrafficCat::Writeback), 64u);
    h.resetTraffic();
    s.demandWriteback(line);
    h.drain();
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 0u);
    EXPECT_EQ(h.offBytes(TrafficCat::Writeback), 64u);
}

TEST(BansheeScheme, DemandFetchSeedsTagBufferForWritebacks)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, neverSample());
    const LineAddr line = lineOf(0x700000);
    h.fetch(s, line); // seeds a clean tag-buffer entry
    h.resetTraffic();
    s.demandWriteback(line);
    h.drain();
    EXPECT_EQ(h.inBytes(TrafficCat::Tag), 0u); // no probe needed
}

TEST(BansheeScheme, DefaultThresholdMatchesPaperFormula)
{
    SchemeHarness h;
    BansheeConfig cfg;
    cfg.samplingCoeff = 0.1;
    BansheeScheme s(h.ctx, cfg);
    // 64 lines x 0.1 / 2 = 3.2 (paper Section 4.2.2).
    EXPECT_NEAR(s.threshold(), 3.2, 1e-9);
}

TEST(BansheeScheme, LargePageThresholdAndTraffic)
{
    SchemeHarness h(8ull << 20); // 8 MB -> one 4-way 2 MB set
    BansheeConfig cfg;
    cfg.pageBits = kLargePageBits;
    cfg.samplingCoeff = 0.001;
    cfg.policy = BansheeConfig::Policy::FbrNoSample;
    cfg.replaceThreshold = 0.0;
    BansheeScheme s(h.ctx, cfg);
    // Default threshold formula at 2 MB: 32768 x 0.001 / 2 = 16.4.
    BansheeScheme def(h.ctx, [] {
        BansheeConfig c;
        c.pageBits = kLargePageBits;
        c.samplingCoeff = 0.001;
        return c;
    }());
    EXPECT_NEAR(def.threshold(), 16.384, 1e-6);

    const LineAddr line = lineOf(0x10000000);
    h.fetch(s, line);
    h.resetTraffic();
    h.fetch(s, line); // replacement of a 2 MB page
    EXPECT_EQ(h.offBytes(TrafficCat::Fill), kLargePageBytes);
    EXPECT_EQ(h.inBytes(TrafficCat::Replacement), kLargePageBytes);
    // A different line of the same 2 MB page now hits.
    h.resetTraffic();
    h.fetch(s, line + (1 << 14) / kLineBytes);
    EXPECT_EQ(h.inBytes(TrafficCat::HitData), 64u);
}

TEST(BansheeScheme, AdaptiveSampleRateTracksMissRate)
{
    SchemeHarness h;
    BansheeConfig cfg;
    cfg.samplingCoeff = 0.1;
    BansheeScheme s(h.ctx, cfg);
    EXPECT_NEAR(s.currentSampleRate(), 0.1, 1e-9); // miss rate starts 1.0
    // Hammer one uncached page: miss rate stays 1, rate stays 0.1.
    for (int i = 0; i < 300; ++i)
        h.fetch(s, lineOf(0x800000 + i * kPageBytes * 16));
    EXPECT_NEAR(s.currentSampleRate(), 0.1, 0.02);
}

TEST(BansheeScheme, LruAblationReplacesOnEveryMissAndPaysMetadata)
{
    SchemeHarness h;
    BansheeConfig cfg;
    cfg.policy = BansheeConfig::Policy::LruEveryMiss;
    BansheeScheme s(h.ctx, cfg);
    const LineAddr line = lineOf(0x900000);
    h.fetch(s, line);
    EXPECT_EQ(s.pagesInserted(), 1u); // cached on first miss
    // Every access reads + writes the 32 B LRU metadata.
    EXPECT_EQ(h.inBytes(TrafficCat::Counter), 64u);
    h.resetTraffic();
    h.fetch(s, line);
    EXPECT_EQ(s.hits(), 1u);
    EXPECT_EQ(h.inBytes(TrafficCat::Counter), 64u);
}

TEST(BansheeScheme, CounterOverflowHalvesSet)
{
    SchemeHarness h;
    BansheeConfig cfg = aggressive();
    cfg.counterBits = 3; // max 7: quick to saturate
    BansheeScheme s(h.ctx, cfg);
    const LineAddr line = lineOf(0xA00000);
    for (int i = 0; i < 12; ++i)
        h.fetch(s, line);
    EXPECT_GT(s.stats().value("counterOverflows"), 0u);
}

TEST(BansheeScheme, CapacityLossDecayHalvesCountersOnlyWhenEnabled)
{
    // The shrink-commit decay hook (resize satellite): with
    // fbrDecayOnShrink set, onCapacityLoss() halves every FBR counter
    // so the slimmer cache's residents re-earn their standing; with
    // the seed default (off), counters are untouched.
    for (const bool decay : {false, true}) {
        SchemeHarness h;
        BansheeConfig cfg = aggressive();
        cfg.fbrDecayOnShrink = decay;
        BansheeScheme s(h.ctx, cfg);
        FbrDirectory &dir = s.directory();
        dir.cached(0, 0) = {/*tag=*/7, /*count=*/12, 0, true, false};
        dir.cached(1, 2) = {/*tag=*/9, /*count=*/5, 0, true, true};

        s.onCapacityLoss();
        EXPECT_EQ(dir.cached(0, 0).count, decay ? 6u : 12u);
        EXPECT_EQ(dir.cached(1, 2).count, decay ? 2u : 5u);
        // Residency and dirtiness survive the decay untouched.
        EXPECT_TRUE(dir.cached(0, 0).valid);
        EXPECT_TRUE(dir.cached(1, 2).dirty);
    }
}

// ------------------------------------------------------------------
// Per-core mapping memo (setOfMemo)
// ------------------------------------------------------------------

TEST(BansheeScheme, MappingMemoHitsOnRepeatAndIsPerCore)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, neverSample());
    const PageNum p1 = 0x100, p2 = 0x200;

    const std::uint32_t set1 = s.setOfMemo(p1, /*core=*/0);
    EXPECT_EQ(s.setMemoHits(), 0u);
    EXPECT_EQ(s.setOfMemo(p1, 0), set1);
    EXPECT_EQ(s.setMemoHits(), 1u);

    // Depth-1 MRU: a different page evicts the entry...
    s.setOfMemo(p2, 0);
    EXPECT_EQ(s.setOfMemo(p1, 0), set1); // recomputed, still correct
    EXPECT_EQ(s.setMemoHits(), 1u);

    // ...but another core's entry is independent of core 0's churn.
    EXPECT_EQ(s.setOfMemo(p1, 1), set1);
    EXPECT_EQ(s.setOfMemo(p1, 1), set1);
    EXPECT_EQ(s.setMemoHits(), 2u);
}

TEST(BansheeScheme, MappingMemoInvalidatesOnResizeCommit)
{
    SchemeHarness h;
    BansheeScheme s(h.ctx, neverSample());
    ResizeConfig rc;
    rc.enabled = true;
    ResizeDomain dom(h.eq, s, rc, "rd");
    s.attachResizeDomain(&dom);

    const PageNum page = 0x42;
    const std::uint32_t before = s.setOfMemo(page, 0);
    EXPECT_EQ(s.setOfMemo(page, 0), before);
    EXPECT_EQ(s.setMemoHits(), 1u);

    // Shrink one slice (empty cache: the drain completes inline).
    const std::uint64_t gen = dom.layoutGeneration();
    bool done = false;
    dom.resizeTo(dom.activeSlices() - 1, [&done] { done = true; });
    h.drain();
    ASSERT_TRUE(done);
    EXPECT_GT(dom.layoutGeneration(), gen);

    // The next lookup must recompute against the new layout, not
    // serve the pre-resize entry.
    const std::uint64_t hits = s.setMemoHits();
    const std::uint32_t after = s.setOfMemo(page, 0);
    EXPECT_EQ(s.setMemoHits(), hits);
    EXPECT_EQ(after, s.setOf(page));
    // And the refreshed entry hits again under the new generation.
    EXPECT_EQ(s.setOfMemo(page, 0), after);
    EXPECT_EQ(s.setMemoHits(), hits + 1);
}

} // namespace
} // namespace banshee
