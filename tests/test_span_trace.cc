/**
 * @file
 * Span-trace invariants: the sampler is a pure seeded hash (identical
 * sampled sets regardless of thread count or call order), tracing off
 * leaves simulation results bit-identical, sweeps route each
 * experiment to its own trace file whose bytes do not depend on the
 * worker-thread count, and the emitted files are well-formed Chrome
 * trace-event JSON.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/system.hh"
#include "telemetry/span_trace.hh"
#include "telemetry/trace_sink.hh"

namespace banshee {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle); pos != std::string::npos;
         pos = hay.find(needle, pos + needle.size()))
        ++n;
    return n;
}

TEST(SpanSampler, DeterministicAndSeedSensitive)
{
    for (PageNum page = 0; page < 4096; ++page) {
        EXPECT_EQ(PageJournal::sampled(page, 1, 4),
                  PageJournal::sampled(page, 1, 4));
    }
    // Different seeds pick different sets (overlap is fine; identity
    // would mean the seed is ignored).
    std::size_t differs = 0;
    for (PageNum page = 0; page < 4096; ++page) {
        if (PageJournal::sampled(page, 1, 4) !=
            PageJournal::sampled(page, 2, 4))
            ++differs;
    }
    EXPECT_GT(differs, 0u);
}

TEST(SpanSampler, ShiftControlsFraction)
{
    // shift 0 samples everything.
    for (PageNum page = 0; page < 256; ++page)
        EXPECT_TRUE(PageJournal::sampled(page, 42, 0));

    // shift 4 samples ~1/16 of a large page range (the hash is not a
    // counter, so allow a generous 2x band).
    std::size_t hits = 0;
    const std::size_t total = 1u << 16;
    for (PageNum page = 0; page < total; ++page)
        hits += PageJournal::sampled(page, 42, 4) ? 1 : 0;
    EXPECT_GT(hits, total / 32);
    EXPECT_LT(hits, total / 8);
}

TEST(SpanTracePath, LabelSanitizedAndDirectoriesCreated)
{
    EXPECT_EQ(sanitizeRunLabel("a/b c:d"), "a_b_c_d");
    EXPECT_EQ(sanitizeRunLabel("ok-1.2_x"), "ok-1.2_x");

    // Plain file + perRun: the label splices in before the extension.
    EXPECT_EQ(resolveTracePath("out.trace.json", "w/x", ".trace.json",
                               true),
              "out-w_x.trace.json");
    // Non-perRun file paths pass through untouched (shared sinks).
    EXPECT_EQ(resolveTracePath("out.jsonl", "w/x", ".jsonl", false),
              "out.jsonl");
    EXPECT_EQ(resolveTracePath("", "w", ".jsonl", false), "");

    // Directory path: created on demand, one file per label.
    const std::string dir = ::testing::TempDir() + "span_path_dir";
    std::remove((dir + "/lbl.trace.json").c_str());
    const std::string p =
        resolveTracePath(dir + "/", "lbl", ".trace.json", true);
    EXPECT_EQ(p, dir + "/lbl.trace.json");
    std::FILE *f = std::fopen(p.c_str(), "w");
    ASSERT_NE(f, nullptr) << "directory was not created";
    std::fclose(f);
    std::remove(p.c_str());
}

SystemConfig
tinyConfig()
{
    SystemConfig c = SystemConfig::testDefault();
    c.numCores = 4;
    c.warmupInstrPerCore = 5'000;
    c.measureInstrPerCore = 10'000;
    return c;
}

TEST(SpanTrace, TracingDoesNotPerturbSimulation)
{
    SystemConfig plain = tinyConfig();
    const std::string path =
        ::testing::TempDir() + "span_perturb.trace.json";
    SystemConfig traced = tinyConfig();
    traced.withSpanTrace(path, /*sampleShift=*/2);

    RunResult a = System(plain).run();
    RunResult b = System(traced).run();
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramCacheAccesses, b.dramCacheAccesses);
    EXPECT_EQ(a.dramCacheMisses, b.dramCacheMisses);
    EXPECT_EQ(a.inPkgBytes, b.inPkgBytes);
    EXPECT_EQ(a.offPkgBytes, b.offPkgBytes);
    std::remove(path.c_str());
}

TEST(SpanTrace, WellFormedAndCausallyComplete)
{
    const std::string path =
        ::testing::TempDir() + "span_wellformed.trace.json";
    SystemConfig c = tinyConfig();
    c.withSpanTrace(path, /*sampleShift=*/2);
    {
        System sys(c);
        sys.run();
        // finish() ran in collect(); the dtor close is idempotent.
    }
    const std::string trace = slurp(path);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.front(), '[');
    EXPECT_EQ(trace.substr(trace.size() - 2), "]\n");

    // Matched duration + async pairs.
    EXPECT_EQ(countOccurrences(trace, "\"ph\": \"B\""),
              countOccurrences(trace, "\"ph\": \"E\""));
    EXPECT_EQ(countOccurrences(trace, "\"ph\": \"b\""),
              countOccurrences(trace, "\"ph\": \"e\""));

    // The causal chain's landmarks all appear: sampled accesses,
    // fetch spans, channel queue/service slices, residency spans and
    // named tracks.
    EXPECT_GT(countOccurrences(trace, "\"name\": \"access\""), 0u);
    EXPECT_GT(countOccurrences(trace, "\"name\": \"fetch\""), 0u);
    EXPECT_GT(countOccurrences(trace, "\"name\": \"queue\""), 0u);
    EXPECT_GT(countOccurrences(trace, "\"name\": \"service\""), 0u);
    EXPECT_GT(countOccurrences(trace, "\"name\": \"resident\""), 0u);
    EXPECT_GT(countOccurrences(trace, "\"name\": \"thread_name\""), 0u);
    EXPECT_GT(countOccurrences(trace, "\"name\": \"run_info\""), 0u);
    std::remove(path.c_str());
}

TEST(SpanTrace, SweepRoutesPerLabelAndIsThreadCountInvariant)
{
    auto sweepInto = [](const std::string &dir, unsigned threads) {
        std::vector<Experiment> exps;
        for (const char *wl : {"pagerank", "libquantum"}) {
            SystemConfig c = tinyConfig();
            c.workload = wl;
            c.withSpanTrace(dir + "/", /*sampleShift=*/2);
            exps.push_back({std::string(wl) + "/Banshee", c});
        }
        SweepOptions opts;
        opts.threads = threads;
        opts.showProgress = false;
        runSweep(exps, opts);
    };

    const std::string dir1 = ::testing::TempDir() + "span_sweep_t1";
    const std::string dir2 = ::testing::TempDir() + "span_sweep_t2";
    sweepInto(dir1, 1);
    sweepInto(dir2, 2);

    for (const char *name :
         {"pagerank_Banshee.trace.json", "libquantum_Banshee.trace.json"}) {
        const std::string a = slurp(dir1 + "/" + name);
        const std::string b = slurp(dir2 + "/" + name);
        EXPECT_FALSE(a.empty()) << name;
        EXPECT_EQ(a, b) << name
                        << ": trace bytes depend on worker threads";
        std::remove((dir1 + "/" + name).c_str());
        std::remove((dir2 + "/" + name).c_str());
    }
}

} // namespace
} // namespace banshee
