/**
 * @file
 * Unit tests for src/telemetry: histogram bucket math and
 * percentiles, the epoch sampler's cadence, the JSONL trace schema,
 * and the off-by-default guarantee (telemetry must not perturb a
 * run's results).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "sim/system.hh"
#include "telemetry/histogram.hh"
#include "telemetry/metric_registry.hh"
#include "telemetry/scoped_timer.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_sink.hh"

namespace banshee {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    return lines;
}

TEST(Histogram, BucketBounds)
{
    // Bucket 0 is exactly the value 0; bucket i >= 1 is [2^(i-1), 2^i).
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);

    for (std::uint32_t b = 0; b < Histogram::kBuckets - 1; ++b) {
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLow(b)), b);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHigh(b)), b);
        EXPECT_LE(Histogram::bucketLow(b), Histogram::bucketHigh(b));
    }
    // The last bucket saturates: anything above 2^46 lands in it.
    EXPECT_EQ(Histogram::bucketOf(~0ull), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucketHigh(Histogram::kBuckets - 1), ~0ull);
}

TEST(Histogram, CountSumMaxMean)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.99), 0u);

    h.record(0);
    h.record(10);
    h.record(20);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 30u);
    EXPECT_EQ(h.max(), 20u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, PercentilesAreConservativeAndClamped)
{
    Histogram h;
    // 950 fast samples (value 100) and 50 slow ones (value 9000): the
    // tail must surface at p99 and never exceed the observed max.
    for (int i = 0; i < 950; ++i)
        h.record(100);
    for (int i = 0; i < 50; ++i)
        h.record(9000);
    // p50 lands in 100's bucket [64, 128): upper bound 127.
    EXPECT_EQ(h.percentile(0.50), 127u);
    // p99 lands in the tail bucket [8192, 16384) but is clamped by
    // the true max.
    EXPECT_EQ(h.percentile(0.99), 9000u);
    EXPECT_EQ(h.percentile(1.0), 9000u);

    // Uniform distribution: every percentile equals the single value.
    Histogram u;
    for (int i = 0; i < 100; ++i)
        u.record(5);
    EXPECT_EQ(u.percentile(0.50), 5u);
    EXPECT_EQ(u.percentile(0.99), 5u);
}

TEST(Histogram, MergeResetAndTrimmedBuckets)
{
    Histogram a;
    Histogram b;
    a.record(1);
    b.record(100);
    b.record(0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 101u);
    EXPECT_EQ(a.max(), 100u);

    // Trimmed bucket vector stops after the last nonzero bucket.
    const auto counts = a.bucketCounts();
    EXPECT_EQ(counts.size(), Histogram::bucketOf(100) + 1);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_TRUE(a.bucketCounts().empty());

    const HistogramSummary s = b.summary("qlat");
    EXPECT_EQ(s.name, "qlat");
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.max, 100u);
}

TEST(MetricRegistry, EpochSamplerCadence)
{
    EventQueue eq;
    MetricRegistry reg;
    reg.addGauge("now", [&eq] { return static_cast<double>(eq.now()); });

    std::vector<Cycle> sampleCycles;
    reg.start(eq, 100, [&sampleCycles](const MetricRegistry::Sample &s) {
        sampleCycles.push_back(s.cycle);
    });
    eq.run(1000); // the sampler self-reschedules; bound the clock

    ASSERT_GE(sampleCycles.size(), 5u);
    for (std::size_t i = 0; i < sampleCycles.size(); ++i) {
        EXPECT_EQ(sampleCycles[i], 100 * (i + 1));
        EXPECT_DOUBLE_EQ(reg.series()[i].values[0],
                         static_cast<double>(sampleCycles[i]));
        EXPECT_EQ(reg.series()[i].epoch, i);
    }

    // stop() disarms the pending clock event.
    const std::size_t taken = sampleCycles.size();
    reg.stop();
    eq.run(2000);
    EXPECT_EQ(sampleCycles.size(), taken);
}

TEST(MetricRegistry, CountersAndStatSets)
{
    EventQueue eq;
    MetricRegistry reg;
    StatSet set("dev");
    set.counter("reads") += 7;
    set.counter("writes") += 2;
    reg.addStatSet(set, "dev.");

    const auto &s = reg.sample(eq.now());
    ASSERT_EQ(reg.metricNames().size(), 2u);
    EXPECT_EQ(reg.metricNames()[0], "dev.reads");
    EXPECT_DOUBLE_EQ(s.values[0], 7.0);
    EXPECT_DOUBLE_EQ(s.values[1], 2.0);
}

TEST(ScopedTimer, NullTimerIsNoop)
{
    {
        ScopedTimer t(nullptr); // must not crash
    }
    PhaseTimer timer;
    {
        ScopedTimer t(&timer);
    }
    EXPECT_EQ(timer.calls, 1u);
}

TEST(TraceSink, JsonlSchemaRoundTrip)
{
    const std::string path = tempPath("trace_roundtrip.jsonl");
    {
        TraceSink sink(path);
        sink.event("runA", 42, "resize_start",
                   {{"from", 8u}, {"to", 6u}, {"strategy", "ch"},
                    {"frac", 0.75}});
        sink.event("run\"B\\", 43, "plain", {});
    }

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0],
              "{\"run\": \"runA\", \"cycle\": 42, "
              "\"event\": \"resize_start\", \"from\": 8, \"to\": 6, "
              "\"strategy\": \"ch\", \"frac\": 0.75}");
    // Quotes and backslashes in labels must be escaped.
    EXPECT_EQ(lines[1],
              "{\"run\": \"run\\\"B\\\\\", \"cycle\": 43, "
              "\"event\": \"plain\"}");
}

TEST(Telemetry, EpochEventsCarryMetricsAndHistograms)
{
    const std::string path = tempPath("trace_epochs.jsonl");
    {
        EventQueue eq;
        TelemetryConfig config;
        config.enabled = true;
        config.path = path;
        config.epochCycles = 50;
        config.runLabel = "unit";
        Telemetry telem(eq, config);

        Histogram &lat = telem.histogram("lat");
        telem.registry().addGauge("g", [] { return 1.5; });
        lat.record(3);
        telem.startEpochs();
        eq.run(120);
        telem.finishEpochs();
    }

    const auto lines = readLines(path);
    // Baseline sample + two epochs + the closing sample.
    ASSERT_EQ(lines.size(), 4u);
    for (const auto &line : lines) {
        EXPECT_NE(line.find("\"run\": \"unit\""), std::string::npos);
        EXPECT_NE(line.find("\"event\": \"epoch\""), std::string::npos);
        EXPECT_NE(line.find("\"g\": 1.500000"), std::string::npos);
        EXPECT_NE(line.find("\"lat\": {\"count\": 1, \"sum\": 3, "
                            "\"max\": 3, \"buckets\": [0, 0, 1]}"),
                  std::string::npos);
    }
    EXPECT_NE(lines[0].find("\"epoch\": 0"), std::string::npos);
    EXPECT_NE(lines[1].find("\"cycle\": 50"), std::string::npos);
    EXPECT_NE(lines[2].find("\"cycle\": 100"), std::string::npos);
}

TEST(Telemetry, DisabledByDefaultLeavesResultsIdentical)
{
    // The telemetry acceptance bar: enabling it must not change what
    // the simulator computes, and leaving it off must add nothing.
    // The default pagerank workload misses the SRAM hierarchy enough
    // to exercise the DRAM channels (a too-small footprint records
    // nothing and the histogram assertions below would be vacuous).
    SystemConfig off = SystemConfig::testDefault();
    EXPECT_FALSE(off.telemetry.enabled);

    SystemConfig on = off;
    on.withTelemetry(tempPath("trace_identity.jsonl"), usToCycles(5.0));
    EXPECT_TRUE(on.telemetry.enabled);

    System offSys(off);
    const RunResult a = offSys.run();
    System onSys(on);
    const RunResult b = onSys.run();

    // Simulated outcomes are deterministic and telemetry is
    // read-only accounting: every integer statistic matches exactly.
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(a.dramCacheAccesses, 0u);
    EXPECT_EQ(a.dramCacheAccesses, b.dramCacheAccesses);
    EXPECT_EQ(a.dramCacheMisses, b.dramCacheMisses);
    EXPECT_EQ(a.pagesMigrated, b.pagesMigrated);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    // Energy integrates lazily at observation points, so the epoch
    // gauge adds integration steps: equal up to rounding, not bitwise.
    EXPECT_NEAR(a.totalEnergyPJ(), b.totalEnergyPJ(),
                1e-6 * a.totalEnergyPJ());

    EXPECT_TRUE(a.histograms.empty());
    EXPECT_FALSE(b.histograms.empty());
    bool sawQueueLat = false;
    for (const auto &h : b.histograms) {
        if (h.name == "inpkg.ch0.queueLat") {
            sawQueueLat = true;
            EXPECT_GT(h.count, 0u);
            EXPECT_GE(h.p95, h.p50);
            EXPECT_GE(h.max, h.p99);
        }
    }
    EXPECT_TRUE(sawQueueLat);
}

} // namespace
} // namespace banshee
