/**
 * @file
 * Power subsystem tests: DramPowerModel energy identities (dynamic
 * energy monotone in traffic, background/refresh proportional to the
 * ungated slice fraction, piecewise gating integration), PowerCapPolicy
 * convergence under a step change in the cap, and end-to-end checks
 * that a shrink gates background/refresh power on the full machine.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "power/power_cap_policy.hh"
#include "power/power_model.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"

namespace banshee {
namespace {

DramPowerModel
makeModel(StatSet &stats, std::uint32_t channels = 4)
{
    return DramPowerModel(DramPowerParams::inPackage(), DramTiming{},
                          channels, stats);
}

TEST(DramPowerModel, DerivedConstantsArePhysical)
{
    StatSet stats("power");
    DramPowerModel m = makeModel(stats);
    EXPECT_GT(m.actPrePJ(), 0.0);
    EXPECT_GT(m.readPJPerByte(), 0.0);
    // Writes burn slightly more core energy than reads (IDD4W>IDD4R).
    EXPECT_GT(m.writePJPerByte(), m.readPJPerByte());
    EXPECT_GT(m.backgroundFloorWatts(), 0.0);
    EXPECT_GT(m.refreshWatts(), 0.0);
    // Off-package I/O makes every byte more expensive than in-package.
    StatSet offStats("offPower");
    DramPowerModel off(DramPowerParams::offPackage(), DramTiming{}, 1,
                       offStats);
    EXPECT_GT(off.readPJPerByte(), m.readPJPerByte());
}

TEST(DramPowerModel, DynamicEnergyMonotoneInTraffic)
{
    StatSet stats("power");
    DramPowerModel m = makeModel(stats);
    EXPECT_DOUBLE_EQ(m.energy().dynamicTotalPJ(), 0.0);

    m.onBurst(64, 0, false, TrafficCat::HitData);
    const double one = m.energy().dynamicTotalPJ();
    EXPECT_GT(one, 0.0);
    m.onBurst(64, 0, false, TrafficCat::HitData);
    EXPECT_DOUBLE_EQ(m.energy().dynamicTotalPJ(), 2.0 * one);
    m.onActivate(TrafficCat::HitData);
    EXPECT_DOUBLE_EQ(m.energy().dynamicTotalPJ(),
                     2.0 * one + m.actPrePJ());
    // Attribution follows the request's category.
    m.onBurst(256, 0, true, TrafficCat::Migration);
    EXPECT_DOUBLE_EQ(m.energy().dynamicPJ(TrafficCat::Migration),
                     256.0 * m.writePJPerByte());
    EXPECT_DOUBLE_EQ(m.energy().dynamicPJ(TrafficCat::Demand), 0.0);
}

TEST(DramPowerModel, TagSplitMirrorsTrafficAccounting)
{
    StatSet stats("power");
    DramPowerModel m = makeModel(stats);
    m.onBurst(96, 32, false, TrafficCat::Replacement);
    EXPECT_DOUBLE_EQ(m.energy().dynamicPJ(TrafficCat::Tag),
                     32.0 * m.readPJPerByte());
    EXPECT_DOUBLE_EQ(m.energy().dynamicPJ(TrafficCat::Replacement),
                     64.0 * m.readPJPerByte());
}

TEST(DramPowerModel, BackgroundAndRefreshScaleWithUngatedFraction)
{
    const Cycle interval = usToCycles(100.0);
    StatSet statsA("a"), statsB("b");
    DramPowerModel full = makeModel(statsA);
    DramPowerModel gated = makeModel(statsB);
    gated.setGatedSliceFraction(0.25, 0);

    full.finalize(interval);
    gated.finalize(interval);
    EXPECT_GT(full.energy().refreshPJ(), 0.0);
    EXPECT_GT(full.energy().backgroundPJ(), 0.0);
    // Gating 2 of 8 slices sheds exactly their share.
    EXPECT_NEAR(gated.energy().refreshPJ(),
                0.75 * full.energy().refreshPJ(),
                1e-6 * full.energy().refreshPJ());
    EXPECT_NEAR(gated.energy().backgroundPJ(),
                0.75 * full.energy().backgroundPJ(),
                1e-6 * full.energy().backgroundPJ());
    EXPECT_NEAR(gated.backgroundRefreshWatts(),
                0.75 * full.backgroundRefreshWatts(), 1e-9);
}

TEST(DramPowerModel, GatingIntegratesPiecewise)
{
    const Cycle half = usToCycles(50.0);
    StatSet statsA("a"), statsB("b");
    DramPowerModel full = makeModel(statsA);
    DramPowerModel switched = makeModel(statsB);

    // Fully on for the first half, half gated for the second: total
    // background must land at 75% of the always-on run.
    switched.setGatedSliceFraction(0.5, half);
    switched.finalize(2 * half);
    full.finalize(2 * half);
    EXPECT_NEAR(switched.energy().backgroundPJ(),
                0.75 * full.energy().backgroundPJ(),
                1e-6 * full.energy().backgroundPJ());
}

TEST(DramPowerModel, ResetStatsRestartsIntegrationButKeepsGating)
{
    StatSet stats("power");
    DramPowerModel m = makeModel(stats);
    m.setGatedSliceFraction(0.5, 0);
    m.onBurst(64, 0, false, TrafficCat::Demand);
    m.finalize(usToCycles(10.0));
    EXPECT_GT(m.energy().totalPJ(), 0.0);

    m.resetStats(usToCycles(10.0));
    EXPECT_DOUBLE_EQ(m.energy().totalPJ(), 0.0);
    EXPECT_DOUBLE_EQ(m.gatedSliceFraction(), 0.5);
    m.finalize(usToCycles(20.0));
    StatSet refStats("ref");
    DramPowerModel ref = makeModel(refStats);
    ref.setGatedSliceFraction(0.5, 0);
    ref.finalize(usToCycles(10.0));
    EXPECT_NEAR(m.energy().backgroundPJ(), ref.energy().backgroundPJ(),
                1e-6 * ref.energy().backgroundPJ());
}

// ------------------------------------------------------------------
// PowerCapPolicy
// ------------------------------------------------------------------

/** Epoch stats for a synthetic device: fixed dynamic power plus a
 *  per-slice background share. */
ResizeEpochStats
syntheticEpoch(double dynamicWatts, double perSliceWatts,
               std::uint32_t active)
{
    ResizeEpochStats s;
    s.accesses = 100'000;
    s.misses = 10'000;
    s.bgRefreshWatts = perSliceWatts * active;
    s.avgPowerWatts = dynamicWatts + s.bgRefreshWatts;
    return s;
}

TEST(PowerCapPolicy, ConvergesUnderStepChangeInCap)
{
    ResizePolicyConfig config;
    config.kind = ResizePolicyConfig::Kind::PowerCap;
    config.minSlices = 2;
    config.powerGrowMargin = 0.5;
    const double dynamic = 4.0;
    const double perSlice = 0.5;

    // Step the cap below the 8-slice draw (4 + 8*0.5 = 8 W): the
    // policy sheds one slice per epoch until the device fits.
    config.powerCapWatts = 6.2;
    ResizePolicy policy(config);
    std::uint32_t active = 8;
    for (int epoch = 0; epoch < 12; ++epoch) {
        const auto t = policy.decide(
            epoch, syntheticEpoch(dynamic, perSlice, active), active, 8);
        if (!t.has_value())
            break;
        EXPECT_EQ(*t, active - 1) << "sheds exactly one slice per epoch";
        active = *t;
    }
    // 4 + 4*0.5 = 6 W <= 6.2 W: converged at 4 slices, and stays put.
    EXPECT_EQ(active, 4u);
    for (int epoch = 0; epoch < 4; ++epoch) {
        EXPECT_FALSE(policy.decide(epoch,
                                   syntheticEpoch(dynamic, perSlice,
                                                  active),
                                   active, 8)
                         .has_value());
    }

    // Step the cap back up: grows while headroom covers a slice's
    // share plus the hysteresis margin, then holds (7 slices: growing
    // to 8 would need 7.5 + 0.75 <= 8, which fails).
    config.powerCapWatts = 8.0;
    ResizePolicy raised(config);
    for (int epoch = 0; epoch < 12; ++epoch) {
        const auto t = raised.decide(
            epoch, syntheticEpoch(dynamic, perSlice, active), active, 8);
        if (!t.has_value())
            break;
        EXPECT_EQ(*t, active + 1);
        active = *t;
    }
    EXPECT_EQ(active, 7u);
}

TEST(PowerCapPolicy, RespectsFloorAndDisabledCap)
{
    ResizePolicyConfig config;
    config.kind = ResizePolicyConfig::Kind::PowerCap;
    config.minSlices = 6;
    config.powerCapWatts = 0.1; // unreachable: even minSlices is over
    ResizePolicy policy(config);

    std::uint32_t active = 8;
    auto t = policy.decide(0, syntheticEpoch(4.0, 0.5, active), active, 8);
    ASSERT_TRUE(t.has_value());
    active = *t;
    t = policy.decide(1, syntheticEpoch(4.0, 0.5, active), active, 8);
    ASSERT_TRUE(t.has_value());
    active = *t;
    EXPECT_EQ(active, 6u);
    // At the floor the policy stops even though the cap is exceeded.
    EXPECT_FALSE(policy.decide(2, syntheticEpoch(4.0, 0.5, active),
                               active, 8)
                     .has_value());

    // A zero/negative cap disables the policy entirely.
    config.powerCapWatts = 0.0;
    ResizePolicy off(config);
    EXPECT_FALSE(off.decide(0, syntheticEpoch(4.0, 0.5, 8), 8, 8)
                     .has_value());
    // No measured background power -> shedding cannot save anything.
    config.powerCapWatts = 1.0;
    ResizePolicy noBg(config);
    EXPECT_FALSE(noBg.decide(0, syntheticEpoch(4.0, 0.0, 8), 8, 8)
                     .has_value());
}

// ------------------------------------------------------------------
// End-to-end: gating on the full machine
// ------------------------------------------------------------------

SystemConfig
powerBase(const std::string &workload)
{
    SystemConfig c = SystemConfig::testDefault();
    c.workload = workload;
    c.withScheme(SchemeKind::Banshee);
    c.measureInstrPerCore = 60'000;
    c.resize.hash.numSlices = 8;
    c.resize.policy.epoch = usToCycles(2.0);
    c.resize.migration.pagesPerBatch = 16;
    c.resize.migration.batchInterval = nsToCycles(100.0);
    return c;
}

TEST(PowerEndToEnd, RunResultCarriesEnergy)
{
    System s(powerBase("libquantum"));
    const RunResult r = s.run();
    EXPECT_GT(r.totalEnergyPJ(), 0.0);
    EXPECT_GT(r.energyPerInstrPJ(), 0.0);
    EXPECT_GT(r.inPkgBackgroundPJ, 0.0);
    EXPECT_GT(r.inPkgRefreshPJ, 0.0);
    EXPECT_GT(r.inPkgActiveStandbyPJ, 0.0);
    EXPECT_GT(r.inPkgAvgPowerWatts, 0.0);
    EXPECT_GT(r.offPkgAvgPowerWatts, 0.0);
    // A cache-friendly workload serves demand hits in-package.
    EXPECT_GT(r.inPkgDynPJ[static_cast<std::size_t>(TrafficCat::HitData)],
              0.0);
    // Energy breakdown is consistent with the traffic breakdown:
    // categories that moved no bytes burned no dynamic energy, and
    // categories with real volume burned some. (Requests still queued
    // at phase end are counted as traffic before they issue, so only
    // volumes above one request are asserted nonzero.)
    for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
        if (r.inPkgBytes[c] == 0) {
            EXPECT_DOUBLE_EQ(r.inPkgDynPJ[c], 0.0);
        } else if (r.inPkgBytes[c] > 16 * kMaxRequestBytes) {
            EXPECT_GT(r.inPkgDynPJ[c], 0.0);
        }
    }
}

TEST(PowerEndToEnd, ShrinkGatesBackgroundAndRefreshPower)
{
    SystemConfig none = powerBase("omnetpp");
    SystemConfig shrink = powerBase("omnetpp");
    shrink.withResizeStep(1, 4);

    System a(none), b(shrink);
    const RunResult ra = a.run();
    const RunResult rb = b.run();
    EXPECT_EQ(rb.finalActiveSlices, 4u);

    // The shrunk run spends strictly less background + refresh energy
    // per cycle: deactivated slices stop refreshing.
    const double raPerCycle = ra.inPkgBgRefreshPJ() / ra.cycles;
    const double rbPerCycle = rb.inPkgBgRefreshPJ() / rb.cycles;
    EXPECT_LT(rbPerCycle, raPerCycle);
    EXPECT_LT(rb.inPkgRefreshPJ / rb.cycles, ra.inPkgRefreshPJ / ra.cycles);
    // And the migration drain's energy is visible per category.
    EXPECT_GT(rb.inPkgDynPJ[static_cast<std::size_t>(
                  TrafficCat::Migration)],
              0.0);
}

TEST(PowerEndToEnd, PowerCapShedsSlicesOnFullMachine)
{
    // Uncapped reference to measure the device's power draw.
    SystemConfig base = powerBase("omnetpp");
    System ref(base);
    const RunResult un = ref.run();
    ASSERT_GT(un.inPkgAvgPowerWatts, 0.0);

    // Cap decisively below the measured draw (dynamic power noise at
    // test scale dwarfs one slice's background share, so a marginal
    // cap would sit inside the noise band): the policy sheds slices
    // to its floor and holds there, since growing would need smoothed
    // power a full hysteresis margin under the unreachable budget.
    SystemConfig capped = powerBase("omnetpp");
    capped.withPowerCap(0.75 * un.inPkgAvgPowerWatts, /*minSlices=*/6);
    System s(capped);
    const RunResult r = s.run();

    EXPECT_GE(r.resizesStarted, 1u);
    EXPECT_EQ(r.finalActiveSlices, 6u);
    EXPECT_LT(r.inPkgBgRefreshPJ() / r.cycles,
              un.inPkgBgRefreshPJ() / un.cycles);
    s.resizeController()->verifyResidencyConsistent();
}

} // namespace
} // namespace banshee
