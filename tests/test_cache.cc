/**
 * @file
 * Unit tests for the SRAM cache and the three-level hierarchy:
 * replacement policies, dirty handling, inclusion/back-invalidation,
 * MSHR merging and LLC writeback generation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "common/event_queue.hh"

namespace banshee {
namespace {

CacheParams
smallCache(std::uint32_t ways, ReplPolicy policy = ReplPolicy::Lru)
{
    CacheParams p;
    p.name = "t";
    p.sizeBytes = 64ull * 8 * ways; // 8 sets
    p.ways = ways;
    p.policy = policy;
    return p;
}

TEST(Cache, HitAfterInsert)
{
    Cache c(smallCache(2));
    EXPECT_FALSE(c.lookup(8, false));
    c.insert(8, false);
    EXPECT_TRUE(c.lookup(8, false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(smallCache(2));
    // Same set: lines 0, 8, 16 with 8 sets.
    c.insert(0, false);
    c.insert(8, false);
    c.lookup(0, false); // refresh 0
    const auto victim = c.insert(16, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, 8u);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(16));
}

TEST(Cache, FifoIgnoresHits)
{
    Cache c(smallCache(2, ReplPolicy::Fifo));
    c.insert(0, false);
    c.insert(8, false);
    c.lookup(0, false); // should NOT refresh under FIFO
    const auto victim = c.insert(16, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, 0u);
}

TEST(Cache, DirtyBitOnWriteAndEviction)
{
    Cache c(smallCache(1));
    c.insert(0, false);
    c.lookup(0, true); // store
    const auto victim = c.insert(8, false);
    ASSERT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
}

TEST(Cache, InvalidateReturnsState)
{
    Cache c(smallCache(2));
    c.insert(8, true);
    const auto removed = c.invalidate(8);
    EXPECT_TRUE(removed.valid);
    EXPECT_TRUE(removed.dirty);
    EXPECT_FALSE(c.contains(8));
    EXPECT_FALSE(c.invalidate(8).valid); // second time: absent
}

TEST(Cache, MetaRoundTrip)
{
    Cache c(smallCache(2));
    c.insert(8, false, 0xBEEF);
    EXPECT_EQ(c.meta(8), 0xBEEF);
    c.setMeta(8, 0x1234);
    EXPECT_EQ(c.meta(8), 0x1234);
}

TEST(Cache, InsertPrefersInvalidWays)
{
    Cache c(smallCache(4));
    c.insert(0, false);
    const auto v = c.insert(8, false);
    EXPECT_FALSE(v.valid); // three ways were still empty
}

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometryTest, FillsToCapacityWithoutEvicting)
{
    const auto [setsLog2, ways] = GetParam();
    const std::uint32_t sets = 1u << setsLog2;
    CacheParams p;
    p.sizeBytes = static_cast<std::uint64_t>(sets) * ways * 64;
    p.ways = static_cast<std::uint32_t>(ways);
    Cache c(p);
    // Insert exactly capacity distinct lines mapping evenly to sets.
    std::uint64_t evictions = 0;
    for (std::uint32_t i = 0; i < sets * ways; ++i) {
        if (c.insert(i, false).valid)
            ++evictions;
    }
    EXPECT_EQ(evictions, 0u);
    // One more per set must evict.
    if (c.insert(sets * static_cast<std::uint32_t>(ways), false).valid)
        ++evictions;
    EXPECT_EQ(evictions, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(1, 2, 4, 8, 16)));

//
// Hierarchy tests with a recording backend.
//

class RecordingBackend : public MemBackend
{
  public:
    void
    fetchLine(LineAddr line, const MappingInfo &, CoreId,
              MissDoneFn done) override
    {
        fetches.push_back(line);
        pending.emplace_back(line, std::move(done));
    }

    void
    writebackLine(LineAddr line) override
    {
        writebacks.push_back(line);
    }

    /** Complete all outstanding fetches at cycle @p when. */
    void
    completeAll(Cycle when = 100)
    {
        auto moved = std::move(pending);
        pending.clear();
        for (auto &[line, done] : moved)
            done(when);
    }

    std::vector<LineAddr> fetches;
    std::vector<LineAddr> writebacks;
    std::vector<std::pair<LineAddr, MissDoneFn>> pending;
};

HierarchyParams
tinyHierarchy(std::uint32_t cores = 2)
{
    HierarchyParams p;
    p.numCores = cores;
    p.l1iSize = 1024;
    p.l1iWays = 2;
    p.l1dSize = 1024;
    p.l1dWays = 2;
    p.l2Size = 4096;
    p.l2Ways = 4;
    p.l3Size = 16384;
    p.l3Ways = 4;
    return p;
}

TEST(Hierarchy, MissThenHitLevels)
{
    RecordingBackend backend;
    CacheHierarchy h(tinyHierarchy(), backend);
    bool done = false;
    auto r = h.access(0, 0x1000, false, MappingInfo{},
                      [&done](Cycle) { done = true; });
    EXPECT_EQ(r.level, CacheHierarchy::Level::Mem);
    EXPECT_TRUE(r.pending);
    backend.completeAll();
    EXPECT_TRUE(done);
    // Now resident in L1.
    r = h.access(0, 0x1000, false, MappingInfo{}, nullptr);
    EXPECT_EQ(r.level, CacheHierarchy::Level::L1);
    EXPECT_FALSE(r.pending);
}

TEST(Hierarchy, CrossCoreSharingHitsInL3)
{
    RecordingBackend backend;
    CacheHierarchy h(tinyHierarchy(), backend);
    h.access(0, 0x1000, false, MappingInfo{}, nullptr);
    backend.completeAll();
    // Core 1 misses its private levels but hits the shared L3.
    auto r = h.access(1, 0x1000, false, MappingInfo{}, nullptr);
    EXPECT_EQ(r.level, CacheHierarchy::Level::L3);
}

TEST(Hierarchy, MshrMergesConcurrentMisses)
{
    RecordingBackend backend;
    CacheHierarchy h(tinyHierarchy(), backend);
    int completions = 0;
    auto cb = [&completions](Cycle) { ++completions; };
    h.access(0, 0x2000, false, MappingInfo{}, cb);
    h.access(1, 0x2000, false, MappingInfo{}, cb);
    EXPECT_EQ(backend.fetches.size(), 1u); // merged
    backend.completeAll();
    EXPECT_EQ(completions, 2); // both waiters complete
}

TEST(Hierarchy, DirtyLineEventuallyWrittenBack)
{
    RecordingBackend backend;
    CacheHierarchy h(tinyHierarchy(1), backend);
    h.access(0, 0x1000, true, MappingInfo{}, nullptr); // store
    backend.completeAll();
    // Evict it by filling far more lines than total capacity.
    for (int i = 1; i < 2048; ++i) {
        h.access(0, 0x1000 + static_cast<Addr>(i) * 64, false,
                 MappingInfo{}, nullptr);
        backend.completeAll();
    }
    bool found = false;
    for (LineAddr wb : backend.writebacks)
        if (wb == lineOf(0x1000))
            found = true;
    EXPECT_TRUE(found);
}

TEST(Hierarchy, InclusionBackInvalidatesPrivateCopies)
{
    RecordingBackend backend;
    HierarchyParams p = tinyHierarchy(1);
    CacheHierarchy h(p, backend);
    h.access(0, 0x1000, false, MappingInfo{}, nullptr);
    backend.completeAll();
    EXPECT_TRUE(h.l1d(0).contains(lineOf(0x1000)));
    // Flood the L3 set that 0x1000 maps to until it is evicted; the
    // L1 copy must disappear with it (inclusion).
    const std::uint32_t l3Sets = h.l3().numSets();
    for (std::uint32_t i = 1; i <= p.l3Ways + 1; ++i) {
        const Addr addr = 0x1000 + static_cast<Addr>(i) * l3Sets * 64;
        h.access(0, addr, false, MappingInfo{}, nullptr);
        backend.completeAll();
    }
    EXPECT_FALSE(h.l3().contains(lineOf(0x1000)));
    EXPECT_FALSE(h.l1d(0).contains(lineOf(0x1000)));
    EXPECT_FALSE(h.presentAnywhere(lineOf(0x1000)));
}

TEST(Hierarchy, WritebackCarriesNoMappingPath)
{
    // LLC writebacks must reach the backend via writebackLine (the
    // path that has no PTE mapping attached — Banshee's probe case).
    RecordingBackend backend;
    CacheHierarchy h(tinyHierarchy(1), backend);
    h.access(0, 0x9000, true, MappingInfo{}, nullptr);
    backend.completeAll();
    const std::size_t before = backend.writebacks.size();
    for (int i = 1; i < 4096; ++i) {
        h.access(0, 0x9000 + static_cast<Addr>(i) * 64, false,
                 MappingInfo{}, nullptr);
        backend.completeAll();
    }
    EXPECT_GT(backend.writebacks.size(), before);
}

TEST(Hierarchy, FetchPathUsesL1I)
{
    RecordingBackend backend;
    CacheHierarchy h(tinyHierarchy(1), backend);
    auto r = h.fetch(0, 0x4000, MappingInfo{}, nullptr);
    EXPECT_EQ(r.level, CacheHierarchy::Level::Mem);
    backend.completeAll();
    r = h.fetch(0, 0x4000, MappingInfo{}, nullptr);
    EXPECT_EQ(r.level, CacheHierarchy::Level::L1);
    EXPECT_TRUE(h.l1i(0).contains(lineOf(0x4000)));
    EXPECT_FALSE(h.l1d(0).contains(lineOf(0x4000)));
}

} // namespace
} // namespace banshee
