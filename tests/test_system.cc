/**
 * @file
 * Integration and property tests: every scheme runs end-to-end on a
 * tiny system without losing a memory response; the lazy-coherence
 * invariant holds under the full machine (checkStaleInvariant); the
 * bounding baselines bound; results are deterministic.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"

namespace banshee {
namespace {

SystemConfig
tiny(SchemeKind kind, const std::string &workload = "libquantum")
{
    SystemConfig c = SystemConfig::testDefault();
    c.workload = workload;
    c.withScheme(kind);
    if (kind == SchemeKind::Hma) {
        c.hma.epoch = usToCycles(100.0);
        c.hma.baseCost = usToCycles(5.0);
    }
    return c;
}

class AllSchemesTest : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(AllSchemesTest, RunsToCompletionOnTinySystem)
{
    SystemConfig c = tiny(GetParam());
    System system(c);
    const RunResult r = system.run();
    // Every core retired its measured instructions (each phase limit
    // may overshoot by at most one op's instruction group, so the
    // measured delta can fall short by that much per core).
    EXPECT_GE(r.instructions,
              static_cast<std::uint64_t>(c.numCores) *
                      c.measureInstrPerCore -
                  c.numCores * 256ull);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.dramCacheAccesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemesTest,
    ::testing::Values(SchemeKind::NoCache, SchemeKind::CacheOnly,
                      SchemeKind::Alloy, SchemeKind::Unison,
                      SchemeKind::Tdc, SchemeKind::Hma,
                      SchemeKind::Banshee),
    [](const ::testing::TestParamInfo<SchemeKind> &info) {
        std::string n = schemeKindName(info.param);
        for (auto &ch : n)
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

TEST(SystemIntegration, NoCacheMissesEverythingCacheOnlyNothing)
{
    {
        System s(tiny(SchemeKind::NoCache));
        EXPECT_DOUBLE_EQ(s.run().missRate, 1.0);
    }
    {
        System s(tiny(SchemeKind::CacheOnly));
        EXPECT_DOUBLE_EQ(s.run().missRate, 0.0);
    }
}

TEST(SystemIntegration, BansheeCachesACacheableWorkingSet)
{
    // libquantum at test scale fits the DRAM cache comfortably; after
    // warmup Banshee must be serving most accesses from in-package.
    SystemConfig c = tiny(SchemeKind::Banshee);
    System s(c);
    // autoWarmup (testDefault inherits it from scaledDefault) raises
    // the warmup budget to cover full sweeps of the streamed region,
    // so the measured window starts from steady-state residency.
    EXPECT_GT(s.config().warmupInstrPerCore, c.warmupInstrPerCore);
    const RunResult r = s.run();
    EXPECT_LT(r.missRate, 0.1);
    EXPECT_GT(r.inPkgBpi(TrafficCat::HitData), 0.0);
}

TEST(SystemIntegration, StaleInvariantHoldsUnderFullMachine)
{
    // testDefault() enables checkStaleInvariant: any request whose
    // stale mapping the Tag Buffer fails to correct panics. Running
    // a replacement-heavy workload to completion is the assertion.
    SystemConfig c = tiny(SchemeKind::Banshee, "omnetpp");
    ASSERT_TRUE(c.banshee.checkStaleInvariant);
    System s(c);
    const RunResult r = s.run();
    EXPECT_GT(r.dramCacheAccesses, 0u);
}

TEST(SystemIntegration, CacheOnlyBeatsNoCacheOnHotWorkload)
{
    System a(tiny(SchemeKind::NoCache));
    System b(tiny(SchemeKind::CacheOnly));
    const Cycle noCache = a.run().cycles;
    const Cycle cacheOnly = b.run().cycles;
    EXPECT_LT(cacheOnly, noCache);
}

TEST(SystemIntegration, DeterministicAcrossRuns)
{
    SystemConfig c = tiny(SchemeKind::Banshee);
    System a(c), b(c);
    const RunResult ra = a.run(), rb = b.run();
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
    EXPECT_EQ(ra.dramCacheMisses, rb.dramCacheMisses);
    for (std::size_t cat = 0; cat < kNumTrafficCats; ++cat) {
        EXPECT_EQ(ra.inPkgBytes[cat], rb.inPkgBytes[cat]);
        EXPECT_EQ(ra.offPkgBytes[cat], rb.offPkgBytes[cat]);
    }
}

TEST(SystemIntegration, SeedChangesResults)
{
    SystemConfig c = tiny(SchemeKind::Banshee);
    System a(c);
    c.seed = 777;
    System b(c);
    EXPECT_NE(a.run().cycles, b.run().cycles);
}

TEST(SystemIntegration, BansheeDemandPathHasNoTagTraffic)
{
    // The headline property (Table 1): Banshee's demand accesses move
    // no tag bytes; only writeback probes and counter samples touch
    // the tag rows. Compare against Alloy, where every access does.
    System banshee(tiny(SchemeKind::Banshee));
    System alloy(tiny(SchemeKind::Alloy));
    const RunResult rb = banshee.run();
    const RunResult ra = alloy.run();
    const double bansheeTag = rb.inPkgBpi(TrafficCat::Tag);
    const double alloyTag = ra.inPkgBpi(TrafficCat::Tag);
    EXPECT_LT(bansheeTag, alloyTag * 0.5);
}

TEST(SystemIntegration, PteUpdatesTriggeredByReplacementChurn)
{
    SystemConfig c = tiny(SchemeKind::Banshee, "omnetpp");
    c.banshee.tagBuffer.entries = 128; // small buffer: frequent flushes
    System s(c);
    const RunResult r = s.run();
    EXPECT_GT(r.pteUpdateRuns, 0u);
    EXPECT_GT(r.tlbShootdowns, 0u);
    EXPECT_EQ(s.pageTable().staleCount(), s.pageTable().staleCount());
}

TEST(SystemIntegration, LargePagesRunEndToEnd)
{
    SystemConfig c = tiny(SchemeKind::Banshee, "pagerank");
    // 2 MB pages need a larger partition: 64 MB -> 8 frames per MC.
    c.mem.inPkgCapacity = 64ull << 20;
    c.footprintScale = 0.25;
    c.banshee.pageBits = kLargePageBits;
    c.banshee.samplingCoeff = 0.001;
    c.banshee.checkStaleInvariant = false; // TLB is 4K-grained
    c.mem.mcStripeBits = kLargePageBits;
    c.tlb.missLatency = 0;
    System s(c);
    const RunResult r = s.run();
    EXPECT_GT(r.dramCacheAccesses, 0u);
}

TEST(SystemIntegration, LargePagesAcrossStripedMcsFailFast)
{
    // 2 MB pages with the default 4 KB MC striping would shred every
    // cache page across all four controllers; the System constructor
    // must reject the config with an actionable error instead of
    // tripping deep asserts (or silently misplacing pages).
    SystemConfig c = tiny(SchemeKind::Banshee, "pagerank");
    c.mem.inPkgCapacity = 64ull << 20;
    c.banshee.pageBits = kLargePageBits;
    ASSERT_GT(c.mem.numMcs, 1u);
    ASSERT_LT(c.mem.mcStripeBits, kLargePageBits);
    EXPECT_EXIT(System s(c), ::testing::ExitedWithCode(1),
                "banshee.pageBits");
}

TEST(SystemIntegration, LargePagesWithUndividableSlicesFailFast)
{
    // Resize slices partition each controller's sets; 2 MB pages on a
    // 64 MB cache leave 2 sets per MC, which cannot split over 8
    // slices. Must fail fast with the config error, not an internal
    // assert inside the resize domain.
    SystemConfig c = tiny(SchemeKind::Banshee, "pagerank");
    c.mem.inPkgCapacity = 64ull << 20;
    c.banshee.pageBits = kLargePageBits;
    c.mem.mcStripeBits = kLargePageBits;
    c.withResizeStep(1, 4);
    c.resize.hash.numSlices = 8;
    EXPECT_EXIT(System s(c), ::testing::ExitedWithCode(1),
                "divide into 8 slices");
}

TEST(SystemIntegration, LargePagesWithResizeRunValidlyConfigured)
{
    // The positive path the two fail-fast checks guard: one MC keeps
    // a 2 MB-paged 64 MB cache at 8 sets, which does split over 8
    // slices — resize and large pages compose.
    SystemConfig c = tiny(SchemeKind::Banshee, "pagerank");
    c.mem.numMcs = 1;
    c.mem.inPkgCapacity = 64ull << 20;
    c.footprintScale = 0.25;
    c.banshee.pageBits = kLargePageBits;
    c.banshee.samplingCoeff = 0.001;
    c.banshee.checkStaleInvariant = false; // TLB is 4K-grained
    c.tlb.missLatency = 0;
    c.withResizeStep(1, 4);
    System s(c);
    const RunResult r = s.run();
    s.resizeController()->stopEpochs();
    s.eventQueue().run();
    EXPECT_GT(r.dramCacheAccesses, 0u);
    EXPECT_EQ(s.resizeController()->activeSlices(), 4u);
    s.resizeController()->verifyResidencyConsistent();
}

TEST(SystemIntegration, BatmanRunsAndBypassActivatesUnderPressure)
{
    SystemConfig c = tiny(SchemeKind::Banshee, "libquantum");
    c.enableBatman = true;
    c.batman.epoch = usToCycles(20.0);
    System s(c);
    const RunResult r = s.run();
    EXPECT_GT(r.dramCacheAccesses, 0u);
}

TEST(SystemIntegration, MeasurePhaseExcludesWarmup)
{
    SystemConfig c = tiny(SchemeKind::NoCache);
    c.warmupInstrPerCore = 10'000;
    c.measureInstrPerCore = 20'000;
    System s(c);
    const RunResult r = s.run();
    // Measured instructions reflect only the measure phase.
    EXPECT_NEAR(static_cast<double>(r.instructions),
                static_cast<double>(c.numCores) * c.measureInstrPerCore,
                c.numCores * 300.0);
}

TEST(Runner, ParallelSweepPreservesOrderAndDeterminism)
{
    SystemConfig base = SystemConfig::testDefault();
    base.warmupInstrPerCore = 5'000;
    base.measureInstrPerCore = 10'000;
    auto exps = schemeSweep(base, "libquantum");
    const auto seq = runExperiments(exps, 1, false);
    const auto par = runExperiments(exps, 4, false);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].cycles, par[i].cycles) << exps[i].label;
        EXPECT_EQ(seq[i].scheme, par[i].scheme);
    }
}

TEST(Runner, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
}

TEST(Runner, GeomeanHandlesEmptyAndZeroWithoutNan)
{
    // Degenerate inputs are defined, finite results — not NaN/UB.
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({0.0, 4.0, 9.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({5.0}), 5.0);
}

} // namespace
} // namespace banshee
