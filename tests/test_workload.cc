/**
 * @file
 * Unit and property tests for the workload generators, the benchmark
 * catalog, and the trace format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "workload/pattern.hh"
#include "workload/trace.hh"
#include "workload/workloads.hh"

namespace banshee {
namespace {

TEST(StreamPattern, SequentialWithWraparound)
{
    StreamPattern p(0x1000, 4 * 64, 64, 0.0, 0);
    Rng rng(1);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 4; ++i) {
            const MemOp op = p.next(rng);
            EXPECT_EQ(op.addr, 0x1000u + i * 64);
            EXPECT_FALSE(op.isWrite);
            EXPECT_FALSE(op.dependsOnPrev);
        }
    }
}

TEST(StreamPattern, StartOffsetShiftsPhase)
{
    StreamPattern p(0, 1024, 64, 0.0, 0, 128);
    Rng rng(1);
    EXPECT_EQ(p.next(rng).addr, 128u);
}

TEST(StreamPattern, WriteFractionRespected)
{
    StreamPattern p(0, 1 << 20, 64, 0.3, 0);
    Rng rng(2);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += p.next(rng).isWrite;
    EXPECT_NEAR(writes / double(n), 0.3, 0.02);
}

TEST(ZipfPagePattern, StaysInRegion)
{
    const std::uint64_t pages = 1000;
    ZipfPagePattern p(0x10000000, pages, 0.8, 4, 0.1, 3);
    Rng rng(3);
    for (int i = 0; i < 50000; ++i) {
        const MemOp op = p.next(rng);
        EXPECT_GE(op.addr, 0x10000000u);
        EXPECT_LT(op.addr, 0x10000000u + pages * kPageBytes);
    }
}

TEST(ZipfPagePattern, VisitsTouchContiguousLines)
{
    ZipfPagePattern p(0, 100, 0.5, 8, 0.0, 0);
    Rng rng(4);
    const MemOp first = p.next(rng);
    for (int i = 1; i < 8; ++i) {
        const MemOp op = p.next(rng);
        EXPECT_EQ(op.addr, first.addr + static_cast<Addr>(i) * 64);
        EXPECT_EQ(pageOf(op.addr), pageOf(first.addr));
    }
}

TEST(ZipfPagePattern, HigherAlphaMoreSkew)
{
    auto concentration = [](double alpha) {
        ZipfPagePattern p(0, 4096, alpha, 1, 0.0, 0);
        Rng rng(5);
        std::map<PageNum, int> counts;
        const int n = 100000;
        for (int i = 0; i < n; ++i)
            ++counts[pageOf(p.next(rng).addr)];
        // Fraction of accesses landing on the top-32 pages.
        std::vector<int> v;
        for (auto &kv : counts)
            v.push_back(kv.second);
        std::sort(v.rbegin(), v.rend());
        int top = 0;
        for (std::size_t i = 0; i < 32 && i < v.size(); ++i)
            top += v[i];
        return top / double(n);
    };
    EXPECT_GT(concentration(1.0), concentration(0.4) + 0.1);
}

TEST(ZipfPagePattern, TailPagesStillReachable)
{
    // Regions larger than the alias-table head must still touch
    // cold pages through the aggregated tail bucket.
    const std::uint64_t pages = 1ull << 18; // > 2^16 head
    ZipfPagePattern p(0, pages, 0.7, 1, 0.0, 0);
    Rng rng(6);
    std::set<PageNum> seen;
    for (int i = 0; i < 200000; ++i)
        seen.insert(pageOf(p.next(rng).addr));
    PageNum maxPage = 0;
    for (PageNum pg : seen)
        maxPage = std::max(maxPage, pg);
    EXPECT_GT(seen.size(), 10000u);
    EXPECT_GT(maxPage, pages / 2); // deep tail reached
}

TEST(PointerChasePattern, LoadsDependOnPrevious)
{
    PointerChasePattern p(0, 1 << 20, 0.0, 2);
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        const MemOp op = p.next(rng);
        EXPECT_TRUE(op.dependsOnPrev);
        EXPECT_FALSE(op.isWrite);
        EXPECT_LT(op.addr, 1u << 20);
    }
}

TEST(PointerChasePattern, WritesDoNotChain)
{
    PointerChasePattern p(0, 1 << 20, 1.0, 2);
    Rng rng(8);
    EXPECT_FALSE(p.next(rng).dependsOnPrev);
}

TEST(MixPattern, WeightsRoughlyRespected)
{
    std::vector<MixPattern::Part> parts;
    parts.push_back({std::make_unique<StreamPattern>(0, 1 << 20, 64u,
                                                     0.0, 0),
                     0.25});
    parts.push_back(
        {std::make_unique<StreamPattern>(1ull << 40, 1 << 20, 64u, 0.0, 0),
         0.75});
    MixPattern mix(std::move(parts), 16);
    Rng rng(9);
    int second = 0;
    const int n = 64000;
    for (int i = 0; i < n; ++i)
        second += mix.next(rng).addr >= (1ull << 40);
    EXPECT_NEAR(second / double(n), 0.75, 0.05);
}

TEST(Patterns, DeterministicForSameSeed)
{
    auto make = [] {
        return ZipfPagePattern(0, 10000, 0.8, 4, 0.2, 3);
    };
    ZipfPagePattern a = make(), b = make();
    Rng ra(11), rb(11);
    for (int i = 0; i < 1000; ++i) {
        const MemOp x = a.next(ra), y = b.next(rb);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.isWrite, y.isWrite);
        EXPECT_EQ(x.nonMemBefore, y.nonMemBefore);
    }
}

TEST(SampleGap, BoundedByTwiceMean)
{
    Rng rng(12);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LE(sampleGap(rng, 5), 10u);
    EXPECT_EQ(sampleGap(rng, 0), 0u);
}

//
// Workload catalog.
//

TEST(Workloads, PaperListHasSixteenEntries)
{
    EXPECT_EQ(WorkloadFactory::paperNames().size(), 16u);
    EXPECT_EQ(WorkloadFactory::graphNames().size(), 5u);
    EXPECT_EQ(WorkloadFactory::specNames().size(), 8u);
}

TEST(Workloads, EveryNameCreatesAPattern)
{
    for (const auto &name : WorkloadFactory::allNames()) {
        SCOPED_TRACE(name);
        EXPECT_TRUE(WorkloadFactory::exists(name));
        for (CoreId c : {0u, 7u, 15u}) {
            auto p = WorkloadFactory::create(name, c, 16, 1.0 / 16);
            ASSERT_NE(p, nullptr);
            Rng rng(c + 1);
            for (int i = 0; i < 100; ++i)
                p->next(rng);
        }
    }
}

TEST(Workloads, GraphSharesHeapSpecIsPrivate)
{
    Rng rng(13);
    auto g0 = WorkloadFactory::create("pagerank", 0, 16, 1.0 / 16);
    auto g1 = WorkloadFactory::create("pagerank", 1, 16, 1.0 / 16);
    // Graph threads draw from one shared region.
    const Addr a = g0->next(rng).addr & ~((1ull << 30) - 1);
    const Addr b = g1->next(rng).addr & ~((1ull << 30) - 1);
    EXPECT_EQ(a, b);

    auto s0 = WorkloadFactory::create("mcf", 0, 16, 1.0 / 16);
    auto s1 = WorkloadFactory::create("mcf", 1, 16, 1.0 / 16);
    const Addr c = s0->next(rng).addr >> 36;
    const Addr d = s1->next(rng).addr >> 36;
    EXPECT_NE(c, d); // distinct private heaps
}

TEST(Workloads, MixAssignsBenchmarksRoundRobin)
{
    Rng rng(14);
    // mix1 core 0 and core 8 both run libquantum (the list repeats).
    auto a = WorkloadFactory::create("mix1", 0, 16, 1.0 / 16);
    auto b = WorkloadFactory::create("mix1", 8, 16, 1.0 / 16);
    // Same benchmark on different cores -> same footprint size but
    // different private base.
    const Addr addrA = a->next(rng).addr;
    const Addr addrB = b->next(rng).addr;
    EXPECT_NE(addrA >> 36, addrB >> 36);
}

TEST(Workloads, UnknownNameRejected)
{
    EXPECT_FALSE(WorkloadFactory::exists("no-such-benchmark"));
}

//
// Trace format.
//

TEST(Trace, RoundTripThroughFile)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 100; ++i) {
        TraceRecord r;
        r.addr = static_cast<Addr>(i) * 64;
        r.flags = (i % 3 == 0) ? TraceRecord::kWrite : 0;
        r.nonMemBefore = static_cast<std::uint8_t>(i % 7);
        records.push_back(r);
    }
    const std::string path = ::testing::TempDir() + "roundtrip.bsh";
    ASSERT_TRUE(writeTrace(path, records));
    const auto loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(loaded[i].addr, records[i].addr);
        EXPECT_EQ(loaded[i].flags, records[i].flags);
        EXPECT_EQ(loaded[i].nonMemBefore, records[i].nonMemBefore);
    }
    std::remove(path.c_str());
}

TEST(Trace, PatternReplaysCyclically)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 3; ++i)
        records.push_back(TraceRecord{static_cast<Addr>(i) * 64, 0, 1});
    TracePattern p(records);
    Rng rng(15);
    for (int round = 0; round < 4; ++round)
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(p.next(rng).addr, static_cast<Addr>(i) * 64);
}

TEST(Trace, RecordingPatternCaptures)
{
    StreamPattern inner(0, 1024, 64, 0.0, 2);
    RecordingPattern rec(inner);
    Rng rng(16);
    for (int i = 0; i < 10; ++i)
        rec.next(rng);
    EXPECT_EQ(rec.records().size(), 10u);
    EXPECT_EQ(rec.records()[3].addr, 3u * 64);
}

} // namespace
} // namespace banshee
