/**
 * @file
 * Trace I/O error paths and round-trip property.
 *
 * readTrace() reports malformed input through fatal() (exit code 1),
 * so the error paths are exercised as death tests: missing file, bad
 * magic, a truncated header, and a record-count mismatch (the header
 * promises more records than the file holds). The round-trip test
 * writes a randomized trace and checks bit-exact recovery, plus the
 * cyclic replay semantics of TracePattern.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "workload/trace.hh"

namespace banshee {
namespace {

class TraceIoTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "trace_io_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".bshtrc";
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Write raw bytes to the test path. */
    void
    writeRaw(const std::string &bytes)
    {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }

    /** A well-formed file for @p records (via the real writer). */
    std::string
    validBytes(const std::vector<TraceRecord> &records)
    {
        EXPECT_TRUE(writeTrace(path_, records));
        std::FILE *f = std::fopen(path_.c_str(), "rb");
        EXPECT_NE(f, nullptr);
        std::string bytes;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            bytes.append(buf, n);
        std::fclose(f);
        return bytes;
    }

    std::string path_;
};

using TraceIoDeathTest = TraceIoTest;

TEST_F(TraceIoDeathTest, MissingFileIsFatal)
{
    EXPECT_EXIT(readTrace(path_ + ".does-not-exist"),
                ::testing::ExitedWithCode(1), "cannot open trace file");
}

TEST_F(TraceIoDeathTest, BadMagicIsFatal)
{
    writeRaw("NOTATRACEFILE-DEFINITELY-NOT................");
    EXPECT_EXIT(readTrace(path_), ::testing::ExitedWithCode(1),
                "not a Banshee trace file");
}

TEST_F(TraceIoDeathTest, TruncatedHeaderIsFatal)
{
    // Valid magic but the record count is cut short.
    writeRaw(std::string("BSHTRC01") + "\x05\x00");
    EXPECT_EXIT(readTrace(path_), ::testing::ExitedWithCode(1),
                "truncated header");
}

TEST_F(TraceIoDeathTest, RecordCountMismatchIsFatal)
{
    // A well-formed 3-record file, chopped mid-record: the header
    // still promises 3 records but only 1.5 are present.
    std::vector<TraceRecord> records(3);
    records[0].addr = 0x1000;
    records[1].addr = 0x2000;
    records[2].addr = 0x3000;
    const std::string bytes = validBytes(records);
    writeRaw(bytes.substr(0, 16 + 16 + 8));
    EXPECT_EXIT(readTrace(path_), ::testing::ExitedWithCode(1),
                "truncated at record 1");
}

TEST_F(TraceIoDeathTest, EmptyFileIsFatal)
{
    writeRaw("");
    EXPECT_EXIT(readTrace(path_), ::testing::ExitedWithCode(1),
                "not a Banshee trace file");
}

TEST_F(TraceIoTest, WriteReadRoundTripIsBitExact)
{
    Rng rng(12345);
    std::vector<TraceRecord> records(1000);
    for (auto &r : records) {
        r.addr = rng.next() & ((1ull << 48) - 1);
        r.flags = static_cast<std::uint8_t>(rng.nextBelow(4));
        r.nonMemBefore = static_cast<std::uint8_t>(rng.nextBelow(256));
    }

    ASSERT_TRUE(writeTrace(path_, records));
    const std::vector<TraceRecord> back = readTrace(path_);

    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(back[i].addr, records[i].addr) << i;
        EXPECT_EQ(back[i].flags, records[i].flags) << i;
        EXPECT_EQ(back[i].nonMemBefore, records[i].nonMemBefore) << i;
    }
}

TEST_F(TraceIoTest, EmptyTraceRoundTripsButCannotReplay)
{
    ASSERT_TRUE(writeTrace(path_, {}));
    EXPECT_TRUE(readTrace(path_).empty());
}

TEST_F(TraceIoTest, TracePatternReplaysCyclically)
{
    std::vector<TraceRecord> records(3);
    records[0].addr = 0x1000;
    records[1].addr = 0x2000;
    records[1].flags = TraceRecord::kWrite;
    records[2].addr = 0x3000;
    ASSERT_TRUE(writeTrace(path_, records));

    auto pattern = TracePattern::fromFile(path_);
    ASSERT_EQ(pattern->size(), 3u);
    Rng rng(1);
    for (int loop = 0; loop < 3; ++loop) {
        EXPECT_EQ(pattern->next(rng).addr, 0x1000u);
        const MemOp second = pattern->next(rng);
        EXPECT_EQ(second.addr, 0x2000u);
        EXPECT_TRUE(second.isWrite);
        EXPECT_EQ(pattern->next(rng).addr, 0x3000u);
    }
}

TEST_F(TraceIoTest, WriteToUnwritablePathReturnsFalse)
{
    EXPECT_FALSE(writeTrace("/nonexistent-dir/x/y/trace.bshtrc", {}));
}

TEST_F(TraceIoTest, SharedLoadSharesOneBufferWithIndependentCursors)
{
    std::vector<TraceRecord> records(3);
    records[0].addr = 0x1000;
    records[1].addr = 0x2000;
    records[2].addr = 0x3000;
    ASSERT_TRUE(writeTrace(path_, records));

    // Two "cores" replaying the same file share one in-memory buffer.
    auto core0 = TracePattern::sharedFromFile(path_);
    auto core1 = TracePattern::sharedFromFile(path_);
    EXPECT_EQ(core0->buffer().get(), core1->buffer().get());

    // ...but advance independently: core0 runs ahead, core1 must
    // still see the trace from the top.
    Rng rng(1);
    EXPECT_EQ(core0->next(rng).addr, 0x1000u);
    EXPECT_EQ(core0->next(rng).addr, 0x2000u);
    EXPECT_EQ(core1->next(rng).addr, 0x1000u);
    EXPECT_EQ(core0->next(rng).addr, 0x3000u);
    EXPECT_EQ(core1->next(rng).addr, 0x2000u);

    // Dropping both patterns leaves only the cache's reference; the
    // eviction sweep reclaims it. While either lives, it must not.
    EXPECT_EQ(TracePattern::dropUnusedCachedTraces(), 0u);
    core0.reset();
    core1.reset();
    EXPECT_GE(TracePattern::dropUnusedCachedTraces(), 1u);
}

TEST_F(TraceIoTest, PrivateLoadDoesNotShare)
{
    std::vector<TraceRecord> records(1);
    records[0].addr = 0x1000;
    ASSERT_TRUE(writeTrace(path_, records));
    auto a = TracePattern::fromFile(path_);
    auto b = TracePattern::fromFile(path_);
    EXPECT_NE(a->buffer().get(), b->buffer().get());
}

} // namespace
} // namespace banshee
