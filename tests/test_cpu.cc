/**
 * @file
 * Unit tests for the core model and TLB: retirement accounting,
 * MSHR-bounded memory-level parallelism, dependent-load
 * serialization, external stalls, and TLB staleness semantics.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "cpu/core_model.hh"
#include "cpu/tlb.hh"
#include "os/page_table.hh"

namespace banshee {
namespace {

/** Backend whose fetches complete after a fixed delay. */
class DelayBackend : public MemBackend
{
  public:
    DelayBackend(EventQueue &eq, Cycle delay) : eq_(eq), delay_(delay) {}

    void
    fetchLine(LineAddr line, const MappingInfo &, CoreId,
              MissDoneFn done) override
    {
        ++fetches;
        (void)line;
        if (holdAll) {
            held.push_back(std::move(done));
            return;
        }
        eq_.schedule(eq_.now() + delay_,
                     [done = std::move(done), when = eq_.now() + delay_] {
                         done(when);
                     });
    }

    void
    writebackLine(LineAddr) override
    {
        ++writebacks;
    }

    void
    releaseAll()
    {
        auto moved = std::move(held);
        held.clear();
        const Cycle when = eq_.now() + delay_;
        for (auto &done : moved) {
            eq_.schedule(when, [done = std::move(done), when] {
                done(when);
            });
        }
    }

    EventQueue &eq_;
    Cycle delay_;
    bool holdAll = false;
    std::vector<MissDoneFn> held;
    std::uint64_t fetches = 0;
    std::uint64_t writebacks = 0;
};

/** Pattern replaying a fixed vector of ops, then repeating. */
class ScriptPattern : public AccessPattern
{
  public:
    explicit ScriptPattern(std::vector<MemOp> ops) : ops_(std::move(ops)) {}

    MemOp
    next(Rng &) override
    {
        MemOp op = ops_[pos_ % ops_.size()];
        ++pos_;
        return op;
    }

  private:
    std::vector<MemOp> ops_;
    std::size_t pos_ = 0;
};

struct CoreRig
{
    explicit CoreRig(std::vector<MemOp> ops, Cycle memDelay = 200,
                     CoreParams params = CoreParams{})
        : backend(eq, memDelay), hierarchy(makeHier(), backend),
          tlb(TlbParams{}, pageTable, "tlb"),
          pattern(std::move(ops)),
          core(0, params, eq, hierarchy, tlb, pattern, 1)
    {
    }

    static HierarchyParams
    makeHier()
    {
        HierarchyParams p;
        p.numCores = 1;
        p.l1iSize = 4096;
        p.l1iWays = 2;
        p.l1dSize = 4096;
        p.l1dWays = 2;
        p.l2Size = 8192;
        p.l2Ways = 4;
        p.l3Size = 32768;
        p.l3Ways = 4;
        return p;
    }

    EventQueue eq;
    PageTableManager pageTable;
    DelayBackend backend;
    CacheHierarchy hierarchy;
    Tlb tlb;
    ScriptPattern pattern;
    CoreModel core;
};

MemOp
loadOp(Addr addr, std::uint8_t gap = 3, bool dep = false)
{
    MemOp op;
    op.addr = addr;
    op.nonMemBefore = gap;
    op.dependsOnPrev = dep;
    return op;
}

TEST(CoreModel, RetiresToLimitAndParks)
{
    CoreRig rig({loadOp(0x1000)});
    bool parked = false;
    rig.core.onParked([&parked](CoreId) { parked = true; });
    rig.core.setInstrLimit(1000);
    rig.core.start();
    rig.eq.run();
    EXPECT_TRUE(parked);
    EXPECT_TRUE(rig.core.parked());
    EXPECT_GE(rig.core.instrRetired(), 1000u);
    // Overshoot bounded by one op's instruction count.
    EXPECT_LT(rig.core.instrRetired(), 1010u);
}

TEST(CoreModel, L1HitsRetireNearIssueWidth)
{
    // One hot line, gap 3 -> 4 instructions per op at width 4
    // should approach 1 cycle/op.
    CoreRig rig({loadOp(0x1000, 3)});
    rig.core.setInstrLimit(40000);
    rig.core.start();
    rig.eq.run();
    const double cpi =
        static_cast<double>(rig.core.localCycle()) /
        rig.core.instrRetired();
    EXPECT_LT(cpi, 0.5); // ~0.25 ideal, allow warmup slack
}

TEST(CoreModel, IndependentMissesOverlap)
{
    // 8 independent lines of one page, each missing to a 200-cycle
    // backend: with MLP they overlap, so the first round costs ~one
    // round trip, not eight (same page: a single TLB walk).
    std::vector<MemOp> ops;
    for (int i = 0; i < 8; ++i)
        ops.push_back(loadOp(0x100000 + i * 64, 0));
    CoreRig rig(ops, 200);
    rig.core.setInstrLimit(80); // 80 ops (gap 0); rounds 2+ hit L1
    rig.core.start();
    rig.eq.run();
    // Serialized misses would need 8 x 200 = 1600+ cycles.
    EXPECT_LT(rig.core.localCycle(), 800u);
}

TEST(CoreModel, DependentLoadsSerialize)
{
    std::vector<MemOp> indep, dep;
    for (int i = 0; i < 16; ++i) {
        indep.push_back(loadOp(0x100000 + i * (1 << 16), 0, false));
        dep.push_back(loadOp(0x100000 + i * (1 << 16), 0, true));
    }
    CoreRig a(indep, 300);
    a.core.setInstrLimit(16);
    a.core.start();
    a.eq.run();

    CoreRig b(dep, 300);
    b.core.setInstrLimit(16);
    b.core.start();
    b.eq.run();

    // Pointer chasing must be several times slower than independent
    // misses (the mcf effect). The independent run still pays serial
    // TLB walks (distinct pages), so the gap is ~3x, not ~10x.
    EXPECT_GT(b.core.localCycle(), a.core.localCycle() * 5 / 2);
}

TEST(CoreModel, MshrLimitBoundsOutstandingMisses)
{
    std::vector<MemOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back(loadOp(0x100000 + i * (1 << 16), 0));
    CoreParams params;
    params.mshrs = 4;
    CoreRig rig(ops, 100000, params); // backend essentially never
    rig.backend.holdAll = true;
    rig.core.setInstrLimit(64);
    rig.core.start();
    rig.eq.run();
    EXPECT_FALSE(rig.core.parked());
    // At most mshrs fetches in flight (instruction fetches may add
    // one more stream).
    EXPECT_LE(rig.backend.fetches, 4u + 1u);
}

TEST(CoreModel, RobWindowBoundsRunahead)
{
    // A single never-completing miss must stop the core within the
    // reorder window.
    CoreParams params;
    params.robSize = 64;
    std::vector<MemOp> ops;
    ops.push_back(loadOp(0x100000, 0));
    for (int i = 0; i < 63; ++i)
        ops.push_back(loadOp(0x1000, 0)); // L1-hittable fillers
    CoreRig rig(ops, 1, params);
    rig.backend.holdAll = true;
    rig.core.setInstrLimit(100000);
    rig.core.start();
    rig.eq.run();
    EXPECT_FALSE(rig.core.parked());
    // Retired instructions bounded near the window size (first miss
    // blocks retirement; issue stops at robSize past it). The L1
    // filler lines themselves first miss, so allow a small factor.
    EXPECT_LE(rig.core.instrRetired(), 200u);
    rig.backend.holdAll = false;
    rig.backend.releaseAll();
    rig.eq.run();
    EXPECT_TRUE(rig.core.parked());
}

TEST(CoreModel, ExternalStallAddsCycles)
{
    CoreRig a({loadOp(0x1000)});
    a.core.setInstrLimit(1000);
    a.core.start();
    a.eq.run();
    const Cycle base = a.core.localCycle();

    CoreRig b({loadOp(0x1000)});
    b.core.setInstrLimit(1000);
    b.core.addStall(5000);
    b.core.start();
    b.eq.run();
    // The stall shifts execution in time, which perturbs DRAM row
    // state slightly; allow a small tolerance around the full 5000.
    EXPECT_GE(b.core.localCycle() + 200, base + 5000);
    EXPECT_GT(b.core.localCycle(), base + 4000);
}

//
// TLB.
//

TEST(Tlb, MissChargesWalkThenHits)
{
    PageTableManager pt;
    TlbParams params;
    params.missLatency = 77;
    Tlb tlb(params, pt, "t");
    auto r = tlb.lookup(42);
    EXPECT_EQ(r.latency, 77u);
    r = tlb.lookup(42);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, RefillReadsCommittedNotCurrent)
{
    PageTableManager pt;
    pt.setCurrentMapping(42, PageMapping{true, 2}); // PTE not updated
    Tlb tlb(TlbParams{}, pt, "t");
    auto r = tlb.lookup(42);
    EXPECT_FALSE(r.info.cached); // stale by design
    pt.commit(42);
    // Entry still cached in the TLB: still stale until a shootdown.
    r = tlb.lookup(42);
    EXPECT_FALSE(r.info.cached);
    tlb.flushAll();
    r = tlb.lookup(42);
    EXPECT_TRUE(r.info.cached);
    EXPECT_EQ(r.info.way, 2);
}

TEST(Tlb, FlushAllEvictsEverything)
{
    PageTableManager pt;
    Tlb tlb(TlbParams{}, pt, "t");
    for (PageNum p = 0; p < 100; ++p)
        tlb.lookup(p);
    tlb.flushAll();
    const auto missesBefore = tlb.misses();
    for (PageNum p = 0; p < 100; ++p)
        tlb.lookup(p);
    EXPECT_EQ(tlb.misses(), missesBefore + 100);
    EXPECT_EQ(tlb.shootdowns(), 1u);
}

TEST(Tlb, LruWithinSet)
{
    PageTableManager pt;
    TlbParams params;
    params.entries = 8;
    params.ways = 4; // 2 sets
    Tlb tlb(params, pt, "t");
    // Pages 0,2,4,6 map to set 0. Fill, refresh 0, add 8.
    tlb.lookup(0);
    tlb.lookup(2);
    tlb.lookup(4);
    tlb.lookup(6);
    tlb.lookup(0);
    tlb.lookup(8); // evicts 2 (LRU)
    EXPECT_EQ(tlb.lookup(0).latency, 0u);
    EXPECT_NE(tlb.lookup(2).latency, 0u);
}

} // namespace
} // namespace banshee
