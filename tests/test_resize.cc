/**
 * @file
 * Tests for the dynamic DRAM-cache resizing subsystem:
 *
 *  - the consistent-hash property: shrinking N -> N-K slices remaps
 *    only the removed slices' pages, a fraction ~K/N of residents;
 *  - the migration engine's rate limiting, skip and stall behavior
 *    (against a fake host);
 *  - the resize policy's schedule and adaptive decisions;
 *  - end-to-end transitions on the full machine: no dirty page is
 *    lost across a shrink (traffic accounting + directory/page-table
 *    consistency, with checkStaleInvariant armed throughout), grows
 *    restore capacity, and a consistent-hash resize moves less
 *    off-package data than a naive flush-resize.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/banshee.hh"
#include "resize/consistent_hash.hh"
#include "resize/migration_engine.hh"
#include "resize/resize_controller.hh"
#include "resize/resize_policy.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"

namespace banshee {
namespace {

// ------------------------------------------------------------------
// ConsistentHashMapper
// ------------------------------------------------------------------

constexpr int kKeys = 100000;

TEST(ConsistentHash, ShrinkRemapsOnlyRemovedSlicesPages)
{
    ConsistentHashParams p;
    p.numSlices = 8;
    p.vnodesPerSlice = 64;
    ConsistentHashMapper m(p);

    std::vector<std::uint32_t> before(kKeys);
    for (int k = 0; k < kKeys; ++k)
        before[k] = m.sliceOf(static_cast<PageNum>(k));

    // Shrink 8 -> 6: deactivate slices 6 and 7 (K = 2 of N = 8).
    m.setActive(7, false);
    m.setActive(6, false);

    int remapped = 0;
    int survivorMoved = 0;
    int mappedToInactive = 0;
    for (int k = 0; k < kKeys; ++k) {
        const std::uint32_t after = m.sliceOf(static_cast<PageNum>(k));
        if (after >= 6)
            ++mappedToInactive;
        if (before[k] >= 6)
            ++remapped;
        else if (after != before[k])
            ++survivorMoved;
    }
    // The defining property: pages on surviving slices never move,
    // and nothing maps to a deactivated slice.
    EXPECT_EQ(survivorMoved, 0);
    EXPECT_EQ(mappedToInactive, 0);
    // The remapped fraction is the removed slices' share: K/N +- eps.
    const double frac = static_cast<double>(remapped) / kKeys;
    EXPECT_LE(frac, 2.0 / 8.0 + 0.08);
    EXPECT_GE(frac, 2.0 / 8.0 - 0.08);
}

TEST(ConsistentHash, GrowRestoresOriginalAssignment)
{
    ConsistentHashParams p;
    p.numSlices = 8;
    ConsistentHashMapper m(p);

    std::vector<std::uint32_t> before(kKeys);
    for (int k = 0; k < kKeys; ++k)
        before[k] = m.sliceOf(static_cast<PageNum>(k));

    m.setActive(3, false);
    m.setActive(3, true);

    for (int k = 0; k < kKeys; ++k)
        ASSERT_EQ(m.sliceOf(static_cast<PageNum>(k)), before[k]) << k;
}

TEST(ConsistentHash, LoadIsRoughlyBalanced)
{
    ConsistentHashParams p;
    p.numSlices = 8;
    p.vnodesPerSlice = 64;
    ConsistentHashMapper m(p);

    std::vector<int> count(p.numSlices, 0);
    for (int k = 0; k < kKeys; ++k)
        ++count[m.sliceOf(static_cast<PageNum>(k))];

    const double avg = static_cast<double>(kKeys) / p.numSlices;
    for (std::uint32_t s = 0; s < p.numSlices; ++s) {
        EXPECT_GT(count[s], avg * 0.5) << "slice " << s;
        EXPECT_LT(count[s], avg * 1.7) << "slice " << s;
    }
}

// ------------------------------------------------------------------
// MigrationEngine against a fake host
// ------------------------------------------------------------------

class FakeHost : public ResizeHost
{
  public:
    struct Frame
    {
        PageNum page;
        bool dirty;
        bool resident = true;
    };

    std::map<std::pair<std::uint32_t, std::uint32_t>, Frame> frames;
    bool allowEvict = true;
    int commitRequests = 0;
    int evictions = 0;
    int capacityLosses = 0;

    void onCapacityLoss() override { ++capacityLosses; }

    std::uint32_t numSets() const override { return 16; }

    void
    forEachResident(const std::function<void(std::uint32_t, std::uint32_t,
                                             PageNum, bool)> &fn) override
    {
        for (const auto &kv : frames) {
            if (kv.second.resident) {
                fn(kv.first.first, kv.first.second, kv.second.page,
                   kv.second.dirty);
            }
        }
    }

    bool
    residentAt(std::uint32_t set, std::uint32_t way, PageNum page) override
    {
        auto it = frames.find({set, way});
        return it != frames.end() && it->second.resident &&
               it->second.page == page;
    }

    bool canEvictFrame(PageNum) const override { return allowEvict; }

    bool
    evictFrame(std::uint32_t set, std::uint32_t way) override
    {
        Frame &f = frames.at({set, way});
        f.resident = false;
        ++evictions;
        return f.dirty;
    }

    void requestMappingCommit() override { ++commitRequests; }
    void attachResizeDomain(ResizeDomain *) override {}
    std::uint64_t demandAccesses() const override { return 0; }
    std::uint64_t demandMisses() const override { return 0; }
    void verifyResidencyConsistent() override {}
};

TEST(ResizeDomain, LayoutGenerationBumpsOnResizeAndPinDrops)
{
    EventQueue eq;
    FakeHost host;
    for (std::uint32_t i = 0; i < 8; ++i)
        host.frames[{i, 0}] = FakeHost::Frame{100 + i, false};

    ResizeConfig rc;
    rc.enabled = true;
    ResizeDomain dom(eq, host, rc, "d");
    const std::uint64_t g0 = dom.layoutGeneration();

    bool done = false;
    dom.resizeTo(dom.activeSlices() - 1, [&done] { done = true; });
    // The activation flip + pin inserts invalidate stale mappings
    // before any drain work runs.
    const std::uint64_t gStart = dom.layoutGeneration();
    EXPECT_GT(gStart, g0);

    eq.run();
    ASSERT_TRUE(done);
    // Every drained pin bumps again so memoized pinned mappings die
    // the moment the page's frame is reclaimed.
    EXPECT_GE(dom.layoutGeneration(), gStart);
    EXPECT_FALSE(dom.migrationActive());
}

TEST(ResizeDomain, EvictionOfPinnedPageBumpsGeneration)
{
    EventQueue eq;
    FakeHost host;
    host.frames[{0, 0}] = FakeHost::Frame{100, false};

    ResizeConfig rc;
    rc.enabled = true;
    ResizeDomain dom(eq, host, rc, "d");

    // No pin: eviction notifications are generation-neutral.
    const std::uint64_t g0 = dom.layoutGeneration();
    dom.notifyFrameEvicted(100);
    EXPECT_EQ(dom.layoutGeneration(), g0);

    // Pin the page by starting a flush-style drain that cannot make
    // progress (tag buffer full), then evict it out from under the
    // migration: the pin drop must invalidate memoized mappings.
    host.allowEvict = false;
    rc.strategy = ResizeStrategy::FlushAll;
    ResizeDomain flushDom(eq, host, rc, "d2");
    flushDom.resizeTo(flushDom.activeSlices() - 1, [] {});
    const std::uint64_t g1 = flushDom.layoutGeneration();
    flushDom.notifyFrameEvicted(100);
    EXPECT_GT(flushDom.layoutGeneration(), g1);
}

TEST(MigrationEngine, DrainsInRateLimitedBatches)
{
    EventQueue eq;
    FakeHost host;
    for (std::uint32_t i = 0; i < 10; ++i)
        host.frames[{i, 0}] = FakeHost::Frame{100 + i, i % 2 == 0};

    MigrationParams p;
    p.pagesPerBatch = 4;
    p.batchInterval = 100;
    MigrationEngine engine(eq, host, p, "eng");
    for (std::uint32_t i = 0; i < 10; ++i)
        engine.enqueue(i, 0, 100 + i);

    bool drained = false;
    engine.start(nullptr, [&drained] { drained = true; });
    EXPECT_TRUE(engine.active());
    eq.run();

    EXPECT_TRUE(drained);
    EXPECT_FALSE(engine.active());
    EXPECT_EQ(engine.pagesDrained(), 10u);
    EXPECT_EQ(engine.dirtyPagesDrained(), 5u);
    EXPECT_EQ(host.evictions, 10);
    // 10 pages at 4/batch = 3 ticks, the last at t = 2 intervals.
    EXPECT_EQ(eq.now(), 200u);
}

TEST(MigrationEngine, SkipsFramesEvictedByNormalReplacement)
{
    EventQueue eq;
    FakeHost host;
    host.frames[{0, 0}] = FakeHost::Frame{1, true};
    host.frames[{1, 0}] = FakeHost::Frame{2, true, false}; // already gone

    MigrationEngine engine(eq, host, MigrationParams{}, "eng");
    engine.enqueue(0, 0, 1);
    engine.enqueue(1, 0, 2);

    std::vector<PageNum> done;
    engine.start([&done](PageNum p) { done.push_back(p); }, nullptr);
    eq.run();

    EXPECT_EQ(engine.pagesDrained(), 1u);
    EXPECT_EQ(engine.pagesSkipped(), 1u);
    EXPECT_EQ(done, (std::vector<PageNum>{1, 2}));
}

TEST(MigrationEngine, StallsOnTagBufferAndResumesOnKick)
{
    EventQueue eq;
    FakeHost host;
    host.frames[{0, 0}] = FakeHost::Frame{1, true};
    host.allowEvict = false;

    MigrationParams p;
    p.retryInterval = 50;
    MigrationEngine engine(eq, host, p, "eng");
    engine.enqueue(0, 0, 1);

    bool drained = false;
    Cycle drainedAt = kNoCycle;
    engine.start(nullptr, [&] {
        drained = true;
        drainedAt = eq.now();
    });
    eq.run(300); // a few retry periods

    EXPECT_FALSE(drained);
    EXPECT_EQ(engine.pagesDrained(), 0u);
    EXPECT_GT(engine.tagBufferStalls(), 0u);
    EXPECT_GT(host.commitRequests, 0);

    // The PTE update completed: space is available again. The kick
    // must cut the stall's back-off short — the drain happens at the
    // kick cycle, not after waiting out another retryInterval.
    host.allowEvict = true;
    const Cycle kickCycle = eq.now();
    engine.kick();
    eq.run();
    EXPECT_TRUE(drained);
    EXPECT_EQ(engine.pagesDrained(), 1u);
    EXPECT_EQ(drainedAt, kickCycle);
}

TEST(MigrationEngine, DeferredScheduledStepIsRetriedNotDropped)
{
    // A scheduled resize that lands while the previous transition is
    // still draining must apply once the engine goes idle.
    EventQueue eq;
    PageTableManager pt;
    OsServices os(eq, pt);
    FakeHost host; // 16 sets -> 2 sets per slice with 8 slices
    for (std::uint32_t s = 8; s < 16; ++s)
        host.frames[{s, 0}] = FakeHost::Frame{1000 + s, false};

    ResizeConfig cfg;
    cfg.enabled = true;
    cfg.policy.epoch = 1000;
    cfg.policy.schedule = {ResizeStep{0, 4}, ResizeStep{1, 8}};
    cfg.migration.pagesPerBatch = 1;    // slow drain: spans epochs
    cfg.migration.batchInterval = 2000;
    ResizeController rc(eq, os, cfg);
    rc.addHost(host, "rc0");

    rc.onMeasureStart();
    eq.run(40'000);
    rc.stopEpochs();
    eq.run(80'000);

    // The grow step collided with the shrink's drain, was deferred
    // (not dropped), and applied at a later epoch.
    EXPECT_GT(rc.stats().value("decisionsDeferred"), 0u);
    EXPECT_EQ(rc.resizesCompleted(), 2u);
    EXPECT_EQ(rc.activeSlices(), 8u);
}

TEST(MigrationEngine, CapacityLossHookFiresOnShrinkCommitOnly)
{
    // The decay hook (ResizeHost::onCapacityLoss) must fire exactly
    // when a capacity-losing transition commits — not when it starts,
    // and never on a grow.
    EventQueue eq;
    PageTableManager pt;
    OsServices os(eq, pt);
    FakeHost host; // 16 sets -> 2 sets per slice with 8 slices
    for (std::uint32_t s = 0; s < 16; ++s)
        host.frames[{s, 0}] = FakeHost::Frame{2000 + s, false};

    ResizeConfig cfg;
    cfg.enabled = true;
    cfg.policy.epoch = 1000;
    cfg.policy.schedule = {ResizeStep{0, 4}};
    ResizeController rc(eq, os, cfg);
    rc.addHost(host, "rc0");

    rc.onMeasureStart();
    eq.run(50'000);
    rc.stopEpochs();
    eq.run(100'000);
    EXPECT_EQ(rc.resizesCompleted(), 1u);
    EXPECT_EQ(host.capacityLosses, 1);

    EXPECT_TRUE(rc.requestResize(8)); // recover: a grow loses nothing
    eq.run(200'000);
    EXPECT_EQ(rc.resizesCompleted(), 2u);
    EXPECT_EQ(host.capacityLosses, 1);
}

// ------------------------------------------------------------------
// ResizePolicy
// ------------------------------------------------------------------

TEST(ResizePolicy, ScheduleFiresAtItsEpochOnly)
{
    ResizePolicyConfig cfg;
    cfg.kind = ResizePolicyConfig::Kind::Schedule;
    cfg.schedule = {ResizeStep{2, 4}, ResizeStep{5, 8}};
    ResizePolicy policy(cfg);

    ResizeEpochStats stats;
    EXPECT_FALSE(policy.decide(0, stats, 8, 8).has_value());
    EXPECT_FALSE(policy.decide(1, stats, 8, 8).has_value());
    auto t = policy.decide(2, stats, 8, 8);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 4u);
    // Already at the target: no decision.
    EXPECT_FALSE(policy.decide(5, stats, 8, 8).has_value());
    t = policy.decide(5, stats, 4, 8);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 8u);
}

TEST(ResizePolicy, AdaptiveShrinksColdGrowsThrashing)
{
    ResizePolicyConfig cfg;
    cfg.kind = ResizePolicyConfig::Kind::Adaptive;
    cfg.shrinkMissRate = 0.02;
    cfg.growMissRate = 0.20;
    cfg.minSlices = 2;
    cfg.minEpochAccesses = 100;
    ResizePolicy policy(cfg);

    ResizeEpochStats cold{10000, 50};      // 0.5% misses
    ResizeEpochStats thrashing{10000, 4000}; // 40% misses
    ResizeEpochStats mid{10000, 1000};     // 10% misses
    ResizeEpochStats sparse{10, 10};       // too few accesses

    EXPECT_EQ(policy.decide(0, cold, 8, 8), std::optional<std::uint32_t>(7));
    EXPECT_EQ(policy.decide(0, thrashing, 4, 8),
              std::optional<std::uint32_t>(5));
    EXPECT_FALSE(policy.decide(0, mid, 4, 8).has_value());
    EXPECT_FALSE(policy.decide(0, sparse, 8, 8).has_value());
    // Floor and ceiling.
    EXPECT_FALSE(policy.decide(0, cold, 2, 8).has_value());
    EXPECT_FALSE(policy.decide(0, thrashing, 8, 8).has_value());
}

// ------------------------------------------------------------------
// End-to-end transitions on the full machine
// ------------------------------------------------------------------

SystemConfig
resizeBase(const std::string &workload)
{
    SystemConfig c = SystemConfig::testDefault();
    c.workload = workload;
    c.withScheme(SchemeKind::Banshee);
    c.warmupInstrPerCore = 20'000;
    c.measureInstrPerCore = 60'000;
    // 8 MB cache / 4 MCs / 4 KB pages / 4 ways = 128 sets per MC.
    c.resize.hash.numSlices = 8;
    c.resize.policy.epoch = usToCycles(2.0);
    c.resize.migration.pagesPerBatch = 16;
    c.resize.migration.batchInterval = nsToCycles(100.0);
    return c;
}

/** Run to completion, then let pending migration/PTE work drain. */
RunResult
runAndDrain(System &s)
{
    const RunResult r = s.run();
    s.resizeController()->stopEpochs();
    s.eventQueue().run();
    return r;
}

TEST(ResizeEndToEnd, ShrinkMigratesWithoutLosingDirtyPages)
{
    SystemConfig c = resizeBase("omnetpp");
    ASSERT_TRUE(c.banshee.checkStaleInvariant);
    c.withResizeStep(1, 4);
    System s(c);
    runAndDrain(s);

    ResizeController *rc = s.resizeController();
    ASSERT_NE(rc, nullptr);
    EXPECT_EQ(rc->resizesStarted(), 1u);
    EXPECT_EQ(rc->resizesCompleted(), 1u);
    EXPECT_FALSE(rc->resizeInProgress());
    EXPECT_EQ(rc->activeSlices(), 4u);
    EXPECT_GT(rc->pagesMigrated(), 0u);
    EXPECT_GT(rc->dirtyPagesMigrated(), 0u);

    // Migration invariant: every dirty page that left the cache made
    // exactly one page-sized trip in-package -> off-package under the
    // Migration category; clean drops moved nothing. A lost dirty
    // page would break this accounting (or the staleness invariant
    // armed during the whole run).
    const std::uint64_t offMig =
        s.memSystem().offPkg()->traffic().bytes(TrafficCat::Migration);
    const std::uint64_t inMig =
        s.memSystem().inPkg()->traffic().bytes(TrafficCat::Migration);
    EXPECT_EQ(offMig, rc->dirtyPagesMigrated() * kPageBytes);
    EXPECT_EQ(inMig, offMig);

    // Directory, page table and slice layout agree everywhere, and no
    // frame survives in a deactivated slice.
    rc->verifyResidencyConsistent();
}

TEST(ResizeEndToEnd, ManualGrowRestoresCapacityConsistently)
{
    // omnetpp churns enough that pages keep being inserted after the
    // shrink; those land on the surviving slices and must migrate
    // back out when the deactivated slices return.
    SystemConfig c = resizeBase("omnetpp");
    c.withResizeStep(1, 4);
    System s(c);
    runAndDrain(s);

    ResizeController *rc = s.resizeController();
    EXPECT_EQ(rc->activeSlices(), 4u);
    const std::uint64_t migratedByShrink = rc->pagesMigrated();

    // External capacity manager grows the cache back.
    EXPECT_TRUE(rc->requestResize(8));
    EXPECT_TRUE(rc->resizeInProgress());
    EXPECT_FALSE(rc->requestResize(6)); // one transition at a time
    s.eventQueue().run();

    EXPECT_EQ(rc->activeSlices(), 8u);
    EXPECT_FALSE(rc->resizeInProgress());
    EXPECT_EQ(rc->resizesCompleted(), 2u);
    // The grow relocated the pages that return to reactivated slices.
    EXPECT_GT(rc->pagesMigrated(), migratedByShrink);
    rc->verifyResidencyConsistent();
}

TEST(ResizeEndToEnd, AdaptivePolicyShrinksAColdCache)
{
    SystemConfig c = resizeBase("libquantum");
    c.resize.enabled = true;
    c.resize.policy.kind = ResizePolicyConfig::Kind::Adaptive;
    c.resize.policy.shrinkMissRate = 0.5; // libquantum sits below this
    c.resize.policy.growMissRate = 2.0;   // never grow (test isolation)
    c.resize.policy.minSlices = 4;
    c.resize.policy.minEpochAccesses = 100;
    System s(c);
    const RunResult r = runAndDrain(s);

    EXPECT_GE(r.resizesStarted, 1u);
    EXPECT_LT(s.resizeController()->activeSlices(), 8u);
    EXPECT_GE(s.resizeController()->activeSlices(), 4u);
    s.resizeController()->verifyResidencyConsistent();
}

TEST(ResizeEndToEnd, ConsistentHashBeatsFlushResizeOnTransitionTraffic)
{
    // Acceptance criterion (c) at test scale: on two workloads, the
    // consistent-hash transition moves less off-package data than the
    // naive flush-resize (which drains the whole cache and refills).
    // omnetpp and mcf have enough reuse at test scale for residency
    // to matter; streaming workloads need the bench's longer runs.
    for (const std::string workload : {"omnetpp", "mcf"}) {
        SystemConfig base = resizeBase(workload);
        const auto exps = resizeSweep(base, workload, 1, 4);
        const auto results = runExperiments(exps, 1, false);
        ASSERT_EQ(results.size(), 3u);

        const RunResult &ch = results[1];
        const RunResult &flush = results[2];
        EXPECT_EQ(ch.resizesStarted, 1u) << workload;
        EXPECT_EQ(flush.resizesStarted, 1u) << workload;

        auto offPkgTotal = [](const RunResult &r) {
            std::uint64_t t = 0;
            for (std::size_t cat = 0; cat < kNumTrafficCats; ++cat)
                t += r.offPkgBytes[cat];
            return t;
        };
        EXPECT_LT(offPkgTotal(ch), offPkgTotal(flush)) << workload;
        // Fewer pages migrate under consistent hashing.
        EXPECT_LT(ch.pagesMigrated, flush.pagesMigrated) << workload;
    }
}

TEST(ResizeEndToEnd, ShrinkThenRecoverWithFbrDecayStaysConsistent)
{
    // fbrDecayOnShrink (halving pinned in test_banshee, commit-time
    // plumbing in the FakeHost test above) end to end: it must change
    // post-shrink dynamics — the halved counters let new residents
    // re-earn admission — without breaking residency consistency or
    // the recover-by-grow path.
    auto runWith = [](bool decay) {
        SystemConfig c = resizeBase("omnetpp");
        c.banshee.fbrDecayOnShrink = decay;
        c.withResizeStep(1, 4);
        System s(c);
        const RunResult r = runAndDrain(s);
        ResizeController *rc = s.resizeController();
        EXPECT_EQ(rc->activeSlices(), 4u);
        EXPECT_TRUE(rc->requestResize(8)); // recover
        s.eventQueue().run();
        EXPECT_EQ(rc->activeSlices(), 8u);
        EXPECT_EQ(rc->resizesCompleted(), 2u);
        rc->verifyResidencyConsistent();
        return r.cycles;
    };
    const std::uint64_t cyclesOff = runWith(false);
    const std::uint64_t cyclesOn = runWith(true);
    // The decay engaged mid-run: the measured phase ran differently.
    EXPECT_NE(cyclesOff, cyclesOn);
}

TEST(ResizeEndToEnd, DisabledResizeIsBitIdenticalToSeedBehavior)
{
    // The subsystem must be invisible when disabled: a config with
    // resize off runs exactly as before the subsystem existed.
    SystemConfig a = SystemConfig::testDefault();
    a.workload = "libquantum";
    a.withScheme(SchemeKind::Banshee);
    System s1(a), s2(a);
    const RunResult r1 = s1.run(), r2 = s2.run();
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(s1.resizeController(), nullptr);
}

} // namespace
} // namespace banshee
