/**
 * @file
 * Unit tests for the Tag Buffer (paper Section 3.3): lookup/override
 * semantics, remap pinning, clean-entry replacement, the flush
 * threshold, harvest, and the pair-admission check used before a
 * replacement commits.
 */

#include <gtest/gtest.h>

#include "core/tag_buffer.hh"

namespace banshee {
namespace {

TagBufferParams
tiny(std::uint32_t entries = 16, std::uint32_t ways = 4)
{
    TagBufferParams p;
    p.entries = entries;
    p.ways = ways;
    p.flushThreshold = 0.7;
    return p;
}

TEST(TagBuffer, MissThenHit)
{
    TagBuffer tb(tiny(), "t");
    EXPECT_FALSE(tb.lookup(5).has_value());
    EXPECT_TRUE(tb.insertRemap(5, PageMapping{true, 2}));
    auto m = tb.lookup(5);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->cached);
    EXPECT_EQ(m->way, 2);
    EXPECT_EQ(tb.hits(), 1u);
    EXPECT_EQ(tb.misses(), 1u);
}

TEST(TagBuffer, RemapUpdatesInPlace)
{
    TagBuffer tb(tiny(), "t");
    tb.insertRemap(5, PageMapping{true, 1});
    tb.insertRemap(5, PageMapping{false, 0});
    EXPECT_EQ(tb.remapCount(), 1u); // still one remapped entry
    auto m = tb.lookup(5);
    ASSERT_TRUE(m.has_value());
    EXPECT_FALSE(m->cached);
}

TEST(TagBuffer, CleanEntriesAreReplaceableRemapsAreNot)
{
    // One set (4 ways): fill with 3 remaps + 1 clean; a new remap
    // must displace the clean entry; a further remap must fail.
    TagBuffer tb(tiny(4, 4), "t");
    EXPECT_TRUE(tb.insertRemap(0, PageMapping{true, 0}));
    EXPECT_TRUE(tb.insertRemap(1, PageMapping{true, 1}));
    EXPECT_TRUE(tb.insertRemap(2, PageMapping{true, 2}));
    tb.insertClean(3, PageMapping{false, 0});
    EXPECT_TRUE(tb.lookup(3).has_value());

    EXPECT_TRUE(tb.insertRemap(4, PageMapping{true, 3}));
    EXPECT_FALSE(tb.lookup(3).has_value()); // clean displaced
    EXPECT_FALSE(tb.insertRemap(5, PageMapping{true, 0})); // full
}

TEST(TagBuffer, CleanInsertNeverDisplacesRemap)
{
    TagBuffer tb(tiny(4, 4), "t");
    for (PageNum p = 0; p < 4; ++p)
        EXPECT_TRUE(tb.insertRemap(p, PageMapping{true, 0}));
    tb.insertClean(9, PageMapping{false, 0});
    EXPECT_FALSE(tb.lookup(9).has_value());
    EXPECT_EQ(tb.remapCount(), 4u);
}

TEST(TagBuffer, CleanInsertDoesNotDowngradeRemap)
{
    TagBuffer tb(tiny(), "t");
    tb.insertRemap(5, PageMapping{true, 3});
    // A later clean insert (e.g. from a PTE walk) must not overwrite
    // the only up-to-date mapping.
    tb.insertClean(5, PageMapping{false, 0});
    auto m = tb.lookup(5);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(m->cached);
    EXPECT_EQ(m->way, 3);
    EXPECT_EQ(tb.remapCount(), 1u);
}

TEST(TagBuffer, NeedsFlushAtThreshold)
{
    TagBuffer tb(tiny(16, 4), "t");
    std::uint32_t inserted = 0;
    PageNum p = 0;
    while (!tb.needsFlush()) {
        if (tb.insertRemap(p++, PageMapping{true, 0}))
            ++inserted;
        ASSERT_LT(p, 1000u);
    }
    // Threshold is 70 % of 16 = 11.2 -> 11 remaps.
    EXPECT_GE(inserted, 11u);
}

TEST(TagBuffer, HarvestReturnsAllRemapsAndClearsBits)
{
    TagBuffer tb(tiny(), "t");
    for (PageNum p = 0; p < 8; ++p)
        tb.insertRemap(p, PageMapping{true, 0});
    auto pages = tb.harvest();
    EXPECT_EQ(pages.size(), 8u);
    EXPECT_EQ(tb.remapCount(), 0u);
    // Entries remain as clean mapping copies (probe filter).
    for (PageNum p = 0; p < 8; ++p)
        EXPECT_TRUE(tb.lookup(p).has_value());
    // And are now displaceable again.
    EXPECT_TRUE(tb.insertRemap(100, PageMapping{true, 1}));
}

TEST(TagBuffer, CanAcceptRemapsGlobal)
{
    TagBuffer tb(tiny(8, 4), "t");
    EXPECT_TRUE(tb.canAcceptRemaps(8));
    EXPECT_FALSE(tb.canAcceptRemaps(9));
    for (PageNum p = 0; p < 7; ++p)
        tb.insertRemap(p, PageMapping{true, 0});
    EXPECT_TRUE(tb.canAcceptRemaps(1));
    EXPECT_FALSE(tb.canAcceptRemaps(2));
}

TEST(TagBuffer, PairCheckSameSetExactlyFull)
{
    // Regression test for the replacement-admission bug: when the
    // victim's clean entry is the only displaceable slot in the set,
    // inserting the incoming page first would displace it and strand
    // the victim's remap. The pair check must reject this.
    TagBuffer tb(tiny(4, 4), "t");
    // Three pinned remaps + one clean entry for the victim (page 3).
    tb.insertRemap(0, PageMapping{true, 0});
    tb.insertRemap(1, PageMapping{true, 1});
    tb.insertRemap(2, PageMapping{true, 2});
    tb.insertClean(3, PageMapping{true, 3});
    // Incoming page 7 (same single set), victim page 3.
    EXPECT_FALSE(tb.canInsertRemapPair(7, true, 3));
    // Without a victim one slot suffices.
    EXPECT_TRUE(tb.canInsertRemapPair(7, false, 0));
}

TEST(TagBuffer, PairCheckPassesWhenBothHaveEntries)
{
    TagBuffer tb(tiny(4, 4), "t");
    tb.insertRemap(0, PageMapping{true, 0});
    tb.insertRemap(1, PageMapping{true, 1});
    tb.insertClean(2, PageMapping{true, 2});
    tb.insertClean(3, PageMapping{false, 0});
    // Both upgrade in place: no free slot needed.
    EXPECT_TRUE(tb.canInsertRemapPair(2, true, 3));
    EXPECT_TRUE(tb.insertRemap(2, PageMapping{false, 0}));
    EXPECT_TRUE(tb.insertRemap(3, PageMapping{true, 2}));
}

TEST(TagBuffer, PairCheckDifferentSets)
{
    TagBuffer tb(tiny(8, 4), "t"); // 2 sets
    // Saturate set 0 with remaps (even pages); set 1 stays empty.
    tb.insertRemap(0, PageMapping{true, 0});
    tb.insertRemap(2, PageMapping{true, 0});
    tb.insertRemap(4, PageMapping{true, 0});
    tb.insertRemap(6, PageMapping{true, 0});
    EXPECT_FALSE(tb.canInsertRemapPair(8, true, 1)); // 8 -> set 0 full
    EXPECT_TRUE(tb.canInsertRemapPair(1, true, 3));  // both set 1
}

TEST(TagBuffer, LruAmongCleanEntries)
{
    TagBuffer tb(tiny(4, 4), "t");
    tb.insertClean(0, PageMapping{});
    tb.insertClean(1, PageMapping{});
    tb.insertClean(2, PageMapping{});
    tb.insertClean(3, PageMapping{});
    tb.lookup(0); // refresh 0
    tb.insertClean(4, PageMapping{});
    EXPECT_TRUE(tb.lookup(0).has_value());
    EXPECT_FALSE(tb.lookup(1).has_value()); // 1 was LRU
}

TEST(TagBuffer, OccupancyFraction)
{
    TagBuffer tb(tiny(16, 4), "t");
    EXPECT_DOUBLE_EQ(tb.occupancy(), 0.0);
    for (PageNum p = 0; p < 8; ++p)
        tb.insertRemap(p, PageMapping{true, 0});
    EXPECT_DOUBLE_EQ(tb.occupancy(), 0.5);
}

} // namespace
} // namespace banshee
