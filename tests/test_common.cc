/**
 * @file
 * Unit tests for src/common: RNG, alias table, event queue, stats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "common/alias_table.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace banshee {
namespace {

TEST(Types, LineAndPageHelpers)
{
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(lineToAddr(lineOf(12345)), 12288u);
    EXPECT_EQ(pageOf(4096), 1u);
    EXPECT_EQ(pageOfLine(lineOf(4096)), 1u);
    EXPECT_EQ(lineInPage(lineOf(4096 + 128)), 2u);
    EXPECT_EQ(kLinesPerPage, 64u);
}

TEST(Types, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(4096), 12u);
}

TEST(Units, CycleConversions)
{
    // 2.7 GHz: 1 us = 2700 cycles.
    EXPECT_EQ(usToCycles(1.0), 2700u);
    EXPECT_EQ(usToCycles(20.0), 54000u);
    EXPECT_NEAR(cyclesToUs(2700), 1.0, 1e-9);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedBelowBound)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, UniformityCoarse)
{
    Rng r(11);
    std::vector<int> buckets(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.nextBelow(10)];
    for (int b : buckets)
        EXPECT_NEAR(b, n / 10, n / 100); // within 10 % relative
}

TEST(AliasTable, RespectsWeights)
{
    AliasTable t({1.0, 2.0, 7.0});
    Rng r(5);
    std::vector<int> counts(3, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[t.sample(r)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.2, 0.01);
    EXPECT_NEAR(counts[2] / double(n), 0.7, 0.01);
}

TEST(AliasTable, ZeroWeightNeverSampled)
{
    AliasTable t({0.0, 1.0});
    Rng r(6);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(t.sample(r), 1u);
}

TEST(AliasTable, SingleOutcome)
{
    AliasTable t({5.0});
    Rng r(1);
    EXPECT_EQ(t.sample(r), 0u);
}

TEST(AliasTable, ZipfWeightsMonotone)
{
    auto w = zipfWeights(100, 0.8);
    ASSERT_EQ(w.size(), 100u);
    for (std::size_t i = 1; i < w.size(); ++i)
        EXPECT_LT(w[i], w[i - 1]);
    // alpha = 0 is uniform.
    auto u = zipfWeights(10, 0.0);
    for (double v : u)
        EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, FifoTieBreakAtSameCycle)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUpToLimitLeavesRemainder)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.run(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RequestStopHaltsProcessing)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.requestStop();
    });
    eq.schedule(2, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(Stats, CounterBasics)
{
    StatSet s("test");
    Counter &c = s.counter("x");
    ++c;
    c += 5;
    EXPECT_EQ(s.value("x"), 6u);
    s.reset();
    EXPECT_EQ(s.value("x"), 0u);
    EXPECT_EQ(s.value("missing"), 0u);
}

TEST(Stats, CounterReferenceStable)
{
    StatSet s("test");
    Counter &a = s.counter("a");
    for (int i = 0; i < 100; ++i)
        s.counter("c" + std::to_string(i));
    ++a;
    EXPECT_EQ(s.value("a"), 1u);
}

TEST(Stats, ResetAtWarmupBoundaryClearsEveryCounter)
{
    // The warmup boundary resets whole StatSets; references handed
    // out before the reset must stay live and start from zero.
    StatSet s("warm");
    Counter &hits = s.counter("hits");
    Counter &misses = s.counter("misses");
    hits += 10;
    misses += 3;
    s.reset();
    EXPECT_EQ(s.value("hits"), 0u);
    EXPECT_EQ(s.value("misses"), 0u);
    ++hits;
    EXPECT_EQ(s.value("hits"), 1u);
    EXPECT_EQ(s.value("misses"), 0u);
}

TEST(Stats, DumpOrderIsLexicographicAndStable)
{
    StatSet s("set");
    s.counter("zeta") += 1;
    s.counter("alpha") += 2;
    s.counter("mid") += 3;
    std::ostringstream first;
    s.dump(first);
    EXPECT_EQ(first.str(), "set.alpha = 2\nset.mid = 3\nset.zeta = 1\n");

    // Creating another counter must not reorder the existing ones —
    // telemetry registers StatSet counters by iteration order, so a
    // stable order keeps metric names consistent across runs.
    s.counter("beta");
    std::ostringstream second;
    s.dump(second);
    EXPECT_EQ(second.str(),
              "set.alpha = 2\nset.beta = 0\nset.mid = 3\nset.zeta = 1\n");
}

TEST(Stats, EwmaConvergesToRatio)
{
    EwmaRatio e(10, 0.5, 1.0);
    for (int i = 0; i < 1000; ++i)
        e.record(i % 10 < 3); // 30 % hit ratio
    EXPECT_NEAR(e.value(), 0.3, 0.05);
}

TEST(Stats, EwmaStartsAtInitial)
{
    EwmaRatio e(100, 0.25, 0.75);
    EXPECT_DOUBLE_EQ(e.value(), 0.75);
    e.record(true); // below window: unchanged
    EXPECT_DOUBLE_EQ(e.value(), 0.75);
}

} // namespace
} // namespace banshee
