/**
 * @file
 * Property/fuzz pass over the consistent-hash ring and the tenant
 * quota apportionment — the invariants every resize and QoS decision
 * leans on, asserted over randomized geometries instead of the
 * hand-picked configurations of test_resize.cc:
 *
 *  - remap bound: deactivating K of N active slices remaps only the
 *    removed slices' pages (~K/N of keys, within the ring's vnode
 *    variance), survivors never move, nothing maps to an inactive
 *    slice;
 *  - history independence: the mapping is a pure function of the
 *    current activation set — any toggle sequence reaching the same
 *    set yields the same mapping (what makes grow-after-shrink
 *    restore residents exactly);
 *  - ownership is a partition: apportionSlices covers every slice
 *    exactly once with a one-slice floor, and tenant-tagged lookups
 *    land only on the tenant's own slices;
 *  - weighted-quota proportionality: a tenant owning k of N equal-
 *    vnode slices receives ~k/N of the untagged key space, and its
 *    apportioned k stays within one slice of its exact weighted
 *    share.
 *
 * Every property runs over kSeeds randomized (numSlices,
 * vnodesPerSlice, ringSeed, weights, activation-sequence) draws; a
 * failure message names the seed so a counterexample replays.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "resize/consistent_hash.hh"
#include "tenant/tenant.hh"

namespace banshee {
namespace {

constexpr std::uint64_t kSeeds = 100;
constexpr int kKeys = 20000;

/** Randomized ring geometry for one property draw. */
ConsistentHashParams
randomParams(std::mt19937_64 &rng)
{
    ConsistentHashParams p;
    p.numSlices = std::uniform_int_distribution<std::uint32_t>(2, 32)(rng);
    p.vnodesPerSlice =
        std::uniform_int_distribution<std::uint32_t>(16, 128)(rng);
    p.ringSeed = rng();
    return p;
}

/**
 * Statistical slack for a ring-share assertion: the share of m of the
 * N equal-vnode slices has mean m/N and a vnode-placement standard
 * deviation of roughly sqrt(m) / (N * sqrt(v)); five sigmas (plus key
 * sampling noise) keeps 100 random draws comfortably inside while
 * still rejecting any systematic bias.
 */
double
shareTolerance(std::uint32_t m, std::uint32_t n, std::uint32_t vnodes)
{
    return 0.02 + 5.0 * std::sqrt(static_cast<double>(m)) /
                      (n * std::sqrt(static_cast<double>(vnodes)));
}

TEST(ConsistentHashProp, ShrinkRemapBoundHoldsOverRandomGeometries)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        std::mt19937_64 rng(seed);
        const ConsistentHashParams p = randomParams(rng);
        ConsistentHashMapper m(p);

        std::vector<std::uint32_t> before(kKeys);
        for (int k = 0; k < kKeys; ++k)
            before[k] = m.sliceOf(static_cast<PageNum>(k));

        // Deactivate a random K of the N slices (leaving >= 1).
        const std::uint32_t kOut =
            std::uniform_int_distribution<std::uint32_t>(
                1, p.numSlices - 1)(rng);
        std::vector<std::uint32_t> ids(p.numSlices);
        std::iota(ids.begin(), ids.end(), 0u);
        std::shuffle(ids.begin(), ids.end(), rng);
        std::vector<bool> removed(p.numSlices, false);
        for (std::uint32_t i = 0; i < kOut; ++i) {
            removed[ids[i]] = true;
            m.setActive(ids[i], false);
        }

        int remapped = 0;
        for (int k = 0; k < kKeys; ++k) {
            const std::uint32_t after = m.sliceOf(static_cast<PageNum>(k));
            ASSERT_FALSE(removed[after])
                << "seed " << seed << ": key " << k
                << " maps to deactivated slice " << after;
            if (removed[before[k]]) {
                ++remapped;
            } else {
                ASSERT_EQ(after, before[k])
                    << "seed " << seed << ": surviving slice's key moved";
            }
        }

        const double frac = static_cast<double>(remapped) / kKeys;
        const double share =
            static_cast<double>(kOut) / p.numSlices;
        const double tol =
            shareTolerance(kOut, p.numSlices, p.vnodesPerSlice);
        EXPECT_NEAR(frac, share, tol)
            << "seed " << seed << ": removed " << kOut << "/"
            << p.numSlices << " slices (" << p.vnodesPerSlice
            << " vnodes)";
    }
}

TEST(ConsistentHashProp, MappingIsHistoryIndependent)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        std::mt19937_64 rng(seed);
        const ConsistentHashParams p = randomParams(rng);
        ConsistentHashMapper walked(p);

        // A random toggle walk (never emptying the active set)...
        const int steps =
            std::uniform_int_distribution<int>(4, 40)(rng);
        for (int i = 0; i < steps; ++i) {
            const std::uint32_t s =
                std::uniform_int_distribution<std::uint32_t>(
                    0, p.numSlices - 1)(rng);
            if (walked.isActive(s)) {
                if (walked.activeSlices() > 1)
                    walked.setActive(s, false);
            } else {
                walked.setActive(s, true);
            }
        }

        // ...must land on the same mapping as a fresh ring put
        // directly into the final activation state.
        ConsistentHashMapper fresh(p);
        for (std::uint32_t s = 0; s < p.numSlices; ++s) {
            if (!walked.isActive(s))
                fresh.setActive(s, false);
        }
        ASSERT_EQ(fresh.activeSlices(), walked.activeSlices());
        for (int k = 0; k < kKeys; ++k) {
            ASSERT_EQ(fresh.sliceOf(static_cast<PageNum>(k)),
                      walked.sliceOf(static_cast<PageNum>(k)))
                << "seed " << seed << ": key " << k;
        }
    }
}

TEST(ConsistentHashProp, ApportionmentIsAPartitionWithAFloor)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        std::mt19937_64 rng(seed);
        const std::uint32_t numSlices =
            std::uniform_int_distribution<std::uint32_t>(4, 64)(rng);
        const std::size_t tenants =
            std::uniform_int_distribution<std::size_t>(
                1, std::min<std::uint32_t>(numSlices, 8))(rng);
        std::vector<double> weights(tenants);
        double sum = 0.0;
        for (double &w : weights) {
            w = std::uniform_real_distribution<double>(0.05, 8.0)(rng);
            sum += w;
        }

        const auto counts = apportionSlices(weights, numSlices);
        ASSERT_EQ(counts.size(), tenants) << "seed " << seed;

        std::uint32_t total = 0;
        for (std::size_t t = 0; t < tenants; ++t) {
            EXPECT_GE(counts[t], 1u)
                << "seed " << seed << ": tenant " << t
                << " lost its slice floor";
            total += counts[t];
        }
        EXPECT_EQ(total, numSlices)
            << "seed " << seed << ": counts do not partition the slices";

        // Proportionality: within one slice of the exact weighted
        // share whenever the one-slice floor is not binding.
        for (std::size_t t = 0; t < tenants; ++t) {
            const double exact = weights[t] / sum * numSlices;
            if (exact >= 1.0) {
                EXPECT_LT(std::abs(counts[t] - exact), 1.0 + 1e-9)
                    << "seed " << seed << ": tenant " << t << " got "
                    << counts[t] << " for exact share " << exact;
            }
        }
    }

    // Regression: a tenant boosted to the one-slice floor must not
    // also win a largest-remainder slice (it already holds more than
    // its exact share; its fractional remainder is spent).
    EXPECT_EQ(apportionSlices({0.9, 4.5, 4.6}, 10),
              (std::vector<std::uint32_t>{1, 4, 5}));
}

TEST(ConsistentHashProp, TenantLookupsRespectOwnershipAndQuota)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        std::mt19937_64 rng(seed);
        ConsistentHashParams p = randomParams(rng);
        p.numSlices = std::max(p.numSlices, 4u);
        ConsistentHashMapper m(p);

        const std::size_t tenants =
            std::uniform_int_distribution<std::size_t>(2, 4)(rng);
        std::vector<double> weights(tenants);
        for (double &w : weights)
            w = std::uniform_real_distribution<double>(0.2, 4.0)(rng);
        const auto counts = apportionSlices(weights, p.numSlices);

        std::uint32_t next = 0;
        for (std::size_t t = 0; t < tenants; ++t) {
            for (std::uint32_t i = 0; i < counts[t]; ++i)
                m.setSliceTenant(next++, static_cast<TenantId>(t));
        }

        // Every tenant-tagged key lands on a slice its tenant owns,
        // and the tenant's share of the *untagged* key space matches
        // its slice count (equal vnodes per slice = quota in ring
        // points).
        std::vector<int> untaggedPerTenant(tenants, 0);
        for (int k = 0; k < kKeys; ++k) {
            const PageNum page = static_cast<PageNum>(k);
            for (std::size_t t = 0; t < tenants; ++t) {
                const std::uint32_t s =
                    m.sliceOf(page, static_cast<TenantId>(t));
                ASSERT_EQ(m.sliceTenant(s), static_cast<TenantId>(t))
                    << "seed " << seed << ": tenant " << t
                    << " escaped its quota to slice " << s;
            }
            ++untaggedPerTenant[m.sliceTenant(m.sliceOf(page))];
        }
        for (std::size_t t = 0; t < tenants; ++t) {
            const double got =
                static_cast<double>(untaggedPerTenant[t]) / kKeys;
            const double want =
                static_cast<double>(counts[t]) / p.numSlices;
            EXPECT_NEAR(got, want,
                        shareTolerance(counts[t], p.numSlices,
                                       p.vnodesPerSlice))
                << "seed " << seed << ": tenant " << t << " owns "
                << counts[t] << "/" << p.numSlices << " slices";
        }

        // Per-tenant remap bound: deactivating one of a tenant's k
        // slices remaps only that slice's keys, onto the tenant's
        // remaining slices.
        std::size_t victim = tenants;
        for (std::size_t t = 0; t < tenants; ++t) {
            if (counts[t] >= 2) {
                victim = t;
                break;
            }
        }
        if (victim == tenants)
            continue; // every tenant at its floor in this draw
        std::vector<std::uint32_t> before(kKeys);
        for (int k = 0; k < kKeys; ++k) {
            before[k] = m.sliceOf(static_cast<PageNum>(k),
                                  static_cast<TenantId>(victim));
        }
        std::uint32_t lost = 0;
        for (std::uint32_t s = 0; s < p.numSlices; ++s) {
            if (m.sliceTenant(s) == static_cast<TenantId>(victim)) {
                lost = s;
                m.setActive(s, false);
                break;
            }
        }
        for (int k = 0; k < kKeys; ++k) {
            const std::uint32_t after =
                m.sliceOf(static_cast<PageNum>(k),
                          static_cast<TenantId>(victim));
            ASSERT_EQ(m.sliceTenant(after), static_cast<TenantId>(victim))
                << "seed " << seed;
            if (before[k] != lost) {
                ASSERT_EQ(after, before[k])
                    << "seed " << seed
                    << ": tenant's surviving-slice key moved";
            }
        }
    }
}

} // namespace
} // namespace banshee
