/**
 * @file
 * Cross-subsystem invariant sweep: one parameterized test that runs
 * every scheme x resize x power-cap x tenant quick configuration and
 * asserts the accounting identities the per-subsystem suites only
 * spot-check:
 *
 *  - energy identity: on every device, the per-category dynamic
 *    energies sum to the dynamic total, the per-tenant buckets sum
 *    to the same dynamic total, and dynamic + background + refresh +
 *    active-standby equals the device total that RunResult reports;
 *  - traffic conservation: per-category bytes and per-tenant bytes
 *    independently sum to the device's total bytes;
 *  - run accounting: per-tenant instructions partition the total,
 *    and miss counts never exceed access counts anywhere;
 *  - residency consistency: after every drain has completed, each
 *    scheme's directory, page table and frame state agree
 *    (verifyResidencyConsistent), and scheduled resizes actually
 *    reached their target.
 *
 * Catching a violation here means a subsystem leaked bytes, energy
 * or pages across one of the seams (scheme <-> DRAM model <-> power
 * model <-> resize <-> tenants) rather than inside any one of them.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/system_config.hh"

namespace banshee {
namespace {

struct SweepCase
{
    std::string name;
    SystemConfig config;
    /** Expected finalActiveSlices (0 = no expectation). */
    std::uint32_t expectSlices = 0;
};

/** Printed by gtest as the parameterized test's suffix. */
std::string
caseName(const testing::TestParamInfo<SweepCase> &info)
{
    return info.param.name;
}

std::vector<SweepCase>
sweepCases()
{
    std::vector<SweepCase> cases;

    auto base = [] {
        SystemConfig c = SystemConfig::testDefault();
        c.numCores = 8;
        c.workload = "mcf";
        return c;
    };

    // Scheme axis (no resize: only Banshee can resize).
    for (const SchemeKind k :
         {SchemeKind::Banshee, SchemeKind::Alloy, SchemeKind::Unison,
          SchemeKind::Tdc, SchemeKind::CacheOnly, SchemeKind::NoCache}) {
        SystemConfig c = base().withScheme(k);
        cases.push_back({schemeKindName(k), c, 0});
    }

    // Resize axis: scripted shrink, shrink-then-grow, power cap.
    {
        SystemConfig c = base();
        c.withResizeStep(1, 5);
        cases.push_back({"Banshee_shrink", c, 5});
    }
    {
        SystemConfig c = base();
        c.withResizeStep(1, 6).withResizeStep(4, 8);
        cases.push_back({"Banshee_shrink_grow", c, 8});
    }
    {
        // A cap far below anything the device can reach: the policy
        // must shed one slice per epoch down to the floor.
        SystemConfig c = base();
        c.withPowerCap(1e-3, /*minSlices=*/4);
        cases.push_back({"Banshee_powercap", c, 4});
    }

    // Tenant axis: partitioned, and partitioned + QoS with a cap.
    {
        SystemConfig c = base();
        c.withTenants({{"a", "mcf", 1.0, 4}, {"b", "omnetpp", 1.0, 4}});
        cases.push_back({"Banshee_tenants", c, 0});
    }
    {
        SystemConfig c = base();
        c.withTenants({{"a", "mcf", 3.0, 4}, {"b", "omnetpp", 1.0, 4}});
        c.withQosArbiter(/*capWatts=*/1e-3);
        c.resize.policy.minSlices = 4;
        c.resize.policy.minSlicesPerTenant = 1;
        cases.push_back({"Banshee_tenants_powercap", c, 4});
    }

    return cases;
}

class InvariantSweep : public testing::TestWithParam<SweepCase>
{
};

/** Device-level identities shared by the in- and off-package DRAM. */
void
checkDevice(const char *which, DramModel &dram,
            std::uint32_t numTenants)
{
    const TrafficStats &traffic = dram.traffic();
    const EnergyStats &energy = dram.power().energy();

    // Traffic: per-category and per-tenant splits both conserve the
    // device total (the untagged bucket absorbs everything a tenant
    // id never reached).
    std::uint64_t catBytes = 0;
    for (std::size_t c = 0; c < kNumTrafficCats; ++c)
        catBytes += traffic.bytes(static_cast<TrafficCat>(c));
    EXPECT_EQ(catBytes, traffic.totalBytes()) << which;

    std::uint64_t tenantBytes = traffic.tenantBytes(kNoTenant);
    for (std::uint32_t t = 0; t < numTenants; ++t)
        tenantBytes += traffic.tenantBytes(static_cast<TenantId>(t));
    EXPECT_EQ(tenantBytes, traffic.totalBytes()) << which;

    // Energy: per-category and per-tenant dynamic splits agree, and
    // the component sum is the device total.
    double catPJ = 0.0;
    for (std::size_t c = 0; c < kNumTrafficCats; ++c)
        catPJ += energy.dynamicPJ(static_cast<TrafficCat>(c));
    EXPECT_NEAR(catPJ, energy.dynamicTotalPJ(),
                1e-6 * std::max(1.0, energy.dynamicTotalPJ()))
        << which;

    double tenantPJ = energy.tenantDynamicPJ(kNoTenant);
    for (std::uint32_t t = 0; t < numTenants; ++t)
        tenantPJ += energy.tenantDynamicPJ(static_cast<TenantId>(t));
    EXPECT_NEAR(tenantPJ, energy.dynamicTotalPJ(),
                1e-6 * std::max(1.0, energy.dynamicTotalPJ()))
        << which;

    EXPECT_NEAR(energy.totalPJ(),
                energy.dynamicTotalPJ() + energy.backgroundPJ() +
                    energy.refreshPJ() + energy.activeStandbyPJ(),
                1e-6 * std::max(1.0, energy.totalPJ()))
        << which;
}

TEST_P(InvariantSweep, AccountingIdentitiesHoldAfterDrain)
{
    const SweepCase &sc = GetParam();
    System sys(sc.config);
    const RunResult r = sys.run();

    EXPECT_GT(r.instructions, 0u);
    EXPECT_LE(r.dramCacheMisses, r.dramCacheAccesses);

    const std::uint32_t numTenants =
        static_cast<std::uint32_t>(r.tenants.size());
    MemSystem &mem = sys.memSystem();
    if (mem.inPkg())
        checkDevice("inPkg", *mem.inPkg(), numTenants);
    if (mem.offPkg())
        checkDevice("offPkg", *mem.offPkg(), numTenants);

    // RunResult's energy view mirrors the devices exactly.
    double devicePJ = 0.0;
    if (mem.inPkg())
        devicePJ += mem.inPkg()->power().energy().totalPJ();
    if (mem.offPkg())
        devicePJ += mem.offPkg()->power().energy().totalPJ();
    EXPECT_NEAR(r.totalEnergyPJ(), devicePJ,
                1e-6 * std::max(1.0, devicePJ));

    // Per-tenant run accounting partitions the totals.
    if (numTenants > 0) {
        std::uint64_t instr = 0;
        std::uint64_t acc = 0;
        for (const TenantRunStats &t : r.tenants) {
            EXPECT_LE(t.dramCacheMisses, t.dramCacheAccesses) << t.name;
            instr += t.instructions;
            acc += t.dramCacheAccesses;
        }
        EXPECT_EQ(instr, r.instructions);
        EXPECT_LE(acc, r.dramCacheAccesses);
    }

    // Residency consistency once every drain has completed, and
    // scripted/cap targets actually landed.
    if (ResizeController *resize = sys.resizeController()) {
        resize->verifyResidencyConsistent();
        if (sc.expectSlices != 0) {
            EXPECT_EQ(r.finalActiveSlices, sc.expectSlices);
            EXPECT_GT(r.resizesCompleted, 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SchemeResizePowerTenants, InvariantSweep,
                         testing::ValuesIn(sweepCases()), caseName);

} // namespace
} // namespace banshee
