/**
 * @file
 * Tests for the intra-system event-domain engine
 * (sim/domain_engine.hh):
 *
 *  - the deterministic completion merge: same-cycle completions from
 *    different channel domains reach the frontend in (cycle, domain,
 *    issue-order) order regardless of the order the frontend sent the
 *    requests;
 *  - the skew contract: every parallel run exercises the
 *    no-message-in-the-past sim_asserts in DomainEngine::exchange, so
 *    any of these tests aborting means a message targeted a past
 *    cycle;
 *  - bit-reproducibility: two runs of the same configuration at the
 *    same domain count produce identical results, field for field;
 *  - engine bookkeeping: worker count, epoch counter, and the
 *    cross-queue event totals the benches report.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/event_queue.hh"
#include "dram/dram_model.hh"
#include "mem/mem_system.hh"
#include "sim/domain_engine.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"

namespace banshee {
namespace {

// ------------------------------------------------------------------
// Deterministic merge on a bare MemSystem
// ------------------------------------------------------------------

/** Four in-package channels over two domains (round-robin: channels
 *  0 and 2 on domain 0, channels 1 and 3 on domain 1). */
struct EngineHarness
{
    EventQueue frontend;
    DomainEngine engine{frontend, 2};
    MemSystem mem;

    EngineHarness() : mem(frontend, params(), &engine)
    {
        engine.attach(mem);
    }

    static MemSystemParams
    params()
    {
        MemSystemParams p;
        p.numMcs = 4;
        p.hasOffPkg = false;
        return p;
    }
};

std::vector<int>
runSameCycleCompletions()
{
    EngineHarness h;
    std::vector<int> order;

    // One frontend event issues identical reads to channel 1 *then*
    // channel 0. Identical timing means identical completion cycles;
    // the merge must order them by domain id (channel 0 lives on
    // domain 0), not by send order.
    h.frontend.schedule(100, [&](Cycle) {
        for (int ch : {1, 0}) {
            DramRequest req;
            req.addr = 0;
            req.bytes = 64;
            req.done = [&order, ch](Cycle) { order.push_back(ch); };
            h.mem.inPkg()->access(static_cast<std::uint32_t>(ch),
                                  std::move(req));
        }
    });
    // A later read on channel 2 (also domain 0) must stay behind both.
    h.frontend.schedule(5000, [&](Cycle) {
        DramRequest req;
        req.addr = 0;
        req.bytes = 64;
        req.done = [&order](Cycle) { order.push_back(2); };
        h.mem.inPkg()->access(2, std::move(req));
    });

    h.engine.runPhase([&order] { return order.size() == 3; });
    return order;
}

TEST(DomainEngine, SameCycleCompletionsMergeInDomainOrder)
{
    const std::vector<int> order = runSameCycleCompletions();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0); // domain 0 beats domain 1 at equal cycles
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
}

TEST(DomainEngine, MergeOrderIsReproducible)
{
    EXPECT_EQ(runSameCycleCompletions(), runSameCycleCompletions());
}

TEST(DomainEngine, SameChannelKeepsIssueOrder)
{
    EngineHarness h;
    std::vector<int> order;

    // Two same-cycle reads to one channel: the second queues behind
    // the first in the bank scheduler, and the merge's append-order
    // key keeps equal-cycle exports stable.
    h.frontend.schedule(60, [&](Cycle) {
        for (int i = 0; i < 2; ++i) {
            DramRequest req;
            req.addr = static_cast<Addr>(i) * 64;
            req.bytes = 64;
            req.done = [&order, i](Cycle) { order.push_back(i); };
            h.mem.inPkg()->access(0, std::move(req));
        }
    });

    h.engine.runPhase([&order] { return order.size() == 2; });
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
}

TEST(DomainEngine, EpochWindowRespectsSkewBound)
{
    EngineHarness h;
    const DramTiming t;
    // 2W must not exceed the minimum completion latency, or a
    // completion could land in the frontend's past.
    EXPECT_GE(t.toCore(t.scaledCAS()), 2 * h.engine.epochCycles());
    EXPECT_GE(h.engine.epochCycles(), 1u);
}

// ------------------------------------------------------------------
// Full-system runs
// ------------------------------------------------------------------

SystemConfig
parallelConfig(std::uint32_t domains)
{
    SystemConfig c = SystemConfig::testDefault();
    c.withScheme(SchemeKind::Banshee).withIntraDomains(domains);
    return c;
}

TEST(DomainEngine, SerialConfigInstallsNoEngine)
{
    System system(SystemConfig::testDefault());
    EXPECT_EQ(system.domainEngine(), nullptr);
}

TEST(DomainEngine, ParallelRunCompletesAndCountsDomainEvents)
{
    System system(parallelConfig(3));
    ASSERT_NE(system.domainEngine(), nullptr);
    // 3 domains = frontend + 2 channel workers (5 channels exist).
    EXPECT_EQ(system.domainEngine()->numWorkers(), 2u);

    const RunResult r = system.run();
    const SystemConfig &c = system.config();
    // Cores retire in bursts, so the measured count may overshoot the
    // per-core limit by a few instructions.
    EXPECT_GE(r.instructions, c.measureInstrPerCore * c.numCores);
    EXPECT_LT(r.instructions,
              (c.measureInstrPerCore + 100) * c.numCores);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(system.domainEngine()->epochsRun(), 0u);
    EXPECT_GT(system.domainEngine()->domainEventsExecuted(), 0u);
    EXPECT_GT(system.totalEventsExecuted(),
              system.eventQueue().eventsExecuted());
}

TEST(DomainEngine, WorkerCountCapsAtChannelCount)
{
    // 4 in-package + 1 off-package channels: domains beyond 5 workers
    // would own no channel and are clamped away.
    System system(parallelConfig(32));
    ASSERT_NE(system.domainEngine(), nullptr);
    EXPECT_EQ(system.domainEngine()->numWorkers(), 5u);
}

/** Field-for-field comparison of everything a run measures. */
void
expectBitEqual(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc); // exact double equality, not near
    EXPECT_EQ(a.dramCacheAccesses, b.dramCacheAccesses);
    EXPECT_EQ(a.dramCacheMisses, b.dramCacheMisses);
    EXPECT_EQ(a.missRate, b.missRate);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.inPkgBytes, b.inPkgBytes);
    EXPECT_EQ(a.offPkgBytes, b.offPkgBytes);
    EXPECT_EQ(a.inPkgDynPJ, b.inPkgDynPJ);
    EXPECT_EQ(a.offPkgDynPJ, b.offPkgDynPJ);
    EXPECT_EQ(a.inPkgBackgroundPJ, b.inPkgBackgroundPJ);
    EXPECT_EQ(a.inPkgRefreshPJ, b.inPkgRefreshPJ);
    EXPECT_EQ(a.totalEnergyPJ(), b.totalEnergyPJ());
    EXPECT_EQ(a.inPkgBusUtil, b.inPkgBusUtil);
    EXPECT_EQ(a.offPkgBusUtil, b.offPkgBusUtil);
    EXPECT_EQ(a.avgFetchLatency, b.avgFetchLatency);
    EXPECT_EQ(a.tagBufferHits, b.tagBufferHits);
    EXPECT_EQ(a.tagBufferMisses, b.tagBufferMisses);
    EXPECT_EQ(a.pteUpdateRuns, b.pteUpdateRuns);
    EXPECT_EQ(a.tlbShootdowns, b.tlbShootdowns);
}

TEST(DomainEngine, RepeatedRunsAreBitEqual)
{
    const SystemConfig c = parallelConfig(3);
    System first(c);
    System second(c);
    expectBitEqual(first.run(), second.run());
}

TEST(DomainEngine, ParallelResizeRunIsBitEqual)
{
    // Scripted resize crosses the domain boundary through the routed
    // bulk-migration path; it must stay deterministic too.
    SystemConfig c = parallelConfig(2);
    c.withResizeStep(2, 8);
    System first(c);
    System second(c);
    expectBitEqual(first.run(), second.run());
}

} // namespace
} // namespace banshee
