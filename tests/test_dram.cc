/**
 * @file
 * Unit tests for the DRAM timing model: zero-load latency, row-buffer
 * behavior, bandwidth limits, write drain, bulk chopping, and traffic
 * accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "common/event_queue.hh"
#include "dram/dram_model.hh"

namespace banshee {
namespace {

class DramTest : public ::testing::Test
{
  protected:
    EventQueue eq;
};

Cycle
readOnce(EventQueue &eq, DramModel &dram, Addr addr, std::uint32_t bytes = 64)
{
    Cycle done = 0;
    DramRequest req;
    req.addr = addr;
    req.bytes = bytes;
    req.done = [&done](Cycle when) { done = when; };
    dram.access(0, std::move(req));
    eq.run();
    return done;
}

TEST_F(DramTest, ZeroLoadRowMissLatency)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    const DramTiming t;
    // Cold bank: tRCD + tCAS + transfer(2 DRAM cycles for 64 B).
    const Cycle expect = t.toCore(t.tRCD + t.tCAS + 2);
    EXPECT_EQ(readOnce(eq, dram, 0), expect);
}

TEST_F(DramTest, RowHitFasterThanConflict)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    const Cycle first = readOnce(eq, dram, 0);
    // Same row: hit — only tCAS + transfer.
    const Cycle hit = readOnce(eq, dram, 64) - first;
    // Same bank (stride = rowBytes * numBanks), different row: conflict.
    const DramTiming t;
    const Cycle confl =
        readOnce(eq, dram, static_cast<Addr>(t.rowBytes) * t.numBanks) -
        (first + hit);
    EXPECT_LT(hit, confl);
    EXPECT_EQ(hit, t.toCore(t.tCAS + 2));
}

TEST_F(DramTest, ConflictHonorsTras)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    const DramTiming t;
    const Cycle first = readOnce(eq, dram, 0);
    // Immediately conflict on the same bank: precharge cannot start
    // before tRAS expires from the first activate.
    const Cycle second =
        readOnce(eq, dram, static_cast<Addr>(t.rowBytes) * t.numBanks);
    const Cycle minSecond =
        t.toCore(t.tRAS + t.tRP + t.tRCD + t.tCAS + 2);
    EXPECT_GE(second, minSecond);
    (void)first;
}

TEST_F(DramTest, StreamIsBusLimited)
{
    // Sequential 64 B reads in one row: throughput must approach the
    // bus limit of 32 B per DRAM cycle.
    DramModel dram(eq, DramTiming{}, 1, "d");
    const int n = 512;
    Cycle last = 0;
    for (int i = 0; i < n; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.bytes = 64;
        req.done = [&last](Cycle when) { last = std::max(last, when); };
        dram.access(0, std::move(req));
    }
    eq.run();
    const DramTiming t;
    const double busCyclesNeeded = n * 64.0 / t.busBytesPerCycle;
    const double elapsed = static_cast<double>(last) / t.toCore(1);
    EXPECT_LT(elapsed, busCyclesNeeded * 1.3);
    EXPECT_GE(elapsed, busCyclesNeeded);
}

TEST_F(DramTest, RandomBanksPipelineAcrossBanks)
{
    // Random rows across banks: per-bank preparation overlaps, so
    // throughput stays far above the serialized per-request latency.
    DramModel dram(eq, DramTiming{}, 1, "d");
    const DramTiming t;
    const int n = 256;
    Cycle last = 0;
    for (int i = 0; i < n; ++i) {
        DramRequest req;
        // Different row every time, cycling banks.
        req.addr = static_cast<Addr>(i) * t.rowBytes;
        req.bytes = 64;
        req.done = [&last](Cycle when) { last = std::max(last, when); };
        dram.access(0, std::move(req));
    }
    eq.run();
    const Cycle serialized = n * t.toCore(t.tRP + t.tRCD + t.tCAS + 2);
    EXPECT_LT(last, serialized / 2);
}

TEST_F(DramTest, MoreChannelsMoreBandwidth)
{
    auto runStream = [this](std::uint32_t channels) {
        eq.reset();
        DramModel dram(eq, DramTiming{}, channels, "d");
        Cycle last = 0;
        for (int i = 0; i < 512; ++i) {
            DramRequest req;
            req.addr = static_cast<Addr>(i / channels) * 64;
            req.bytes = 64;
            req.done = [&last](Cycle when) {
                last = std::max(last, when);
            };
            dram.access(i % channels, std::move(req));
        }
        eq.run();
        return last;
    };
    const Cycle one = runStream(1);
    const Cycle four = runStream(4);
    EXPECT_NEAR(static_cast<double>(one) / four, 4.0, 0.8);
}

TEST_F(DramTest, WritesAreDrainedEventually)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    int completed = 0;
    for (int i = 0; i < 10; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.bytes = 64;
        req.isWrite = true;
        req.done = [&completed](Cycle) { ++completed; };
        dram.access(0, std::move(req));
    }
    eq.run();
    EXPECT_EQ(completed, 10);
}

TEST_F(DramTest, ReadsPrioritizedOverWritesUntilHighWatermark)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    // Enqueue a modest number of writes, then a read: the read should
    // complete before most writes (write queue below drain threshold).
    Cycle readDone = 0;
    std::vector<Cycle> writeDone;
    for (int i = 0; i < 8; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i + 1) * 8192 * 8;
        req.bytes = 64;
        req.isWrite = true;
        req.done = [&writeDone](Cycle when) { writeDone.push_back(when); };
        dram.access(0, std::move(req));
    }
    DramRequest rd;
    rd.addr = 0;
    rd.bytes = 64;
    rd.done = [&readDone](Cycle when) { readDone = when; };
    dram.access(0, std::move(rd));
    eq.run();
    int after = 0;
    for (Cycle w : writeDone)
        if (w > readDone)
            ++after;
    EXPECT_GE(after, 4); // most writes finish after the read
}

TEST_F(DramTest, BulkAccessMovesAllBytesAndFiresOnce)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    int fired = 0;
    dram.bulkAccess(0, 0, 4096, false, TrafficCat::Fill,
                    [&fired](Cycle) { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(dram.traffic().bytes(TrafficCat::Fill), 4096u);
}

TEST_F(DramTest, TagBytesSplitAccounting)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    DramRequest req;
    req.addr = 0;
    req.bytes = 96;
    req.tagBytes = 32;
    req.cat = TrafficCat::HitData;
    dram.access(0, std::move(req));
    eq.run();
    EXPECT_EQ(dram.traffic().bytes(TrafficCat::HitData), 64u);
    EXPECT_EQ(dram.traffic().bytes(TrafficCat::Tag), 32u);
    EXPECT_EQ(dram.traffic().totalBytes(), 96u);
}

TEST_F(DramTest, LatencyScaleSpeedsUpAccess)
{
    DramTiming fast;
    fast.latencyScale = 0.5;
    DramModel slow(eq, DramTiming{}, 1, "slow");
    const Cycle slowLat = readOnce(eq, slow, 0);
    eq.reset();
    DramModel quick(eq, fast, 1, "quick");
    const Cycle fastLat = readOnce(eq, quick, 0);
    EXPECT_LT(fastLat, slowLat);
}

TEST_F(DramTest, UtilizationTracksBusyFraction)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    Cycle last = 0;
    for (int i = 0; i < 64; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.bytes = 64;
        req.done = [&last](Cycle when) { last = std::max(last, when); };
        dram.access(0, std::move(req));
    }
    eq.run();
    const double util = dram.busUtilization(last);
    EXPECT_GT(util, 0.5);
    EXPECT_LE(util, 1.0);
}

TEST_F(DramTest, ZeroLoadLatencyHelperMatchesModel)
{
    DramModel dram(eq, DramTiming{}, 1, "d");
    // Warm the row, then measure a hit.
    readOnce(eq, dram, 0);
    const Cycle before = eq.now();
    const Cycle hit = readOnce(eq, dram, 64) - before;
    EXPECT_EQ(hit, dram.zeroLoadLatency(64));
}

struct BurstParam
{
    std::uint32_t bytes;
};

class DramBurstTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(DramBurstTest, TransferTimeScalesWithSize)
{
    EventQueue eq;
    DramModel dram(eq, DramTiming{}, 1, "d");
    const DramTiming t;
    // Warm the row so only tCAS + transfer remain.
    Cycle done = 0;
    DramRequest warm;
    warm.addr = 0;
    warm.bytes = 32;
    warm.done = [&done](Cycle w) { done = w; };
    dram.access(0, std::move(warm));
    eq.run();
    const Cycle start = done;
    DramRequest req;
    req.addr = 64;
    req.bytes = GetParam();
    req.done = [&done](Cycle w) { done = w; };
    dram.access(0, std::move(req));
    eq.run();
    EXPECT_EQ(done - start,
              t.toCore(t.tCAS + GetParam() / t.busBytesPerCycle));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DramBurstTest,
                         ::testing::Values(32u, 64u, 96u, 128u, 256u));

// ------------------------------------------------------------------
// QoS channel scheduler (dram/qos_sched.hh)
// ------------------------------------------------------------------

/** Enqueue a read/write and collect its completion cycle. */
void
enqueue(DramModel &dram, Addr addr, bool isWrite, std::vector<Cycle> &done,
        TenantId tenant = kNoTenant)
{
    DramRequest req;
    req.addr = addr;
    req.bytes = 64;
    req.isWrite = isWrite;
    req.tenant = tenant;
    const std::size_t slot = done.size();
    done.push_back(0);
    req.done = [&done, slot](Cycle when) { done[slot] = when; };
    dram.access(0, std::move(req));
}

TEST_F(DramTest, QosDisabledKnobsAreByteIdentical)
{
    // Satellite guard: a config object full of QoS knobs changes
    // nothing while `enabled` stays false — every completion cycle
    // matches a stock channel's.
    const DramTiming t;
    auto runMix = [&](bool withKnobs) {
        eq.reset();
        DramModel dram(eq, DramTiming{}, 1, "d");
        if (withKnobs) {
            DramQosConfig qc;
            qc.enabled = false; // the only knob that matters
            qc.epochCycles = 64;
            qc.readAgeCap = 1;
            qc.writeAgeCap = 1;
            qc.window = 2;
            qc.writeDrainHigh = 2;
            qc.writeDrainLow = 1;
            dram.setQosConfig(qc);
        }
        std::vector<Cycle> done;
        for (int i = 0; i < 96; ++i) {
            const Addr addr =
                static_cast<Addr>(i % 7) * t.rowBytes + (i % 13) * 64;
            enqueue(dram, addr, i % 3 == 0, done,
                    static_cast<TenantId>(i % 2));
        }
        eq.run();
        return done;
    };
    EXPECT_EQ(runMix(false), runMix(true));
}

TEST_F(DramTest, QosWriteAgeBoundsParkedWrite)
{
    // A lone write parked behind a steady read stream: stock FR-FCFS
    // drains it only once the read queue empties; the QoS write-age
    // cap forces the drain once the write is over age.
    const DramTiming t;
    auto runParked = [&](bool qosOn) {
        eq.reset();
        DramModel dram(eq, DramTiming{}, 1, "d");
        if (qosOn) {
            DramQosConfig qc;
            qc.enabled = true;
            qc.writeAgeCap = 256;
            qc.readAgeCap = 0; // isolate the write bound
            dram.setQosConfig(qc);
        }
        std::vector<Cycle> writeDone, readDone;
        enqueue(dram, t.rowBytes, true, writeDone); // bank 1
        for (int i = 0; i < 200; ++i)
            enqueue(dram, static_cast<Addr>(i % 32) * 64, false, readDone);
        eq.run();
        const Cycle lastRead =
            *std::max_element(readDone.begin(), readDone.end());
        return std::make_pair(writeDone[0], lastRead);
    };
    const auto [stockWrite, stockLastRead] = runParked(false);
    const auto [qosWrite, qosLastRead] = runParked(true);
    EXPECT_GT(stockWrite, stockLastRead); // parked until reads drain
    EXPECT_LT(qosWrite, qosLastRead);     // age bound frees it
    EXPECT_LT(qosWrite, stockWrite);
}

TEST_F(DramTest, QosAgedReadBeatsRowHitStream)
{
    // A row-conflict read stuck behind a row-hit stream on the same
    // bank: stock FR-FCFS serves every hit first; the read-age bound
    // pops the aged front past them.
    const DramTiming t;
    const Addr rowB = static_cast<Addr>(t.rowBytes) * t.numBanks;
    auto runStream = [&](bool qosOn) {
        eq.reset();
        DramModel dram(eq, DramTiming{}, 1, "d");
        if (qosOn) {
            DramQosConfig qc;
            qc.enabled = true;
            qc.readAgeCap = 256;
            qc.writeAgeCap = 0;
            dram.setQosConfig(qc);
        }
        std::vector<Cycle> aDone, bDone;
        for (int i = 0; i < 4; ++i)
            enqueue(dram, static_cast<Addr>(i) * 64, false, aDone);
        enqueue(dram, rowB, false, bDone);
        for (int i = 4; i < 64; ++i)
            enqueue(dram, static_cast<Addr>(i % 32) * 64, false, aDone);
        eq.run();
        const Cycle lastA =
            *std::max_element(aDone.begin(), aDone.end());
        return std::make_pair(bDone[0], lastA);
    };
    const auto [stockB, stockLastA] = runStream(false);
    const auto [qosB, qosLastA] = runStream(true);
    EXPECT_GT(stockB, stockLastA); // starved behind every row hit
    EXPECT_LT(qosB, qosLastA);     // served once over age
    (void)qosLastA;
}

TEST_F(DramTest, QosCreditThrottleDefersFlooderUntilVictimDrains)
{
    // Tenant 1 floods 32 reads, tenant 0 enqueues 8 afterwards; with
    // 3:1 shares over a tiny epoch budget the flooder exhausts its
    // credit after 8 grants and the victim's whole batch overtakes
    // the remaining flood. Work conservation then lets the flooder
    // finish on its own.
    DramModel dram(eq, DramTiming{}, 1, "d");
    DramQosConfig qc;
    qc.enabled = true;
    qc.epochCycles = 1'000'000'000; // never refills during the test
    qc.bytesPerEpoch = 2048;        // flooder: 512 B = 8 reads
    qc.readAgeCap = 0;
    qc.writeAgeCap = 0;
    dram.setQosConfig(qc);
    std::array<double, kMaxTenants> shares{};
    shares[0] = 0.75;
    shares[1] = 0.25;
    dram.setQosShares(shares);

    std::vector<Cycle> flooderDone, victimDone;
    for (int i = 0; i < 32; ++i)
        enqueue(dram, static_cast<Addr>(i % 16) * 64, false, flooderDone,
                /*tenant=*/1);
    for (int i = 0; i < 8; ++i)
        enqueue(dram, static_cast<Addr>(16 + i) * 64, false, victimDone,
                /*tenant=*/0);
    eq.run();

    const Cycle victimLast =
        *std::max_element(victimDone.begin(), victimDone.end());
    const Cycle flooderLast =
        *std::max_element(flooderDone.begin(), flooderDone.end());
    EXPECT_LT(victimLast, flooderLast);
    // Every issued request is a grant; bypassing the flooder while
    // the victim drained recorded defers against the flooder only.
    EXPECT_EQ(dram.traffic().qosGrants(0), 8u);
    EXPECT_EQ(dram.traffic().qosGrants(1), 32u);
    EXPECT_GT(dram.traffic().qosDefers(1), 0u);
    EXPECT_EQ(dram.traffic().qosDefers(0), 0u);
}

TEST_F(DramTest, QosDrainWatermarkOverridesSplitTheDrain)
{
    // Hysteresis edges under the QoS watermark overrides: 24 queued
    // writes hit the overridden high watermark (24) immediately, the
    // drain runs down to the overridden low watermark (8) — exactly
    // 16 writes — and the remaining 8 wait until the reads empty.
    // Stock watermarks (48/16) never drain before the reads finish.
    const DramTiming t;
    auto runBatch = [&](bool qosOn) {
        eq.reset();
        DramModel dram(eq, DramTiming{}, 1, "d");
        if (qosOn) {
            DramQosConfig qc;
            qc.enabled = true;
            qc.readAgeCap = 0;
            qc.writeAgeCap = 0;
            qc.writeDrainHigh = 24;
            qc.writeDrainLow = 8;
            dram.setQosConfig(qc);
        }
        std::vector<Cycle> writeDone, readDone;
        for (int i = 0; i < 24; ++i)
            enqueue(dram, t.rowBytes + static_cast<Addr>(i) * 64, true,
                    writeDone);
        for (int i = 0; i < 40; ++i)
            enqueue(dram, static_cast<Addr>(i % 32) * 64, false, readDone);
        eq.run();
        const Cycle lastRead =
            *std::max_element(readDone.begin(), readDone.end());
        int before = 0;
        for (Cycle w : writeDone)
            if (w < lastRead)
                ++before;
        return before;
    };
    EXPECT_EQ(runBatch(false), 0);
    EXPECT_EQ(runBatch(true), 24 - 8);
}

} // namespace
} // namespace banshee
