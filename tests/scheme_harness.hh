/**
 * @file
 * Test harness that stands up the minimal surroundings a DRAM cache
 * scheme needs — event queue, in-/off-package DRAM, page table, OS
 * services — without cores or a cache hierarchy, so unit tests can
 * drive demandFetch/demandWriteback directly and inspect the exact
 * traffic each operation generates.
 */

#ifndef BANSHEE_TESTS_SCHEME_HARNESS_HH
#define BANSHEE_TESTS_SCHEME_HARNESS_HH

#include <memory>

#include "common/event_queue.hh"
#include "dram/dram_model.hh"
#include "mem/scheme.hh"
#include "os/os_services.hh"
#include "os/page_table.hh"

namespace banshee::testing {

class SchemeHarness
{
  public:
    explicit SchemeHarness(std::uint64_t cacheBytesPerMc = 8ull << 20,
                           std::uint32_t numMcs = 1)
    {
        inPkg = std::make_unique<DramModel>(eq, DramTiming{}, numMcs,
                                            "inPkg");
        offPkg = std::make_unique<DramModel>(eq, DramTiming{}, 1, "offPkg");
        os = std::make_unique<OsServices>(eq, pageTable);

        ctx.eq = &eq;
        ctx.inPkg = inPkg.get();
        ctx.offPkg = offPkg.get();
        ctx.mcId = 0;
        ctx.numMcs = numMcs;
        ctx.cacheBytesPerMc = cacheBytesPerMc;
        ctx.pageTable = &pageTable;
        ctx.os = os.get();
        ctx.seed = 12345;
    }

    /** Drain all pending DRAM events. */
    void drain() { eq.run(); }

    std::uint64_t
    inBytes(TrafficCat c) const
    {
        return inPkg->traffic().bytes(c);
    }

    std::uint64_t
    offBytes(TrafficCat c) const
    {
        return offPkg->traffic().bytes(c);
    }

    std::uint64_t inTotal() const { return inPkg->traffic().totalBytes(); }
    std::uint64_t offTotal() const { return offPkg->traffic().totalBytes(); }

    void
    resetTraffic()
    {
        inPkg->resetStats();
        offPkg->resetStats();
    }

    /**

     * Synchronous fetch: drives the scheme and drains the queue.
     * Returns the completion cycle of the demand data.
     */
    Cycle
    fetch(DramCacheScheme &scheme, LineAddr line,
          MappingInfo mapping = MappingInfo{})
    {
        Cycle doneAt = 0;
        scheme.demandFetch(line, mapping, 0,
                           [&doneAt](Cycle when) { doneAt = when; });
        drain();
        return doneAt;
    }

    EventQueue eq;
    PageTableManager pageTable;
    std::unique_ptr<DramModel> inPkg;
    std::unique_ptr<DramModel> offPkg;
    std::unique_ptr<OsServices> os;
    SchemeContext ctx;
};

} // namespace banshee::testing

#endif // BANSHEE_TESTS_SCHEME_HARNESS_HH
