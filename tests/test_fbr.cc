/**
 * @file
 * Unit tests for the FBR directory and the metadata-packing claim
 * (paper Fig. 3 / footnote 1 / Algorithm 1 primitives).
 */

#include <gtest/gtest.h>

#include "core/fbr_directory.hh"

namespace banshee {
namespace {

FbrParams
tiny()
{
    FbrParams p;
    p.numSets = 4;
    p.ways = 4;
    p.numCandidates = 5;
    p.counterBits = 5;
    return p;
}

TEST(FbrMetadata, PaperPackingFitsIn32Bytes)
{
    // 48-bit addresses, 2^16 sets, 4 KB pages -> 20-bit tags.
    // 4 cached entries (20+5+1+1) + 5 candidates (20+5) = 233 bits.
    EXPECT_EQ(metadataBitsPerSet(20, 5, 4, 5), 233u);
    EXPECT_LE(metadataBitsPerSet(20, 5, 4, 5), 256u);
}

TEST(FbrMetadata, EightWayNeedsMoreMetadata)
{
    // Doubling the ways doubles per-set metadata (Table 6 discussion).
    const std::uint32_t four = metadataBitsPerSet(20, 5, 4, 5);
    const std::uint32_t eight = metadataBitsPerSet(19, 5, 8, 5);
    EXPECT_GT(eight, four);
}

TEST(FbrDirectory, FindCachedAndCandidate)
{
    FbrDirectory d(tiny());
    EXPECT_FALSE(d.findCached(0, 42).has_value());
    d.cached(0, 2).tag = 42;
    d.cached(0, 2).valid = true;
    auto w = d.findCached(0, 42);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(*w, 2u);

    EXPECT_FALSE(d.findCandidate(0, 43).has_value());
    d.candidate(0, 3).tag = 43;
    d.candidate(0, 3).valid = true;
    auto s = d.findCandidate(0, 43);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, 3u);
}

TEST(FbrDirectory, MinCountWayPrefersInvalid)
{
    FbrDirectory d(tiny());
    for (std::uint32_t w = 0; w < 4; ++w) {
        d.cached(0, w).valid = true;
        d.cached(0, w).count = 10 + w;
    }
    d.cached(0, 3).valid = false; // invalid counts as zero
    EXPECT_EQ(d.minCountWay(0), 3u);
    d.cached(0, 3).valid = true;
    d.cached(0, 3).count = 1;
    EXPECT_EQ(d.minCountWay(0), 3u);
}

TEST(FbrDirectory, SaturatingIncrementSignalsOverflow)
{
    FbrDirectory d(tiny());
    d.cached(0, 0).valid = true;
    d.cached(0, 0).count = d.maxCount() - 1;
    EXPECT_TRUE(d.incrementCached(0, 0));  // reaches max
    EXPECT_TRUE(d.incrementCached(0, 0));  // stays at max
    EXPECT_EQ(d.cached(0, 0).count, d.maxCount());
}

TEST(FbrDirectory, HalveAllDividesEverything)
{
    FbrDirectory d(tiny());
    for (std::uint32_t w = 0; w < 4; ++w) {
        d.cached(0, w).valid = true;
        d.cached(0, w).count = 2 * w + 1;
    }
    for (std::uint32_t s = 0; s < 5; ++s)
        d.candidate(0, s).count = 9;
    d.halveAll(0);
    for (std::uint32_t w = 0; w < 4; ++w)
        EXPECT_EQ(d.cached(0, w).count, (2 * w + 1) / 2);
    for (std::uint32_t s = 0; s < 5; ++s)
        EXPECT_EQ(d.candidate(0, s).count, 4u);
    // Other sets untouched.
    EXPECT_EQ(d.cached(1, 0).count, 0u);
}

TEST(FbrDirectory, PromoteSwapsCandidateAndVictim)
{
    FbrDirectory d(tiny());
    d.cached(0, 1).tag = 100;
    d.cached(0, 1).count = 3;
    d.cached(0, 1).valid = true;
    d.cached(0, 1).dirty = true;
    d.candidate(0, 2).tag = 200;
    d.candidate(0, 2).count = 9;
    d.candidate(0, 2).valid = true;

    const auto evicted = d.promote(0, 1, 2);
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.tag, 100u);
    EXPECT_TRUE(evicted.dirty);

    // Way now holds the promoted page, clean, keeping its count.
    EXPECT_EQ(d.cached(0, 1).tag, 200u);
    EXPECT_EQ(d.cached(0, 1).count, 9u);
    EXPECT_FALSE(d.cached(0, 1).dirty);

    // Candidate slot now tracks the evicted page (paper: it must
    // out-score the threshold to come back, preventing ping-pong).
    EXPECT_TRUE(d.candidate(0, 2).valid);
    EXPECT_EQ(d.candidate(0, 2).tag, 100u);
    EXPECT_EQ(d.candidate(0, 2).count, 3u);
}

TEST(FbrDirectory, PromoteIntoEmptyWayInvalidatesSlot)
{
    FbrDirectory d(tiny());
    d.candidate(1, 0).tag = 7;
    d.candidate(1, 0).count = 5;
    d.candidate(1, 0).valid = true;
    const auto evicted = d.promote(1, 0, 0);
    EXPECT_FALSE(evicted.valid);
    EXPECT_FALSE(d.candidate(1, 0).valid);
    EXPECT_EQ(d.validCachedCount(), 1u);
}

class FbrCounterBitsTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FbrCounterBitsTest, MaxCountMatchesBits)
{
    FbrParams p = tiny();
    p.counterBits = GetParam();
    FbrDirectory d(p);
    EXPECT_EQ(d.maxCount(), (1u << GetParam()) - 1);
    d.cached(0, 0).valid = true;
    for (std::uint32_t i = 0; i < (1u << GetParam()) + 5; ++i)
        d.incrementCached(0, 0);
    EXPECT_EQ(d.cached(0, 0).count, d.maxCount());
}

INSTANTIATE_TEST_SUITE_P(Bits, FbrCounterBitsTest,
                         ::testing::Values(2u, 3u, 5u, 8u));

} // namespace
} // namespace banshee
