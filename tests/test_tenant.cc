/**
 * @file
 * Multi-tenant partitioning and QoS arbitration:
 *
 *  - TenantMap unit behavior: core handout (explicit counts and the
 *    equal split of the leftover), address-region ownership, runtime
 *    weight changes;
 *  - the QoS arbiter as a pure function: entitlement rebalance
 *    converges after a quota change, pressure lending never takes a
 *    donor below its entitlement floor (quota is a guarantee), and
 *    the power-cap composition sheds from the tenant furthest over
 *    quota;
 *  - end to end on the full machine: per-tenant statistics conserve
 *    the device totals, a cache-hostile streaming tenant cannot
 *    degrade a quota-protected resident tenant's miss rate beyond a
 *    small epsilon of its solo run (while the unpartitioned baseline
 *    degrades it badly), and the arbiter converges slice ownership
 *    to the configured weights after a quota change.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "tenant/qos_arbiter.hh"
#include "tenant/tenant_map.hh"
#include "workload/workloads.hh"

namespace banshee {
namespace {

// ------------------------------------------------------------------
// TenantMap
// ------------------------------------------------------------------

TEST(TenantMap, ExplicitCoreCountsAndEqualLeftoverSplit)
{
    // Tenant a pins 2 cores; b and c split the remaining 6 equally.
    TenantMap map({{"a", "mcf", 1.0, 2},
                   {"b", "omnetpp", 1.0, 0},
                   {"c", "milc", 1.0, 0}},
                  8);
    EXPECT_EQ(map.coreCount(0), 2u);
    EXPECT_EQ(map.coreCount(1), 3u);
    EXPECT_EQ(map.coreCount(2), 3u);

    // Contiguous handout, every core owned.
    for (CoreId c = 0; c < 8; ++c) {
        const TenantId t = map.tenantOfCore(c);
        ASSERT_NE(t, kNoTenant) << "core " << c;
        EXPECT_GE(c, map.firstCore(t));
        EXPECT_LT(c, map.firstCore(t) + map.coreCount(t));
    }
    EXPECT_EQ(map.tenantOfCore(99), kNoTenant);
}

TEST(TenantMap, AddressRegionsRecoverTheOwner)
{
    TenantMap map({{"a", "mcf", 1.0, 1}, {"b", "omnetpp", 1.0, 1}}, 2);
    map.addRegion(0x1000, 0x2000, 0);
    map.addRegion(0x8000, 0x9000, 1);

    EXPECT_EQ(map.tenantOfAddr(0x1000), 0);
    EXPECT_EQ(map.tenantOfAddr(0x1fff), 0);
    EXPECT_EQ(map.tenantOfAddr(0x8800), 1);
    EXPECT_EQ(map.tenantOfAddr(0x2000), kNoTenant); // limit is exclusive
    EXPECT_EQ(map.tenantOfAddr(0x7fff), kNoTenant);
}

TEST(TenantMap, WeightsNormalizeAndUpdate)
{
    TenantMap map({{"a", "mcf", 3.0, 1}, {"b", "omnetpp", 1.0, 1}}, 2);
    EXPECT_DOUBLE_EQ(map.share(0), 0.75);
    EXPECT_DOUBLE_EQ(map.share(1), 0.25);

    map.setWeight(0, 1.0);
    EXPECT_DOUBLE_EQ(map.share(0), 0.5);
    EXPECT_EQ(map.weights(), (std::vector<double>{1.0, 1.0}));
}

// ------------------------------------------------------------------
// QosArbiterPolicy (pure function)
// ------------------------------------------------------------------

ResizePolicyConfig
qosConfig()
{
    ResizePolicyConfig c;
    c.kind = ResizePolicyConfig::Kind::Qos;
    c.minEpochAccesses = 100;
    return c;
}

/** Apply reassignment decisions until the arbiter goes quiet. */
int
settle(const QosArbiterPolicy &qos, std::vector<std::uint32_t> &owned,
       const std::vector<TenantEpochStats> &stats,
       std::uint32_t activeSlices, std::uint32_t totalSlices)
{
    int steps = 0;
    for (; steps < 32; ++steps) {
        const QosDecision d = qos.decide(stats, ResizeEpochStats{}, owned,
                                         activeSlices, totalSlices);
        if (d.empty())
            break;
        EXPECT_TRUE(d.reassign());
        --owned[d.donor];
        ++owned[d.receiver];
    }
    return steps;
}

TEST(QosArbiter, RebalanceConvergesAfterAQuotaChange)
{
    QosArbiterPolicy qos(qosConfig(), {3.0, 1.0});
    // Layout built for weights 3:1...
    std::vector<std::uint32_t> owned = {6, 2};
    std::vector<TenantEpochStats> stats(2);

    // ...no drift while the weights still match.
    EXPECT_TRUE(qos.decide(stats, ResizeEpochStats{}, owned, 8, 8).empty());

    // Quota change to 1:1: one slice per epoch until 4/4.
    qos.setWeights({1.0, 1.0});
    const int steps = settle(qos, owned, stats, 8, 8);
    EXPECT_EQ(steps, 2);
    EXPECT_EQ(owned, (std::vector<std::uint32_t>{4, 4}));
}

TEST(QosArbiter, LendingStopsAtTheDonorsEntitlementFloor)
{
    QosArbiterPolicy qos(qosConfig(), {1.0, 1.0});
    std::vector<std::uint32_t> owned = {4, 4};

    // Tenant 1 thrashes, tenant 0 is demonstrably cold.
    std::vector<TenantEpochStats> stats(2);
    stats[0].accesses = 10000;
    stats[0].misses = 10;
    stats[1].accesses = 10000;
    stats[1].misses = 6000;

    // One slice may be lent beyond entitlement...
    const int steps = settle(qos, owned, stats, 8, 8);
    EXPECT_EQ(steps, 1);
    EXPECT_EQ(owned, (std::vector<std::uint32_t>{3, 5}));

    // ...but the donor never drops further below its share, no
    // matter how hard the borrower keeps thrashing: quota holds.
    EXPECT_TRUE(qos.decide(stats, ResizeEpochStats{}, owned, 8, 8).empty());
}

TEST(QosArbiter, PowerCapShedsFromTheTenantOverQuota)
{
    ResizePolicyConfig c = qosConfig();
    c.powerCapWatts = 1.0;
    QosArbiterPolicy qos(c, {1.0, 1.0});

    ResizeEpochStats total;
    total.avgPowerWatts = 1.5; // over budget
    total.bgRefreshWatts = 0.8;

    // Tenant 0 sits two slices over its entitlement: it donates.
    std::vector<TenantEpochStats> stats(2);
    const QosDecision d =
        qos.decide(stats, total, {5, 3}, 8, 8);
    ASSERT_TRUE(d.targetActive.has_value());
    EXPECT_EQ(*d.targetActive, 7u);
    EXPECT_EQ(d.donor, 0);

    // Under budget with margin: the returning slice goes to the
    // larger deficit.
    total.avgPowerWatts = 0.2;
    const QosDecision g = qos.decide(stats, total, {2, 4}, 6, 8);
    ASSERT_TRUE(g.targetActive.has_value());
    EXPECT_EQ(*g.targetActive, 7u);
    EXPECT_EQ(g.receiver, 0);
}

// ------------------------------------------------------------------
// End to end on the full machine
// ------------------------------------------------------------------

/**
 * Tenant-scale test system: a small DRAM cache (8 slices of 512 KB)
 * over an LLC shrunk to 512 KB so the resident tenant's working set
 * (4 cores x 320 KB) lives in the DRAM cache, not the SRAM; the
 * churn tenant streams a footprint larger than the whole device.
 */
SystemConfig
tenantBase()
{
    SystemConfig c = SystemConfig::testDefault();
    c.numCores = 8;
    c.mem.inPkgCapacity = 4ull << 20;
    c.hierarchy.l3Size = 512 * 1024;
    c.autoWarmup = false;
    c.warmupInstrPerCore = 200'000;
    c.measureInstrPerCore = 200'000;
    return c;
}

std::vector<TenantConfig>
residentPlusChurn()
{
    return {{"resident", "qos_resident", 1.0, 4},
            {"churn", "qos_churn", 1.0, 4}};
}

TEST(TenantEndToEnd, PerTenantStatsConserveTheTotals)
{
    SystemConfig c = tenantBase();
    c.withTenants(residentPlusChurn());
    System sys(c);
    const RunResult r = sys.run();

    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.tenants[0].cores, 4u);
    EXPECT_EQ(r.tenants[1].cores, 4u);
    EXPECT_GT(r.tenants[0].instructions, 0u);
    EXPECT_GT(r.tenants[1].instructions, 0u);
    EXPECT_EQ(r.tenants[0].instructions + r.tenants[1].instructions,
              r.instructions);

    // Demand accesses and misses: tenant buckets plus the untagged
    // bucket partition the totals.
    std::uint64_t acc = 0;
    std::uint64_t mis = 0;
    for (const TenantRunStats &t : r.tenants) {
        acc += t.dramCacheAccesses;
        mis += t.dramCacheMisses;
    }
    MemSystem &mem = sys.memSystem();
    for (std::uint32_t mc = 0; mc < mem.numMcs(); ++mc) {
        acc += mem.scheme(mc).tenantAccesses(kNoTenant);
        mis += mem.scheme(mc).tenantMisses(kNoTenant);
    }
    EXPECT_EQ(acc, r.dramCacheAccesses);
    EXPECT_EQ(mis, r.dramCacheMisses);

    // Device bytes: the per-tenant split (plus untagged) conserves
    // the per-category totals.
    std::uint64_t inPkgTenantBytes =
        mem.inPkg()->traffic().tenantBytes(kNoTenant);
    std::uint64_t inPkgCatBytes = 0;
    for (const TenantRunStats &t : r.tenants)
        inPkgTenantBytes += t.inPkgBytes;
    for (std::size_t cat = 0; cat < kNumTrafficCats; ++cat)
        inPkgCatBytes += r.inPkgBytes[cat];
    EXPECT_EQ(inPkgTenantBytes, inPkgCatBytes);

    // An equal-weight partition of 8 slices: 4 each.
    EXPECT_EQ(r.tenants[0].slicesOwned, 4u);
    EXPECT_EQ(r.tenants[1].slicesOwned, 4u);
}

TEST(TenantEndToEnd, QuotaIsolatesTheResidentTenantFromChurn)
{
    // The resident tenant pays for 3/4 of the cache (6 of 8 slices),
    // comfortably above its working set; the churn tenant streams a
    // footprint that overflows the whole device.
    const std::vector<TenantConfig> mix = {
        {"resident", "qos_resident", 3.0, 4},
        {"churn", "qos_churn", 1.0, 4}};

    // Solo: the resident tenant's cores alone on the machine.
    SystemConfig solo = tenantBase();
    solo.numCores = 4;
    solo.workload = "qos_resident";
    const RunResult soloR = System(solo).run();

    // Partitioned: churn is confined to its own 2 slices.
    SystemConfig part = tenantBase();
    part.withTenants(mix);
    const RunResult partR = System(part).run();

    // Unpartitioned baseline: same co-location, shared slices.
    SystemConfig unpart = tenantBase();
    unpart.withTenants(mix, /*partition=*/false);
    const RunResult unpartR = System(unpart).run();

    ASSERT_EQ(partR.tenants.size(), 2u);
    ASSERT_EQ(unpartR.tenants.size(), 2u);
    const double soloMiss = soloR.missRate;
    const double partMiss = partR.tenants[0].missRate;
    const double unpartMiss = unpartR.tenants[0].missRate;

    // With quotas the resident tenant's miss rate stays within a
    // small epsilon of its solo run; without them the churn tenant
    // evicts it and the miss rate climbs several-fold.
    EXPECT_LE(partMiss, soloMiss + 0.03)
        << "solo " << soloMiss << " partitioned " << partMiss;
    EXPECT_GE(unpartMiss, partMiss + 0.02)
        << "partitioned " << partMiss << " unpartitioned " << unpartMiss;
    EXPECT_GE(unpartMiss, 3.0 * partMiss)
        << "partitioned " << partMiss << " unpartitioned " << unpartMiss;
}

TEST(TenantEndToEnd, ArbiterConvergesOwnershipAfterAQuotaChange)
{
    SystemConfig c = tenantBase();
    c.measureInstrPerCore = 300'000;
    c.withTenants(residentPlusChurn());
    c.withQosArbiter();
    // The layout was apportioned for an old 3:1 quota; the configured
    // weights are 1:1 — the arbiter must move ownership to 4/4, one
    // slice-drain at a time.
    c.resize.tenantWeights = {3.0, 1.0};

    System sys(c);
    const RunResult r = sys.run();

    // Two rebalance drains reach the 4/4 entitlement; the thrashing
    // churn tenant may then borrow its one-slice lending allowance
    // (and no more — the arbiter must not flap the loan back and
    // forth through repeated drains).
    EXPECT_GE(r.qosReassigns, 2u);
    EXPECT_LE(r.qosReassigns, 5u);
    EXPECT_GE(r.tenants[0].slicesOwned, 3u);
    EXPECT_LE(r.tenants[0].slicesOwned, 4u);
    EXPECT_EQ(r.tenants[0].slicesOwned + r.tenants[1].slicesOwned, 8u);
    sys.resizeController()->verifyResidencyConsistent();
}

} // namespace
} // namespace banshee
