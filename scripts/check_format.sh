#!/usr/bin/env bash
# Lightweight formatting gate for CI and pre-commit use.
#
# Always checks for tabs and trailing whitespace in the C++ sources.
# When clang-format is available, additionally reports style drift
# (informational; the tree carries no .clang-format yet).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

files=$(find src tests bench examples \
            -name '*.cc' -o -name '*.hh' -o -name '*.cpp' | sort)

status=0

bad_tabs=$(grep -l -P '\t' $files 2>/dev/null || true)
if [ -n "$bad_tabs" ]; then
    echo "error: tab characters found in:"
    echo "$bad_tabs" | sed 's/^/  /'
    status=1
fi

bad_ws=$(grep -l -E ' +$' $files 2>/dev/null || true)
if [ -n "$bad_ws" ]; then
    echo "error: trailing whitespace found in:"
    echo "$bad_ws" | sed 's/^/  /'
    status=1
fi

if command -v clang-format >/dev/null 2>&1; then
    drift=0
    for f in $files; do
        if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
            drift=$((drift + 1))
        fi
    done
    echo "info: clang-format reports drift in $drift file(s)"
else
    echo "info: clang-format not installed; skipped style check"
fi

if [ "$status" -eq 0 ]; then
    echo "format check passed"
fi
exit "$status"
