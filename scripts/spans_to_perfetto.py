#!/usr/bin/env python3
"""Validate, summarize or merge Banshee span traces (span_trace.cc).

The simulator already writes Chrome trace-event JSON — a top-level
array of event objects — so the files load directly in Perfetto
(ui.perfetto.dev) or chrome://tracing. This script is the tooling
around that:

    spans_to_perfetto.py trace.json            # --check + --summary
    spans_to_perfetto.py trace.json --check    # well-formedness gate
    spans_to_perfetto.py trace.json --summary  # queue-vs-service table
    spans_to_perfetto.py a.json b.json --merge out.json
                                               # side-by-side compare

--check validates what Perfetto's importer assumes and what the
simulator promises:
  * the file is a JSON array of objects with name/ph/pid/tid;
  * duration events nest: per (pid, tid) track, every B has a
    matching same-name E and the stack closes empty (events are
    stable-sorted by ts first — the writer emits in completion
    order, which is not time order);
  * async events pair: per (pid, cat, id), b and e counts match and
    no e precedes its b;
  * complete (X) events carry dur >= 0, instants carry scope "t".

--summary reconstructs the causal story: per-channel queueing vs
service time, per-page residency, eviction causes, fetch latency —
split by tenant when tenant ids are present.

Stdlib only (CI runs it next to the bench binaries).
"""

import argparse
import json
import signal
import sys
from collections import defaultdict


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(events, list):
        fail(f"{path}: top level is not a JSON array")
    return events


def check(path, events):
    """Validate one trace; returns a list of problem strings."""
    problems = []

    def bad(i, ev, why):
        problems.append(f"{path}: event {i} {ev.get('name')!r}: {why}")

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"{path}: event {i} is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                bad(i, ev, f"missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("B", "E", "X", "i", "b", "e", "M"):
            bad(i, ev, f"unknown phase {ph!r}")
            continue
        if ph != "M" and "ts" not in ev:
            bad(i, ev, "missing 'ts'")
        if ph == "X" and ev.get("dur", -1) < 0:
            bad(i, ev, "complete event without dur >= 0")
        if ph == "i" and ev.get("s") != "t":
            bad(i, ev, "instant without thread scope")
        if ph in ("b", "e") and ("cat" not in ev or "id" not in ev):
            bad(i, ev, "async event without cat/id")
    if problems:
        return problems

    # Duration nesting per (pid, tid). The writer emits events when
    # they complete, so sibling spans can appear out of time order;
    # stable-sort by ts (E before B at equal ts so zero-length spans
    # close before their successor opens) exactly as importers do.
    order = {"E": 0, "B": 1}
    tracks = defaultdict(list)
    for i, ev in enumerate(events):
        if ev["ph"] in ("B", "E"):
            tracks[(ev["pid"], ev["tid"])].append(ev)
    for (pid, tid), track in tracks.items():
        track.sort(key=lambda ev: (ev["ts"], order[ev["ph"]]))
        stack = []
        for ev in track:
            if ev["ph"] == "B":
                stack.append(ev["name"])
            elif not stack:
                problems.append(
                    f"{path}: track pid={pid} tid={tid}: E "
                    f"{ev['name']!r} at ts={ev['ts']} with empty stack")
            elif stack[-1] != ev["name"]:
                problems.append(
                    f"{path}: track pid={pid} tid={tid}: E "
                    f"{ev['name']!r} at ts={ev['ts']} crosses open "
                    f"B {stack[-1]!r}")
                stack.pop()
            else:
                stack.pop()
        for name in stack:
            problems.append(
                f"{path}: track pid={pid} tid={tid}: B {name!r} "
                f"never closed")

    # Async pairing per (pid, cat, id): overlap is legal, imbalance
    # and e-before-b are not.
    pairs = defaultdict(lambda: [0, 0])  # opened, closed
    for ev in events:
        if ev["ph"] not in ("b", "e"):
            continue
        key = (ev["pid"], ev["cat"], ev["id"])
        if ev["ph"] == "b":
            pairs[key][0] += 1
        else:
            pairs[key][1] += 1
            if pairs[key][1] > pairs[key][0]:
                problems.append(
                    f"{path}: async {key}: 'e' before its 'b'")
    for key, (opened, closed) in pairs.items():
        if opened != closed:
            problems.append(
                f"{path}: async {key}: {opened} 'b' vs {closed} 'e'")
    return problems


def thread_names(events):
    names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[(ev["pid"], ev["tid"])] = ev["args"]["name"]
    return names


def summarize(path, events):
    names = thread_names(events)
    print(f"== {path} ==")
    info = next((e for e in events if e.get("name") == "run_info"), None)
    if info:
        args = info.get("args", {})
        print("  run: " + ", ".join(f"{k}={v}" for k, v in args.items()))
    tenant_names = {
        e["args"]["id"]: e["args"]["name"]
        for e in events
        if e.get("name") == "tenant" and e.get("ph") == "i"
        and e.get("pid") == 3 and e.get("tid") == 0
    }

    # Channel tracks (pid 2): queue/service async pairs share one id
    # per request; only the queue 'b' carries the request args
    # (tenant, rw, cat), so remember the tenant per id.
    opens = {}
    req_tenant = {}
    chan = defaultdict(lambda: defaultdict(lambda: [0, 0.0, 0.0]))
    for ev in events:
        if ev.get("pid") != 2 or ev["ph"] not in ("b", "e"):
            continue
        key = (ev["cat"], ev["id"], ev["name"])
        if ev["ph"] == "b":
            opens[key] = ev
            if ev["name"] == "queue":
                req_tenant[(ev["cat"], ev["id"])] = \
                    ev.get("args", {}).get("tenant", 255)
        else:
            b = opens.pop(key, None)
            if b is None:
                continue
            dur = ev["ts"] - b["ts"]
            tenant = req_tenant.get((ev["cat"], ev["id"]), 255)
            slot = chan[ev["cat"]][tenant_names.get(tenant, "-")]
            if ev["name"] == "queue":
                slot[0] += 1
                slot[1] += dur
            else:
                slot[2] += dur
                req_tenant.pop((ev["cat"], ev["id"]), None)
    if chan:
        print(f"  {'channel':24} {'tenant':12} {'reqs':>8} "
              f"{'avg queue us':>14} {'avg service us':>14}")
        for track in sorted(chan):
            for tname, (n, q, s) in sorted(chan[track].items()):
                if n == 0:
                    continue
                print(f"  {track:24} {tname:12} {n:8} "
                      f"{q / n:14.3f} {s / n:14.3f}")

    # Page residency (pid 1): B/E "resident" spans per page track.
    res_open = {}
    res_total = defaultdict(float)
    res_count = defaultdict(int)
    causes = defaultdict(int)
    for ev in events:
        if ev.get("pid") != 1 or ev.get("name") != "resident":
            continue
        tid = ev["tid"]
        if ev["ph"] == "B":
            res_open[tid] = ev["ts"]
        elif ev["ph"] == "E" and tid in res_open:
            res_total[tid] += ev["ts"] - res_open.pop(tid)
            res_count[tid] += 1
            causes[ev.get("args", {}).get("cause", "?")] += 1
    if res_count:
        pages = len(res_count)
        spans = sum(res_count.values())
        total = sum(res_total.values())
        print(f"  residency: {spans} spans over {pages} sampled pages, "
              f"avg {total / spans:.1f} us")
        print("  eviction causes: " + ", ".join(
            f"{k}={v}" for k, v in sorted(causes.items())))

    # Fetch latency (pid 1 async "fetch").
    fetch_open = {}
    fetch_n, fetch_us = 0, 0.0
    for ev in events:
        if ev.get("pid") != 1 or ev.get("name") != "fetch":
            continue
        key = (ev["cat"], ev["id"])
        if ev["ph"] == "b":
            fetch_open[key] = ev["ts"]
        elif ev["ph"] == "e" and key in fetch_open:
            fetch_us += ev["ts"] - fetch_open.pop(key)
            fetch_n += 1
    if fetch_n:
        print(f"  fetches: {fetch_n} sampled, "
              f"avg {fetch_us / fetch_n:.3f} us")
    _ = names  # track names only matter for --merge output


def merge(paths, out):
    """Concatenate traces side by side: trace k's pids shift by 10*k
    so each file's pages/channels/control land in their own process
    group, labelled with the source run."""
    merged = []
    for k, path in enumerate(paths):
        events = load(path)
        label = None
        for ev in events:
            if ev.get("name") == "run_info":
                label = ev.get("args", {}).get("label") or None
                break
        prefix = label or path
        for ev in events:
            ev = dict(ev)
            ev["pid"] = ev["pid"] + 10 * k
            if ev.get("ph") == "M" and ev.get("name") == "process_name":
                ev = dict(ev, args={
                    "name": f"{prefix}: {ev['args']['name']}"})
            merged.append(ev)
    with open(out, "w") as f:
        json.dump(merged, f)
    print(f"merged {len(paths)} traces ({len(merged)} events) -> {out}")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("traces", nargs="+", help="*.trace.json files")
    ap.add_argument("--check", action="store_true",
                    help="validate only (exit 1 on problems)")
    ap.add_argument("--summary", action="store_true",
                    help="print per-channel / per-tenant tables only")
    ap.add_argument("--merge", metavar="OUT",
                    help="write one merged Perfetto file")
    args = ap.parse_args()

    if args.merge:
        merge(args.traces, args.merge)
        return

    do_check = args.check or not args.summary
    do_summary = args.summary or not args.check
    bad = 0
    for path in args.traces:
        events = load(path)
        if do_check:
            problems = check(path, events)
            for p in problems[:20]:
                print(p, file=sys.stderr)
            if len(problems) > 20:
                print(f"... {len(problems) - 20} more", file=sys.stderr)
            if problems:
                bad += 1
            else:
                print(f"{path}: OK ({len(events)} events)")
        if do_summary and not bad:
            summarize(path, events)
    sys.exit(1 if bad else 0)


if __name__ == "__main__":
    # Die quietly when the output is piped into head/less and closed.
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    main()
