#!/usr/bin/env python3
"""Compare a fresh bench --json run against a committed baseline.

The perf-regression gate: CI reruns a bench with --json (and
--host-perf) and diffs it against bench/baselines/<name>.json. Two
classes of metric:

  * Deterministic simulation results (ipc, missRate, cycles, traffic
    bytes, energy per instruction): these are exactly reproducible,
    so any drift beyond --tolerance (default 15%) fails. Drift here
    means a behavioral change — refresh the baseline deliberately
    (rerun the bench and commit the new file) when the change is
    intended.
  * Host throughput (eventsPerSec, per-result and sweep-wide):
    compared only when both files carry it, against the looser
    --perf-tolerance (default 50% — shared CI runners are noisy);
    only slowdowns fail, speedups just print.

Labels present in the baseline but missing from the fresh run are
errors (a bench silently dropping an experiment is a regression);
extra fresh labels only warn, so adding experiments does not require
touching the gate.

Usage:
    bench_compare.py baseline.json fresh.json
    bench_compare.py baseline.json fresh.json --tolerance 0.10
    bench_compare.py baseline.json fresh.json --no-host-perf

Stdlib only (CI runs it next to the bench binaries).
"""

import argparse
import json
import sys

# Deterministic per-result scalars worth gating. Traffic and energy
# summarize as sums so one noisy category cannot fail the gate alone.
SCALARS = ["ipc", "missRate", "cycles", "energyPerInstrPJ"]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: {path}: {e}")
    if "results" not in doc:
        sys.exit(f"error: {path}: no 'results' array")
    return doc


def traffic_sum(result, key):
    cats = result.get(key, {})
    return sum(cats.values()) if isinstance(cats, dict) else 0


def rel_drift(base, fresh):
    if base == 0:
        return 0.0 if fresh == 0 else float("inf")
    return (fresh - base) / base


class Gate:
    def __init__(self):
        self.failures = []
        self.checked = 0

    def check(self, label, metric, base, fresh, tol, lower_is_bad=False):
        """Two-sided by default; lower_is_bad gates only decreases
        (host throughput: a slowdown fails, a speedup just prints)."""
        self.checked += 1
        drift = rel_drift(base, fresh)
        bad = drift < -tol if lower_is_bad else abs(drift) > tol
        line = (f"  {label:40} {metric:20} {base:>14.6g} -> "
                f"{fresh:>14.6g}  {100 * drift:+7.2f}%")
        if bad:
            self.failures.append(line)
            print(line + "  FAIL")
        elif abs(drift) > tol / 2:
            print(line)  # worth eyeballing, not worth failing


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="deterministic-metric gate (default 0.15)")
    ap.add_argument("--perf-tolerance", type=float, default=0.50,
                    help="host events/sec slowdown gate (default 0.50)")
    ap.add_argument("--no-host-perf", action="store_true",
                    help="skip host-throughput comparison entirely")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    fresh_doc = load(args.fresh)
    if base_doc.get("bench") != fresh_doc.get("bench"):
        sys.exit(f"error: bench mismatch: {base_doc.get('bench')!r} vs "
                 f"{fresh_doc.get('bench')!r}")

    base_by = {r["label"]: r for r in base_doc["results"]}
    fresh_by = {r["label"]: r for r in fresh_doc["results"]}

    missing = sorted(set(base_by) - set(fresh_by))
    if missing:
        sys.exit(f"error: fresh run is missing baseline labels: "
                 f"{', '.join(missing)}")
    for label in sorted(set(fresh_by) - set(base_by)):
        print(f"warning: label {label!r} not in baseline (unchecked)")

    gate = Gate()
    for label, base in base_by.items():
        fresh = fresh_by[label]
        for metric in SCALARS:
            if metric in base and metric in fresh:
                gate.check(label, metric, base[metric], fresh[metric],
                           args.tolerance)
        for key in ("inPkgBytes", "offPkgBytes"):
            gate.check(label, key + ".sum", traffic_sum(base, key),
                       traffic_sum(fresh, key), args.tolerance)
        if (not args.no_host_perf and "hostPerf" in base
                and "hostPerf" in fresh):
            gate.check(label, "hostPerf.eventsPerSec",
                       base["hostPerf"].get("eventsPerSec", 0),
                       fresh["hostPerf"].get("eventsPerSec", 0),
                       args.perf_tolerance, lower_is_bad=True)

    if (not args.no_host_perf and "sweepHostPerf" in base_doc
            and "sweepHostPerf" in fresh_doc):
        gate.check("<sweep>", "eventsPerSec",
                   base_doc["sweepHostPerf"].get("eventsPerSec", 0),
                   fresh_doc["sweepHostPerf"].get("eventsPerSec", 0),
                   args.perf_tolerance, lower_is_bad=True)

    if gate.failures:
        print(f"\n{len(gate.failures)} of {gate.checked} checks "
              f"regressed beyond tolerance:")
        for line in gate.failures:
            print(line)
        sys.exit(1)
    print(f"OK: {gate.checked} checks within tolerance "
          f"({len(base_by)} labels)")


if __name__ == "__main__":
    main()
