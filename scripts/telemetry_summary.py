#!/usr/bin/env python3
"""Render (or validate) a Banshee telemetry JSONL trace.

The simulator writes one JSON object per line (see src/telemetry/):
every line carries "run", "cycle" and "event". "epoch" events embed
cumulative metric values and cumulative histogram bucket states; this
script turns adjacent epochs into per-epoch rates and per-epoch
percentiles, and prints one timeline table per run:

    epoch  cycle  missRate  W  activeSlices  <tenant>.slices  <tenant>.p95qlat ...

Percentile cells ending in "!" are saturated: the sample landed in
the histogram's open-ended top bucket, so the printed value is a
lower bound (mirrors the "saturated" flag in the bench JSON).

Usage:
    telemetry_summary.py trace.jsonl              # timelines + events
    telemetry_summary.py trace.jsonl --run solo   # one run only
    telemetry_summary.py trace.jsonl --check      # schema validation
    telemetry_summary.py trace.jsonl --csv        # machine-readable

Stdlib only (CI runs it next to the bench binaries).
"""

import argparse
import json
import signal
import sys
from collections import OrderedDict


def bucket_high(i):
    """Upper bound (inclusive-exclusive) of log2 bucket i; bucket 0
    holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i)."""
    return 0 if i == 0 else (1 << i) - 1


def delta_percentile(prev, cur, q):
    """Percentile of the values recorded *between* two cumulative
    histogram snapshots (epoch-local distribution), rendered as a
    string. A trailing "!" marks a saturated read: the percentile
    landed in the histogram's top (open-ended) bucket, so the true
    value is only bounded below."""
    prev_b = (prev or {}).get("buckets", [])
    cur_b = cur.get("buckets", [])
    deltas = []
    for i, c in enumerate(cur_b):
        p = prev_b[i] if i < len(prev_b) else 0
        deltas.append(c - p)
    total = sum(deltas)
    if total <= 0:
        return None
    target = max(1, int(q * total + 0.9999999))
    seen = 0
    for i, d in enumerate(deltas):
        seen += d
        if seen >= target:
            val = min(bucket_high(i), cur.get("max", bucket_high(i)))
            mark = "!" if i == len(cur_b) - 1 else ""
            return f"{val}{mark}"
    return f"{bucket_high(len(deltas) - 1)}!"


def load(path):
    """Parse the trace into {run: [records]}, preserving line order."""
    runs = OrderedDict()
    errors = []
    with open(path) as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {n}: not JSON ({e})")
                continue
            for key in ("run", "cycle", "event"):
                if key not in rec:
                    errors.append(f"line {n}: missing '{key}'")
                    break
            else:
                runs.setdefault(rec["run"], []).append(rec)
    return runs, errors


def check(runs, errors):
    """Schema validation (--check): exit non-zero on any problem."""
    for run, recs in runs.items():
        epochs = [r for r in recs if r["event"] == "epoch"]
        for r in epochs:
            for key in ("epoch", "metrics", "hists"):
                if key not in r:
                    errors.append(f"run '{run}': epoch event missing "
                                  f"'{key}'")
            for name, h in r.get("hists", {}).items():
                if not all(k in h for k in ("count", "sum", "max",
                                            "buckets")):
                    errors.append(f"run '{run}': histogram '{name}' "
                                  "missing count/sum/max/buckets")
        cycles = [r["cycle"] for r in epochs]
        if cycles != sorted(cycles):
            errors.append(f"run '{run}': epoch cycles not monotonic")
        if not any(r["event"] == "run_start" for r in recs):
            errors.append(f"run '{run}': no run_start event")
    if errors:
        for e in errors:
            print(f"[check] {e}", file=sys.stderr)
        return 1
    n_epochs = sum(1 for recs in runs.values()
                   for r in recs if r["event"] == "epoch")
    print(f"[check] OK: {len(runs)} run(s), {n_epochs} epoch sample(s)")
    return 0


def tenant_names(recs):
    """Tenant names in id order, from the run's 'tenant' events."""
    tenants = sorted((r["id"], r["name"]) for r in recs
                     if r["event"] == "tenant")
    return [name for _, name in tenants]


def timeline(run, recs, csv):
    """Per-epoch rate table for one run."""
    start = next((r for r in recs if r["event"] == "run_start"), {})
    freq_hz = start.get("coreFreqHz", 0.0)
    epochs = [r for r in recs if r["event"] == "epoch"]
    if len(epochs) < 2:
        print(f"== {run}: fewer than two epoch samples, no timeline")
        return

    tenants = tenant_names(recs)
    cols = ["epoch", "cycle", "missRate", "W", "activeSlices"]
    for t in tenants:
        cols += [f"{t}.slices", f"{t}.p95qlat"]

    rows = []
    for prev, cur in zip(epochs, epochs[1:]):
        pm, cm = prev["metrics"], cur["metrics"]

        def d(name):
            return cm.get(name, 0.0) - pm.get(name, 0.0)

        acc = d("dramAccesses")
        miss_rate = d("dramMisses") / acc if acc > 0 else 0.0
        dcycles = cur["cycle"] - prev["cycle"]
        watts = ""
        if freq_hz > 0 and dcycles > 0 and "inPkgEnergyPJ" in cm:
            ns = dcycles * 1e9 / freq_hz
            watts = f"{d('inPkgEnergyPJ') / ns * 1e-3:.3f}"
        row = [str(cur["epoch"]), str(cur["cycle"]),
               f"{miss_rate:.4f}", watts,
               f"{cm['activeSlices']:.0f}" if "activeSlices" in cm
               else ""]
        for t in tenants:
            slices = cm.get(f"tenant.{t}.slices")
            row.append("" if slices is None else f"{slices:.0f}")
            p95 = delta_percentile(
                prev["hists"].get(f"tenant.{t}.queueLat"),
                cur["hists"].get(f"tenant.{t}.queueLat", {}), 0.95)
            row.append("" if p95 is None else p95)
        rows.append(row)

    if csv:
        print(",".join(["run"] + cols))
        for row in rows:
            print(",".join([run] + row))
        return

    print(f"== {run}")
    widths = [max(len(c), max(len(r[i]) for r in rows))
              for i, c in enumerate(cols)]
    print("  " + "  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    for row in rows:
        print("  " + "  ".join(v.ljust(w) for v, w in zip(row, widths)))

    decisions = [r for r in recs
                 if r["event"] not in ("epoch", "run_start", "tenant",
                                       "measure_start", "profile")]
    if decisions:
        print("  events:")
        for r in decisions:
            extra = {k: v for k, v in r.items()
                     if k not in ("run", "cycle", "event")}
            print(f"    cycle {r['cycle']:>12}  {r['event']:<16} "
                  + " ".join(f"{k}={v}" for k, v in extra.items()))
    profile = next((r for r in recs if r["event"] == "profile"), None)
    if profile and profile.get("timers"):
        print("  host-time profile:")
        for name, t in sorted(profile["timers"].items()):
            ms = t["ns"] / 1e6
            print(f"    {name:<20} {ms:>10.1f} ms  "
                  f"{t['calls']:>10} calls")
    print()


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="telemetry JSONL file")
    ap.add_argument("--check", action="store_true",
                    help="validate the schema and exit")
    ap.add_argument("--run", help="only render runs whose label "
                                  "contains this substring")
    ap.add_argument("--csv", action="store_true",
                    help="emit the timelines as CSV")
    args = ap.parse_args()

    # Span traces (Chrome trace-event JSON arrays from --spans) have
    # their own validator; delegate so `--check` works on either
    # artifact the simulator writes.
    with open(args.trace) as f:
        first = f.read(1)
    if first == "[":
        import spans_to_perfetto
        events = spans_to_perfetto.load(args.trace)
        problems = spans_to_perfetto.check(args.trace, events)
        for p in problems:
            print(p, file=sys.stderr)
        if not problems:
            print(f"{args.trace}: OK ({len(events)} span events)")
        if args.check:
            sys.exit(1 if problems else 0)
        if not problems:
            spans_to_perfetto.summarize(args.trace, events)
        sys.exit(1 if problems else 0)

    runs, errors = load(args.trace)
    if args.check:
        sys.exit(check(runs, errors))
    for e in errors:
        print(f"[warn] {e}", file=sys.stderr)
    if not runs:
        print("no runs in trace", file=sys.stderr)
        sys.exit(1)
    for run, recs in runs.items():
        if args.run and args.run not in run:
            continue
        timeline(run, recs, args.csv)


if __name__ == "__main__":
    # Die quietly when the output is piped into head/less and closed.
    if hasattr(signal, "SIGPIPE"):
        signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    main()
