/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * We use xoshiro256** — fast, high quality, and (unlike std::mt19937)
 * identical across standard library implementations, which keeps every
 * experiment reproducible bit-for-bit from a seed.
 */

#ifndef BANSHEE_COMMON_RNG_HH
#define BANSHEE_COMMON_RNG_HH

#include <cstdint>

namespace banshee {

/**
 * xoshiro256** generator (Blackman & Vigna, public domain algorithm).
 * Seeded through splitmix64 so that even seed 0 produces a good state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into 256 bits of state.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace banshee

#endif // BANSHEE_COMMON_RNG_HH
