#include "common/event_queue.hh"

#include <algorithm>

namespace banshee {

/*
 * Invariants (the determinism contract depends on them):
 *
 *  I1. wheelBase_ == now_ whenever control is outside run()'s
 *      advance step, so schedule(when >= now_) always lands at or
 *      after the window base.
 *  I2. A nonempty wheel slot holds entries for exactly one cycle:
 *      the unique c in [wheelBase_, wheelBase_+kWheelSlots) mapping
 *      to that slot. Cycles enter the window exactly once (the base
 *      only advances), skipped slots are verified stale and cleared
 *      before the base passes them, and far entries migrate at the
 *      moment their cycle enters the window — before any direct
 *      insert can target the slot.
 *  I3. Within a slot, entries appear in schedule order: far
 *      migrations pop the heap in (when, seq) order, and any entry
 *      scheduled after the cycle entered the window is appended
 *      behind every migrated one (it was scheduled later). Slot
 *      position is therefore global schedule order — the same-cycle
 *      FIFO contract.
 *  I4. An entry is live iff its event is armed and the event's armed
 *      cycle equals the entry's cycle. Every actual arm (not the
 *      same-cycle no-op) appends one physical entry; the first live
 *      entry popped fires the arm and disarms the event.
 *  I5. Stale entries stay physically queued until their cycle is
 *      reached (or their whole slot is verified stale). A re-arm back
 *      onto a stale entry's cycle makes that entry live again, so the
 *      event fires at the stale entry's (older) position — and if the
 *      callback re-arms to the same cycle, a second stale entry can
 *      fire it again later in the cycle. This reproduces, exactly,
 *      the closure-per-arm scheme this replaces: each closure was a
 *      filter running `if (armed && cycle == captured) fire()` at its
 *      own heap position.
 */

TickEvent::~TickEvent()
{
    if (armed_ || pins_ > 0) {
        sim_assert(eq_ != nullptr, "pinned event without a queue");
        eq_->purge(this);
    }
}

void
TickEvent::cancel()
{
    if (!armed_)
        return;
    armed_ = false;
    eq_->pending_--;
}

EventQueue::EventQueue() = default;

EventQueue::~EventQueue() = default;

void
EventQueue::schedule(TickEvent &ev, Cycle when)
{
    sim_assert(static_cast<bool>(ev.fn_), "tick event has no callback");
    sim_assert(when >= now_, "scheduling into the past (%llu < %llu)",
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    sim_assert(ev.eq_ == nullptr || ev.eq_ == this,
               "tick event bound to a different queue");
    // Re-arming at the armed cycle keeps the original FIFO position.
    if (ev.armed_ && ev.when_ == when)
        return;
    ev.eq_ = this;
    if (!ev.armed_) {
        ev.armed_ = true;
        pending_++;
    }
    ev.when_ = when;
    insertEntry(ev);
}

void
EventQueue::insertEntry(TickEvent &ev)
{
    ev.pins_++;
    if (ev.when_ - wheelBase_ < kWheelSlots) {
        const std::size_t idx = ev.when_ & (kWheelSlots - 1);
        slots_[idx].push_back(Entry{&ev});
        bitmap_[idx / 64] |= 1ull << (idx % 64);
    } else {
        heapPush(FarEntry{ev.when_, seq_++, &ev});
    }
}

EventQueue::OneShot *
EventQueue::grabNode()
{
    if (freeList_ != nullptr) {
        OneShot *n = freeList_;
        freeList_ = n->nextFree;
        n->nextFree = nullptr;
        return n;
    }
    nodes_.push_back(std::make_unique<OneShot>());
    OneShot *n = nodes_.back().get();
    // The callback is fixed for the node's lifetime; two captured
    // pointers fit std::function's inline storage, so arming a
    // recycled node never touches the allocator.
    n->ev.setCallback([this, n] { fireOneShot(n); });
    return n;
}

void
EventQueue::schedule(Cycle when, EventFn fn)
{
    OneShot *n = grabNode();
    n->fn = std::move(fn);
    schedule(n->ev, when);
}

void
EventQueue::schedule(Cycle when, CycleFn fn)
{
    OneShot *n = grabNode();
    n->cfn = std::move(fn);
    schedule(n->ev, when);
}

void
EventQueue::fireOneShot(OneShot *n)
{
    EventFn fn = std::move(n->fn);
    CycleFn cfn = std::move(n->cfn);
    n->fn = nullptr;
    n->cfn = nullptr;
    // Recycle before invoking so the callback can schedule into the
    // freed node; our callables are already moved out.
    n->nextFree = freeList_;
    freeList_ = n;
    if (fn)
        fn();
    else
        cfn(now_);
}

void
EventQueue::heapPush(FarEntry e)
{
    far_.push_back(e);
    std::push_heap(far_.begin(), far_.end(),
                   [](const FarEntry &a, const FarEntry &b) {
                       return a.when != b.when ? a.when > b.when
                                               : a.seq > b.seq;
                   });
}

void
EventQueue::heapPop()
{
    std::pop_heap(far_.begin(), far_.end(),
                  [](const FarEntry &a, const FarEntry &b) {
                      return a.when != b.when ? a.when > b.when
                                              : a.seq > b.seq;
                  });
    far_.pop_back();
}

void
EventQueue::migrateFar()
{
    // Pull every far entry whose cycle has entered the window. Heap
    // pop order is (when, seq), and any future direct insert for
    // these cycles is appended later, so slot FIFO order holds (I3).
    // Stale entries migrate too — they stay revivable until their
    // cycle is reached (I5).
    while (!far_.empty() && far_.front().when - wheelBase_ < kWheelSlots) {
        const FarEntry fe = far_.front();
        heapPop();
        const std::size_t idx = fe.when & (kWheelSlots - 1);
        slots_[idx].push_back(Entry{fe.ev});
        bitmap_[idx / 64] |= 1ull << (idx % 64);
    }
}

/** First occupied slot index at or after @p from in circular window
 *  order, or -1 when the wheel is empty. */
static int
firstSetFrom(const std::uint64_t *bitmap, std::size_t words,
             std::size_t from)
{
    const std::size_t ws = from / 64, bs = from % 64;
    const std::uint64_t high = bitmap[ws] & (~0ull << bs);
    if (high != 0)
        return static_cast<int>(ws * 64 + __builtin_ctzll(high));
    for (std::size_t k = 1; k <= words; ++k) {
        const std::size_t wi = (ws + k) & (words - 1);
        std::uint64_t w = bitmap[wi];
        if (wi == ws)
            w &= ~(~0ull << bs); // wrapped back: only the low part left
        if (w != 0)
            return static_cast<int>(wi * 64 + __builtin_ctzll(w));
    }
    return -1;
}

Cycle
EventQueue::firstWheelCycle() const
{
    const std::size_t base = wheelBase_ & (kWheelSlots - 1);
    const int idx = firstSetFrom(bitmap_, kBitmapWords, base);
    if (idx < 0)
        return kNoCycle;
    return wheelBase_ +
           ((static_cast<std::size_t>(idx) - base) & (kWheelSlots - 1));
}

Cycle
EventQueue::nextEventCycle()
{
    if (pending_ == 0)
        return kNoCycle;
    // Drop verified all-stale slots off the front of the wheel until
    // a slot with a live entry surfaces. Mixed slots keep their stale
    // entries (revivable until popped, I5). Far entries are strictly
    // beyond the window (>= any wheel cycle), so the wheel wins when
    // nonempty; a stale far top is returned as-is — run() migrates
    // and skips it, exactly as the old queue executed dead closures.
    for (Cycle c = firstWheelCycle(); c != kNoCycle;
         c = firstWheelCycle()) {
        const std::size_t idx = c & (kWheelSlots - 1);
        auto &slot = slots_[idx];
        const bool anyLive =
            std::any_of(slot.begin(), slot.end(),
                        [c](const Entry &e) { return live(e, c); });
        if (anyLive)
            return c;
        // A slot with no live entries cannot be revived: revival
        // would need a schedule() at this cycle, but execution is
        // already at or past it by the time this scan runs.
        for (const Entry &e : slot)
            e.ev->pins_--;
        slot.clear();
        bitmap_[idx / 64] &= ~(1ull << (idx % 64));
    }
    sim_assert(!far_.empty(), "pending events but no queued entries");
    return far_.front().when;
}

void
EventQueue::purge(TickEvent *ev)
{
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
        std::uint64_t bits = bitmap_[w];
        while (bits != 0 && ev->pins_ > 0) {
            const std::size_t idx =
                w * 64 + static_cast<std::size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            auto &slot = slots_[idx];
            // Entries already popped by an in-progress slot walk had
            // their pins released; only the unpopped tail counts.
            const auto first =
                slot.begin() +
                static_cast<std::ptrdiff_t>(idx == procIdx_ ? procPos_ : 0);
            const auto end =
                std::remove_if(first, slot.end(),
                               [&](const Entry &e) { return e.ev == ev; });
            ev->pins_ -=
                static_cast<std::uint32_t>(std::distance(end, slot.end()));
            slot.erase(end, slot.end());
            if (slot.empty())
                bitmap_[w] &= ~(1ull << (idx % 64));
        }
    }
    if (ev->pins_ > 0) {
        const auto end = std::remove_if(
            far_.begin(), far_.end(),
            [&](const FarEntry &e) { return e.ev == ev; });
        ev->pins_ -=
            static_cast<std::uint32_t>(std::distance(end, far_.end()));
        far_.erase(end, far_.end());
        std::make_heap(far_.begin(), far_.end(),
                       [](const FarEntry &a, const FarEntry &b) {
                           return a.when != b.when ? a.when > b.when
                                                   : a.seq > b.seq;
                       });
    }
    sim_assert(ev->pins_ == 0, "purge left pinned entries");
    if (ev->armed_) {
        ev->armed_ = false;
        pending_--;
    }
    ev->eq_ = nullptr;
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    std::uint64_t executed = 0;
    while (!stopRequested_) {
        const Cycle c = nextEventCycle();
        if (c == kNoCycle || c > limit)
            break;
        // Advance the window to c. Slots behind it were verified
        // stale and cleared by nextEventCycle(); migrate far entries
        // whose cycles just entered the window (I2).
        wheelBase_ = c;
        now_ = c;
        migrateFar();
        auto &slot = slots_[c & (kWheelSlots - 1)];
        // Index-based walk: same-cycle schedules from callbacks
        // append to this very slot and must run this cycle, in order.
        // procIdx_/procPos_ publish the popped prefix so purge scans
        // exclude entries that were already released.
        procIdx_ = c & (kWheelSlots - 1);
        std::size_t i = 0;
        while (i < slot.size() && !stopRequested_) {
            const Entry e = slot[i++];
            procPos_ = i;
            e.ev->pins_--;
            if (!live(e, c))
                continue;
            TickEvent *ev = e.ev;
            // Disarm before firing so the callback can re-arm.
            ev->armed_ = false;
            pending_--;
            executed++;
            executedTotal_++;
            ev->fn_();
        }
        procIdx_ = kWheelSlots;
        procPos_ = 0;
        if (i >= slot.size()) {
            slot.clear();
            const std::size_t idx = c & (kWheelSlots - 1);
            bitmap_[idx / 64] &= ~(1ull << (idx % 64));
        } else {
            // Stopped mid-slot: keep the unprocessed suffix.
            slot.erase(slot.begin(),
                       slot.begin() + static_cast<std::ptrdiff_t>(i));
        }
    }
    stopRequested_ = false;
    return executed;
}

void
EventQueue::reset()
{
    // Every entry is dropped, so every armed event loses its live
    // entry: disarm everything encountered.
    const auto drop = [](TickEvent *ev) {
        ev->pins_--;
        ev->armed_ = false;
    };
    for (auto &slot : slots_) {
        for (const Entry &e : slot)
            drop(e.ev);
        slot.clear();
    }
    for (const FarEntry &e : far_)
        drop(e.ev);
    far_.clear();
    for (std::uint64_t &w : bitmap_)
        w = 0;
    // One-shot nodes hold their own TickEvents; all pins are gone, so
    // destroying them is a no-op purge.
    nodes_.clear();
    freeList_ = nullptr;
    now_ = 0;
    wheelBase_ = 0;
    seq_ = 0;
    pending_ = 0;
    executedTotal_ = 0;
    stopRequested_ = false;
    procIdx_ = kWheelSlots;
    procPos_ = 0;
}

} // namespace banshee
