/**
 * @file
 * Error-reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal simulator invariant was violated (a bug in
 *            this library); aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something is suspicious but simulation can continue.
 * inform() — plain status output.
 */

#ifndef BANSHEE_COMMON_LOG_HH
#define BANSHEE_COMMON_LOG_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace banshee {

namespace detail {

[[noreturn]] void logAndAbort(const char *kind, const std::string &msg,
                              const char *file, int line);
[[noreturn]] void simAssertFail(const char *cond, const char *file, int line,
                                const std::string &msg);
void logMessage(const char *kind, const std::string &msg);

/** Minimal printf-style formatter returning std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Global verbosity: 0 = quiet, 1 = inform, 2 = debug. Initialized
 * from the BANSHEE_LOG environment variable at startup ("0"/"quiet",
 * "1"/"info", "2"/"debug"); defaults to 1.
 */
extern int logVerbosity;

} // namespace banshee

#define panic(...)                                                          \
    ::banshee::detail::logAndAbort(                                         \
        "panic", ::banshee::detail::format(__VA_ARGS__), __FILE__, __LINE__)

#define fatal(...)                                                          \
    do {                                                                    \
        ::banshee::detail::logMessage(                                      \
            "fatal", ::banshee::detail::format(__VA_ARGS__));               \
        std::exit(1);                                                       \
    } while (0)

#define warn(...)                                                           \
    ::banshee::detail::logMessage("warn",                                   \
                                  ::banshee::detail::format(__VA_ARGS__))

/**
 * Like warn(), but fires at most once per call site for the lifetime
 * of the process — for conditions re-detected every epoch (telemetry
 * write failures, per-epoch policy anomalies) that would otherwise
 * flood long runs. Atomic so concurrent sweep workers hitting the
 * same call site race benignly (at most one warning wins).
 */
#define warn_once(...)                                                      \
    do {                                                                    \
        static std::atomic<bool> banshee_warned_once_{false};               \
        if (!banshee_warned_once_.exchange(true,                            \
                                           std::memory_order_relaxed))      \
            warn(__VA_ARGS__);                                              \
    } while (0)

#define inform(...)                                                         \
    do {                                                                    \
        if (::banshee::logVerbosity >= 1)                                   \
            ::banshee::detail::logMessage(                                  \
                "info", ::banshee::detail::format(__VA_ARGS__));            \
    } while (0)

/** Assert that is kept in release builds: checks simulator invariants. */
#define sim_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::banshee::detail::simAssertFail(                               \
                #cond, __FILE__, __LINE__,                                  \
                ::banshee::detail::format("" __VA_ARGS__));                 \
        }                                                                   \
    } while (0)

#endif // BANSHEE_COMMON_LOG_HH
