/**
 * @file
 * Error-reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal simulator invariant was violated (a bug in
 *            this library); aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something is suspicious but simulation can continue.
 * inform() — plain status output.
 */

#ifndef BANSHEE_COMMON_LOG_HH
#define BANSHEE_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace banshee {

namespace detail {

[[noreturn]] void logAndAbort(const char *kind, const std::string &msg,
                              const char *file, int line);
[[noreturn]] void simAssertFail(const char *cond, const char *file, int line,
                                const std::string &msg);
void logMessage(const char *kind, const std::string &msg);

/** Minimal printf-style formatter returning std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Global verbosity: 0 = quiet, 1 = inform, 2 = debug. */
extern int logVerbosity;

} // namespace banshee

#define panic(...)                                                          \
    ::banshee::detail::logAndAbort(                                         \
        "panic", ::banshee::detail::format(__VA_ARGS__), __FILE__, __LINE__)

#define fatal(...)                                                          \
    do {                                                                    \
        ::banshee::detail::logMessage(                                      \
            "fatal", ::banshee::detail::format(__VA_ARGS__));               \
        std::exit(1);                                                       \
    } while (0)

#define warn(...)                                                           \
    ::banshee::detail::logMessage("warn",                                   \
                                  ::banshee::detail::format(__VA_ARGS__))

#define inform(...)                                                         \
    do {                                                                    \
        if (::banshee::logVerbosity >= 1)                                   \
            ::banshee::detail::logMessage(                                  \
                "info", ::banshee::detail::format(__VA_ARGS__));            \
    } while (0)

/** Assert that is kept in release builds: checks simulator invariants. */
#define sim_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::banshee::detail::simAssertFail(                               \
                #cond, __FILE__, __LINE__,                                  \
                ::banshee::detail::format("" __VA_ARGS__));                 \
        }                                                                   \
    } while (0)

#endif // BANSHEE_COMMON_LOG_HH
