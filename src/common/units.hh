/**
 * @file
 * Unit conversions between wall-clock time and core cycles.
 */

#ifndef BANSHEE_COMMON_UNITS_HH
#define BANSHEE_COMMON_UNITS_HH

#include <cstdint>

#include "common/types.hh"

namespace banshee {

/** Core clock frequency in Hz (paper Table 2: 2.7 GHz). */
constexpr double kCoreFreqHz = 2.7e9;

/** Convert microseconds of wall time into core cycles. */
constexpr Cycle
usToCycles(double us)
{
    return static_cast<Cycle>(us * kCoreFreqHz / 1e6);
}

/** Convert nanoseconds of wall time into core cycles. */
constexpr Cycle
nsToCycles(double ns)
{
    return static_cast<Cycle>(ns * kCoreFreqHz / 1e9);
}

/** Convert core cycles to microseconds. */
constexpr double
cyclesToUs(Cycle c)
{
    return static_cast<double>(c) * 1e6 / kCoreFreqHz;
}

/** Bytes/cycle to GB/s at the core clock. */
constexpr double
bytesPerCycleToGBps(double bpc)
{
    return bpc * kCoreFreqHz / 1e9;
}

} // namespace banshee

#endif // BANSHEE_COMMON_UNITS_HH
