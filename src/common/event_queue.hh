/**
 * @file
 * A deterministic global event queue.
 *
 * Events scheduled for the same cycle execute in schedule order
 * (FIFO tie-break via a sequence number), so simulations are exactly
 * reproducible regardless of heap internals.
 */

#ifndef BANSHEE_COMMON_EVENT_QUEUE_HH
#define BANSHEE_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace banshee {

/** Callable executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Priority queue of (cycle, seq, fn). The simulator main loop pops
 * events until the queue drains or a stop condition is raised.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (cycle of the last event executed). */
    Cycle now() const { return now_; }

    /**
     * Schedule @p fn at absolute cycle @p when. Scheduling in the past
     * is a simulator bug.
     */
    void
    schedule(Cycle when, EventFn fn)
    {
        sim_assert(when >= now_,
                   "scheduling into the past (%llu < %llu)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
        heap_.push(Event{when, seq_++, std::move(fn)});
    }

    /** Schedule @p fn @p delta cycles from now. */
    void
    scheduleAfter(Cycle delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    bool empty() const { return heap_.empty(); }

    std::size_t size() const { return heap_.size(); }

    /** Time of the next pending event, or kNoCycle when empty. */
    Cycle
    nextEventCycle() const
    {
        return heap_.empty() ? kNoCycle : heap_.top().when;
    }

    /**
     * Execute events until the queue is empty or @p limit cycles have
     * been simulated. Returns the number of events executed.
     */
    std::uint64_t
    run(Cycle limit = kNoCycle)
    {
        std::uint64_t executed = 0;
        while (!heap_.empty() && !stopRequested_) {
            const Event &top = heap_.top();
            if (top.when > limit)
                break;
            now_ = top.when;
            // Move the callable out before popping (pop invalidates).
            EventFn fn = std::move(const_cast<Event &>(top).fn);
            heap_.pop();
            fn();
            ++executed;
        }
        stopRequested_ = false;
        return executed;
    }

    /** Ask run() to return after the current event completes. */
    void requestStop() { stopRequested_ = true; }

    /** Reset time and drop all pending events (for tests). */
    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        seq_ = 0;
        stopRequested_ = false;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        EventFn fn;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    bool stopRequested_ = false;
};

} // namespace banshee

#endif // BANSHEE_COMMON_EVENT_QUEUE_HH
