/**
 * @file
 * A deterministic global event queue built on intrusive tick events.
 *
 * Events scheduled for the same cycle execute in schedule order
 * (FIFO tie-break via a sequence number), so simulations are exactly
 * reproducible regardless of container internals.
 *
 * Two event flavors share one clock:
 *
 *  - TickEvent: an intrusive, preallocated, cancellable and
 *    re-armable event owned by a component (a DRAM channel's
 *    scheduler kick, a core's activation, an epoch clock). Arming
 *    one allocates nothing; re-arming supersedes the previous arm in
 *    O(1) and the stale queue entry is dropped when it surfaces.
 *  - one-shot closures (the legacy schedule(cycle, fn) interface):
 *    backed by a freelist of pooled event nodes, so steady-state
 *    completion traffic (DRAM done callbacks) recycles nodes instead
 *    of heap-allocating a closure per event. The CycleFn flavor
 *    passes the firing cycle straight to the callback, letting DRAM
 *    completions move their DramDoneFn into the pool without an
 *    extra wrapping lambda.
 *
 * Storage is two-level: a timing wheel of kWheelSlots one-cycle
 * buckets covers the near future, where virtually all simulation
 * events live (bus transfers, bank timings, core activations), and a
 * binary heap holds the far future (epoch clocks, OS routines). Far
 * events migrate into the wheel exactly once, when the window
 * reaches them; an occupancy bitmap makes finding the next nonempty
 * bucket O(slots/64) worst case and O(1) in practice.
 *
 * Lifetime: a TickEvent unregisters itself from its queue on
 * destruction, and every component's events must be destroyed before
 * the EventQueue they were scheduled on (a System declares the queue
 * first, so it is destroyed last).
 */

#ifndef BANSHEE_COMMON_EVENT_QUEUE_HH
#define BANSHEE_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace banshee {

class EventQueue;

/** Callable executed when an event fires. */
using EventFn = std::function<void()>;

/** One-shot callable that receives the cycle it fired at. */
using CycleFn = std::function<void(Cycle)>;

/**
 * An intrusive event: scheduling state (cycle, arm generation) lives
 * in the event itself, so arming, cancelling and re-arming touch no
 * allocator. The callback is fixed at construction (or one
 * setCallback before first use); what varies per arm is only *when*
 * it fires.
 *
 * Cancel and re-arm are O(1): the queue entry from a superseded arm
 * stays physically queued but is live only while the event is armed
 * for that entry's exact cycle, and is discarded the moment it is
 * popped otherwise — it is never executed, unlike the
 * closure-per-arm scheme this replaces, where every dead kick still
 * ran a staleness-filtering lambda.
 */
class TickEvent
{
    friend class EventQueue;

  public:
    TickEvent() = default;
    explicit TickEvent(EventFn fn) : fn_(std::move(fn)) {}
    ~TickEvent();

    TickEvent(const TickEvent &) = delete;
    TickEvent &operator=(const TickEvent &) = delete;

    /** Set (or replace) the callback; must not be armed. */
    void
    setCallback(EventFn fn)
    {
        sim_assert(!armed_, "callback change on an armed event");
        fn_ = std::move(fn);
    }

    /** True while scheduled and not yet fired or cancelled. */
    bool armed() const { return armed_; }

    /** Cycle the current arm fires at; meaningful only when armed. */
    Cycle when() const { return when_; }

    /** Disarm. O(1); safe when not armed. */
    void cancel();

  private:
    EventFn fn_;
    EventQueue *eq_ = nullptr; ///< queue holding physical entries
    Cycle when_ = 0;
    std::uint32_t pins_ = 0; ///< physical queue entries naming this
    bool armed_ = false;
};

/**
 * The two-level deterministic event queue. The simulator main loop
 * pops events until the queue drains or a stop condition is raised.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time (cycle of the last event executed). */
    Cycle now() const { return now_; }

    //
    // Intrusive interface.
    //

    /**
     * Arm @p ev at absolute cycle @p when. Re-arming an armed event
     * moves it (the previous arm is superseded); re-arming at the
     * cycle it is already armed for keeps its FIFO position.
     * Scheduling in the past is a simulator bug.
     *
     * Positional contract: every actual arm appends a physical
     * entry, and an entry fires iff the event is still armed for
     * that entry's exact cycle when it surfaces. Re-arming back onto
     * a superseded entry's cycle therefore fires at the older
     * entry's position, not the back of the cycle. This is exactly
     * the semantics of the closure-per-arm scheme this replaces — a
     * filter closure fired at its own queue position whenever its
     * captured cycle matched the live arm — and keeps supersede /
     * re-arm patterns (the DRAM kick) bit-identical to it.
     */
    void schedule(TickEvent &ev, Cycle when);

    /** Arm @p ev @p delta cycles from now. */
    void
    scheduleAfter(TickEvent &ev, Cycle delta)
    {
        schedule(ev, now_ + delta);
    }

    //
    // One-shot interface (pooled nodes; see file comment).
    //

    /** Schedule @p fn at absolute cycle @p when. */
    void schedule(Cycle when, EventFn fn);

    /** Schedule @p fn; it receives the cycle it fires at. */
    void schedule(Cycle when, CycleFn fn);

    /** Schedule @p fn @p delta cycles from now. */
    void
    scheduleAfter(Cycle delta, EventFn fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** No armed events pending (stale entries do not count). */
    bool empty() const { return pending_ == 0; }

    /** Number of armed events pending. */
    std::size_t size() const { return pending_; }

    /**
     * Time of the next queued event, or kNoCycle when no armed event
     * is pending. May name a cycle holding only superseded far-heap
     * entries (run() skips through those). Non-const: drops verified
     * all-stale wheel slots it scans past.
     */
    Cycle nextEventCycle();

    /**
     * Execute events until the queue is empty or @p limit cycles have
     * been simulated (events at exactly @p limit still run). Returns
     * the number of events executed by this call.
     */
    std::uint64_t run(Cycle limit = kNoCycle);

    /** Ask run() to return after the current event completes. */
    void requestStop() { stopRequested_ = true; }

    /** Events executed over the queue's lifetime (host throughput
     *  metric: the sweep runner reports events/sec from this). */
    std::uint64_t eventsExecuted() const { return executedTotal_; }

    /** Reset time and drop all pending events (for tests). */
    void reset();

  private:
    friend class TickEvent;

    /** Wheel span in cycles; power of two. Covers every near-future
     *  event class (bus transfers, bank prep, core activations, kick
     *  re-arms); epoch-scale clocks go to the far heap. */
    static constexpr std::size_t kWheelSlots = 4096;
    static constexpr std::size_t kBitmapWords = kWheelSlots / 64;

    /** A physical reference to an arm of @p ev; its cycle is implied
     *  by the wheel slot holding it. */
    struct Entry
    {
        TickEvent *ev;
    };

    struct FarEntry
    {
        Cycle when;
        std::uint64_t seq;
        TickEvent *ev;
    };

    /** Pooled node backing one one-shot closure. */
    struct OneShot
    {
        TickEvent ev;
        EventFn fn;
        CycleFn cfn;
        OneShot *nextFree = nullptr;
    };

    /** Live iff the event is armed for exactly the entry's cycle. */
    static bool
    live(const Entry &e, Cycle c)
    {
        return e.ev->armed_ && e.ev->when_ == c;
    }

    /** Append an entry for @p ev's current arm (wheel or far heap). */
    void insertEntry(TickEvent &ev);

    /** Move far-heap entries now inside the wheel window. */
    void migrateFar();

    /** First cycle in [wheelBase_, wheelBase_+kWheelSlots) whose slot
     *  is occupied, or kNoCycle. */
    Cycle firstWheelCycle() const;

    /** Fire one-shot node @p n and recycle it. */
    void fireOneShot(OneShot *n);

    OneShot *grabNode();

    /** Remove every physical entry naming @p ev (destructor path). */
    void purge(TickEvent *ev);

    void heapPush(FarEntry e);
    void heapPop();

    std::vector<std::vector<Entry>> slots_{kWheelSlots};
    std::uint64_t bitmap_[kBitmapWords] = {};
    Cycle wheelBase_ = 0; ///< wheel covers [wheelBase_, +kWheelSlots)
    std::vector<FarEntry> far_;

    std::vector<std::unique_ptr<OneShot>> nodes_;
    OneShot *freeList_ = nullptr;

    Cycle now_ = 0;
    std::uint64_t seq_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t executedTotal_ = 0;
    bool stopRequested_ = false;

    /** Slot being walked by run() and how many of its entries have
     *  been popped — those are excluded from purge scans. */
    std::size_t procIdx_ = kWheelSlots;
    std::size_t procPos_ = 0;
};

} // namespace banshee

#endif // BANSHEE_COMMON_EVENT_QUEUE_HH
