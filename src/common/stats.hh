/**
 * @file
 * Lightweight statistics registry.
 *
 * Components create named counters inside a StatSet; the simulator
 * resets every StatSet at the warmup boundary and dumps them at the
 * end of the measured region. Counter lookups happen once at
 * construction; updates are plain integer increments.
 */

#ifndef BANSHEE_COMMON_STATS_HH
#define BANSHEE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace banshee {

/** A single 64-bit statistic. */
class Counter
{
  public:
    Counter &
    operator+=(std::uint64_t v)
    {
        value_ += v;
        return *this;
    }

    Counter &
    operator++()
    {
        ++value_;
        return *this;
    }

    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named collection of counters. Iteration order is the name's
 * lexicographic order (std::map) so dumps are stable.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name = "") : name_(std::move(name)) {}

    StatSet(const StatSet &) = delete;
    StatSet &operator=(const StatSet &) = delete;

    /** Get or create a counter. The reference stays valid forever. */
    Counter &
    counter(const std::string &name)
    {
        auto it = counters_.find(name);
        if (it == counters_.end())
            it = counters_.emplace(name, std::make_unique<Counter>()).first;
        return *it->second;
    }

    /** Read a counter's value; 0 if it does not exist. */
    std::uint64_t
    value(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second->value();
    }

    /** Zero every counter (warmup boundary). */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second->reset();
    }

    /** Print all counters, prefixed with the set name. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : counters_) {
            os << (name_.empty() ? "" : name_ + ".") << kv.first << " = "
               << kv.second->value() << "\n";
        }
    }

    const std::string &name() const { return name_; }

    const std::map<std::string, std::unique_ptr<Counter>> &
    all() const
    {
        return counters_;
    }

  private:
    std::string name_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
};

/**
 * Exponentially-weighted moving average over a windowed ratio, used
 * for the "recent miss rate" that drives Banshee's adaptive sampling
 * (paper Section 4.2.1) and BATMAN's traffic controller.
 */
class EwmaRatio
{
  public:
    /**
     * @param window number of events per update step
     * @param alpha  smoothing weight of the newest window
     * @param initial starting estimate (miss rate starts pessimistic)
     */
    explicit EwmaRatio(std::uint32_t window = 256, double alpha = 0.25,
                       double initial = 1.0)
        : window_(window), alpha_(alpha), value_(initial)
    {
    }

    /** Record one event; @p hit is the numerator condition. */
    void
    record(bool hit)
    {
        ++events_;
        if (hit)
            ++hits_;
        if (events_ >= window_) {
            const double ratio =
                static_cast<double>(hits_) / static_cast<double>(events_);
            value_ = alpha_ * ratio + (1.0 - alpha_) * value_;
            events_ = 0;
            hits_ = 0;
        }
    }

    double value() const { return value_; }

    void
    reset(double initial)
    {
        value_ = initial;
        events_ = 0;
        hits_ = 0;
    }

  private:
    std::uint32_t window_;
    double alpha_;
    double value_;
    std::uint32_t events_ = 0;
    std::uint32_t hits_ = 0;
};

} // namespace banshee

#endif // BANSHEE_COMMON_STATS_HH
