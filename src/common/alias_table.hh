/**
 * @file
 * Walker alias method for O(1) sampling from a discrete distribution.
 *
 * Used by the workload generators to draw pages from Zipf-like
 * popularity distributions without a per-draw binary search.
 */

#ifndef BANSHEE_COMMON_ALIAS_TABLE_HH
#define BANSHEE_COMMON_ALIAS_TABLE_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace banshee {

/**
 * Immutable alias table built from a vector of non-negative weights.
 * sample() returns an index in [0, size()) with probability
 * proportional to its weight.
 */
class AliasTable
{
  public:
    AliasTable() = default;

    /** Build from weights; zero-weight entries are never returned. */
    explicit AliasTable(const std::vector<double> &weights);

    /** Number of outcomes (0 if default-constructed). */
    std::size_t size() const { return prob_.size(); }

    bool empty() const { return prob_.empty(); }

    /** Draw one index. Table must be non-empty. */
    std::size_t
    sample(Rng &rng) const
    {
        const std::size_t i = rng.nextBelow(prob_.size());
        return rng.nextDouble() < prob_[i] ? i : alias_[i];
    }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

/**
 * Zipf(alpha) weights over n items: weight(i) = 1 / (i + 1)^alpha.
 * alpha = 0 gives a uniform distribution.
 */
std::vector<double> zipfWeights(std::size_t n, double alpha);

} // namespace banshee

#endif // BANSHEE_COMMON_ALIAS_TABLE_HH
