#include "common/alias_table.hh"

#include <cmath>

#include "common/log.hh"

namespace banshee {

AliasTable::AliasTable(const std::vector<double> &weights)
{
    const std::size_t n = weights.size();
    sim_assert(n > 0, "alias table needs at least one weight");

    double total = 0.0;
    for (double w : weights) {
        sim_assert(w >= 0.0, "alias table weights must be non-negative");
        total += w;
    }
    sim_assert(total > 0.0, "alias table needs positive total weight");

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    // Scaled probabilities; partition into under- and over-full buckets.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * n / total;
        if (scaled[i] < 1.0)
            small.push_back(static_cast<std::uint32_t>(i));
        else
            large.push_back(static_cast<std::uint32_t>(i));
    }

    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        small.pop_back();
        const std::uint32_t l = large.back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0)
            small.push_back(l);
        else
            large.push_back(l);
    }
    // Remaining buckets are (numerically) exactly full.
    for (std::uint32_t l : large)
        prob_[l] = 1.0;
    for (std::uint32_t s : small)
        prob_[s] = 1.0;
}

std::vector<double>
zipfWeights(std::size_t n, double alpha)
{
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i)
        w[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    return w;
}

} // namespace banshee
