/**
 * @file
 * Fundamental scalar types and address helpers shared by every module.
 *
 * All simulator time is expressed in core clock cycles (2.7 GHz by
 * default). DRAM models convert their own clock domains into core
 * cycles at construction time.
 */

#ifndef BANSHEE_COMMON_TYPES_HH
#define BANSHEE_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace banshee {

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** A physical byte address. */
using Addr = std::uint64_t;

/** A 64 B cacheline address (byte address >> 6). */
using LineAddr = std::uint64_t;

/** A page frame number (byte address >> page bits). */
using PageNum = std::uint64_t;

/** Core / thread identifier. */
using CoreId = std::uint32_t;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid addresses. */
constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Cacheline geometry: 64 B lines everywhere (paper Table 2). */
constexpr std::uint32_t kLineBits = 6;
constexpr std::uint32_t kLineBytes = 1u << kLineBits;

/** Regular page geometry: 4 KB (paper Table 2). */
constexpr std::uint32_t kPageBits = 12;
constexpr std::uint32_t kPageBytes = 1u << kPageBits;

/** Large page geometry: 2 MB (paper Section 4.3). */
constexpr std::uint32_t kLargePageBits = 21;
constexpr std::uint32_t kLargePageBytes = 1u << kLargePageBits;

/** Lines per regular page. */
constexpr std::uint32_t kLinesPerPage = kPageBytes / kLineBytes;

/** Convert a byte address to a line address. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> kLineBits;
}

/** Convert a line address back to the byte address of its first byte. */
constexpr Addr
lineToAddr(LineAddr line)
{
    return line << kLineBits;
}

/** Convert a byte address to a 4 KB page number. */
constexpr PageNum
pageOf(Addr addr)
{
    return addr >> kPageBits;
}

/** Convert a line address to its 4 KB page number. */
constexpr PageNum
pageOfLine(LineAddr line)
{
    return line >> (kPageBits - kLineBits);
}

/** Index of a line within its 4 KB page [0, 64). */
constexpr std::uint32_t
lineInPage(LineAddr line)
{
    return static_cast<std::uint32_t>(line & (kLinesPerPage - 1));
}

/** Size literals. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr std::uint32_t
log2i(std::uint64_t v)
{
    std::uint32_t r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace banshee

#endif // BANSHEE_COMMON_TYPES_HH
