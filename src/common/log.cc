#include "common/log.hh"

#include <cstdarg>
#include <cstring>
#include <vector>

namespace banshee {

namespace {

/** Startup verbosity from BANSHEE_LOG (see log.hh). */
int
verbosityFromEnv()
{
    const char *env = std::getenv("BANSHEE_LOG");
    if (env == nullptr || *env == '\0')
        return 1;
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "quiet") == 0)
        return 0;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "info") == 0)
        return 1;
    if (std::strcmp(env, "2") == 0 || std::strcmp(env, "debug") == 0)
        return 2;
    std::fprintf(stderr,
                 "[warn] BANSHEE_LOG='%s' not understood "
                 "(want 0/quiet, 1/info or 2/debug); using 1\n",
                 env);
    return 1;
}

} // namespace

int logVerbosity = verbosityFromEnv();

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
logMessage(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
    std::fflush(stderr);
}

void
logAndAbort(const char *kind, const std::string &msg, const char *file,
            int line)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
simAssertFail(const char *cond, const char *file, int line,
              const std::string &msg)
{
    std::fprintf(stderr, "[panic] assertion failed: %s %s (%s:%d)\n", cond,
                 msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

} // namespace detail
} // namespace banshee
