#include "common/log.hh"

#include <cstdarg>
#include <vector>

namespace banshee {

int logVerbosity = 1;

namespace detail {

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
logMessage(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", kind, msg.c_str());
    std::fflush(stderr);
}

void
logAndAbort(const char *kind, const std::string &msg, const char *file,
            int line)
{
    std::fprintf(stderr, "[%s] %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
simAssertFail(const char *cond, const char *file, int line,
              const std::string &msg)
{
    std::fprintf(stderr, "[panic] assertion failed: %s %s (%s:%d)\n", cond,
                 msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

} // namespace detail
} // namespace banshee
