/**
 * @file
 * Per-category energy accounting for one DRAM device, the energy
 * mirror of TrafficStats: dynamic energy (activate/precharge + burst
 * + I/O) is attributed to the TrafficCat of the request that caused
 * it, so benches can split demand vs replacement vs migration energy
 * the same way they split traffic. Background and refresh energy are
 * device-level (no request causes them) and kept separate; the
 * active-standby delta is traffic-proportional but not attributable
 * to a single request, and — unlike background/refresh — not
 * gateable, so it gets its own bucket (folding it into background
 * would overstate what slice power-gating can shed).
 */

#ifndef BANSHEE_POWER_ENERGY_STATS_HH
#define BANSHEE_POWER_ENERGY_STATS_HH

#include <array>

#include "dram/traffic.hh"

namespace banshee {

/** Accumulated energy in picojoules. Dynamic energy is additionally
 *  split per tenant (mirroring TrafficStats): every dynamic picojoule
 *  lands in one category bucket and one tenant bucket, so both
 *  breakdowns conserve the dynamic total. */
class EnergyStats
{
  public:
    void
    addDynamic(TrafficCat c, double pJ, TenantId tenant = kNoTenant)
    {
        dynamicPJ_[static_cast<std::size_t>(c)] += pJ;
        tenantDynamicPJ_[tenantBucket(tenant)] += pJ;
    }

    void addBackground(double pJ) { backgroundPJ_ += pJ; }
    void addRefresh(double pJ) { refreshPJ_ += pJ; }
    void addActiveStandby(double pJ) { activeStandbyPJ_ += pJ; }

    double
    dynamicPJ(TrafficCat c) const
    {
        return dynamicPJ_[static_cast<std::size_t>(c)];
    }

    double
    dynamicTotalPJ() const
    {
        double t = 0.0;
        for (double e : dynamicPJ_)
            t += e;
        return t;
    }

    /** Dynamic energy attributed to @p tenant's requests. */
    double
    tenantDynamicPJ(TenantId tenant) const
    {
        return tenantDynamicPJ_[tenantBucket(tenant)];
    }

    double backgroundPJ() const { return backgroundPJ_; }
    double refreshPJ() const { return refreshPJ_; }
    double activeStandbyPJ() const { return activeStandbyPJ_; }

    double
    totalPJ() const
    {
        return dynamicTotalPJ() + backgroundPJ_ + refreshPJ_ +
               activeStandbyPJ_;
    }

    /** Element-wise add of another accumulator (every bucket). Used
     *  to fold per-channel energy shards back into the device model
     *  when DRAM channels run on their own event-domain threads. */
    void
    merge(const EnergyStats &o)
    {
        for (std::size_t c = 0; c < dynamicPJ_.size(); ++c)
            dynamicPJ_[c] += o.dynamicPJ_[c];
        for (std::size_t t = 0; t < tenantDynamicPJ_.size(); ++t)
            tenantDynamicPJ_[t] += o.tenantDynamicPJ_[t];
        backgroundPJ_ += o.backgroundPJ_;
        refreshPJ_ += o.refreshPJ_;
        activeStandbyPJ_ += o.activeStandbyPJ_;
    }

    void
    reset()
    {
        dynamicPJ_.fill(0.0);
        tenantDynamicPJ_.fill(0.0);
        backgroundPJ_ = 0.0;
        refreshPJ_ = 0.0;
        activeStandbyPJ_ = 0.0;
    }

  private:
    std::array<double, kNumTrafficCats> dynamicPJ_{};
    std::array<double, kTenantBuckets> tenantDynamicPJ_{};
    double backgroundPJ_ = 0.0;
    double refreshPJ_ = 0.0;
    double activeStandbyPJ_ = 0.0;
};

} // namespace banshee

#endif // BANSHEE_POWER_ENERGY_STATS_HH
