/**
 * @file
 * DRAM power parameters: IDD-style operating currents plus interface
 * energy, in the Micron datasheet / DRAMPower tradition.
 *
 * A channel is modeled as one rank's worth of devices. Per-operation
 * energies are not stored here; DramPowerModel derives them from
 * these currents and the channel's DramTiming (so a Figure-8 latency
 * sweep automatically changes activate energy with tRAS/tRP):
 *
 *  - ACT+PRE pair:  VDD * (IDD0*tRC - IDD3N*tRAS - IDD2N*(tRC-tRAS))
 *  - read burst:    VDD * (IDD4R - IDD3N) per data-bus cycle
 *  - write burst:   VDD * (IDD4W - IDD3N) per data-bus cycle
 *  - refresh:       VDD * (IDD5 - IDD2N) * tRFC/tREFI, a constant
 *                   average power per channel
 *  - background:    VDD * IDD2N precharge-standby floor, plus the
 *                   active-standby delta VDD * (IDD3N - IDD2N)
 *                   charged over cycles the channel moves data
 *
 * plus ioPJPerBit for driving the interface, the term that separates
 * in-package (wide, short, ~4 pJ/bit) from off-package (DDR pins,
 * ~15 pJ/bit) DRAM — the paper's energy argument lives in that gap.
 */

#ifndef BANSHEE_POWER_POWER_PARAMS_HH
#define BANSHEE_POWER_POWER_PARAMS_HH

namespace banshee {

struct DramPowerParams
{
    /** Supply voltage (V). */
    double vdd = 1.5;

    // Operating currents in mA (DDR3-1333 2 Gb x8 rank equivalents).
    double idd0 = 70.0;   ///< ACT-PRE cycling
    double idd2n = 45.0;  ///< precharge standby
    double idd3n = 62.0;  ///< active standby
    double idd4r = 180.0; ///< read burst
    double idd4w = 185.0; ///< write burst
    double idd5 = 215.0;  ///< refresh burst

    /** Average refresh interval (ns) — one REF per tREFI. */
    double tRefiNs = 7800.0;
    /** Refresh cycle time (ns). */
    double tRfcNs = 160.0;

    /** Interface (I/O + termination) energy per transferred bit (pJ). */
    double ioPJPerBit = 4.0;

    /** Die-stacked in-package device: short wide interface. */
    static DramPowerParams
    inPackage()
    {
        return DramPowerParams{};
    }

    /** Off-package DDR channel: pin drivers + board trace + ODT. */
    static DramPowerParams
    offPackage()
    {
        DramPowerParams p;
        p.ioPJPerBit = 15.0;
        return p;
    }
};

} // namespace banshee

#endif // BANSHEE_POWER_POWER_PARAMS_HH
