#include "power/power_cap_policy.hh"

#include <algorithm>

namespace banshee {

std::optional<std::uint32_t>
PowerCapPolicy::decide(const ResizeEpochStats &stats,
                       std::uint32_t activeSlices,
                       std::uint32_t totalSlices) const
{
    if (config_.powerCapWatts <= 0.0)
        return std::nullopt;

    // What one active slice contributes in gateable power. When the
    // measurement has no background component (e.g. the first epoch
    // after a reset), shedding a slice cannot save anything — hold.
    const double perSliceWatts =
        activeSlices == 0 ? 0.0
                          : stats.bgRefreshWatts /
                                static_cast<double>(activeSlices);
    if (perSliceWatts <= 0.0)
        return std::nullopt;

    const std::uint32_t floor =
        std::max<std::uint32_t>(config_.minSlices, 1);
    if (stats.avgPowerWatts > config_.powerCapWatts &&
        activeSlices > floor) {
        return activeSlices - 1;
    }

    // Grow only with hysteresis headroom: re-enabling a slice adds
    // its background share back, and the margin keeps a small power
    // rise from immediately re-shedding it.
    const double afterGrow =
        stats.avgPowerWatts +
        perSliceWatts * (1.0 + config_.powerGrowMargin);
    if (activeSlices < totalSlices && afterGrow <= config_.powerCapWatts)
        return activeSlices + 1;

    return std::nullopt;
}

} // namespace banshee
