/**
 * @file
 * Watt-budget resize policy: pick the DRAM-cache slice count from a
 * power cap using the power model's running average (the external
 * capacity manager the schedule/adaptive modes were built to serve).
 *
 * Once per epoch the controller feeds it the in-package device's mean
 * power and the background+refresh share over that epoch. While the
 * device is over the cap the policy sheds one slice per epoch (each
 * deactivated slice gates its share of background+refresh power);
 * it grows a slice back only when doing so would still leave the
 * device under the cap with a hysteresis margin of the per-slice
 * power, so the slice count converges instead of oscillating around
 * the budget.
 */

#ifndef BANSHEE_POWER_POWER_CAP_POLICY_HH
#define BANSHEE_POWER_POWER_CAP_POLICY_HH

#include <cstdint>
#include <optional>

#include "resize/resize_config.hh"

namespace banshee {

class PowerCapPolicy
{
  public:
    explicit PowerCapPolicy(const ResizePolicyConfig &config)
        : config_(config)
    {
    }

    /**
     * Target active-slice count for this epoch, or nullopt to stay
     * put. Pure function of its inputs (testable without a system).
     */
    std::optional<std::uint32_t> decide(const ResizeEpochStats &stats,
                                        std::uint32_t activeSlices,
                                        std::uint32_t totalSlices) const;

  private:
    ResizePolicyConfig config_;
};

} // namespace banshee

#endif // BANSHEE_POWER_POWER_CAP_POLICY_HH
