/**
 * @file
 * State-based DRAM energy model for one DRAM device (all channels).
 *
 * The DRAM channels feed the model per command as they issue:
 * one ACT+PRE pair per row activation, burst + interface energy per
 * data transfer (attributed to the request's TrafficCat, with the tag
 * split charged to Tag exactly like traffic accounting), and the
 * active-standby delta over cycles the data bus moves data. The two
 * time-proportional components — the precharge-standby background
 * floor and refresh — are integrated lazily from the cycle clock, so
 * the model costs two multiplies per command and one catch-up
 * integration per query.
 *
 * Slice power gating: the resize subsystem reports the fraction of
 * the DRAM cache's slices that are powered down; that fraction of the
 * background floor and refresh power stops accruing (deactivated
 * slices need no refresh and can be put in a gated standby state).
 * The integration is piecewise: every gating change first settles
 * energy up to the switch cycle at the old fraction.
 *
 * Units: energies in picojoules, powers in watts, time in core
 * cycles (converted via kCoreFreqHz).
 */

#ifndef BANSHEE_POWER_POWER_MODEL_HH
#define BANSHEE_POWER_POWER_MODEL_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_timing.hh"
#include "dram/traffic.hh"
#include "power/energy_stats.hh"
#include "power/power_params.hh"

namespace banshee {

class DramPowerModel
{
  public:
    DramPowerModel(const DramPowerParams &params, const DramTiming &timing,
                   std::uint32_t numChannels, StatSet &stats);

    // ------------------------------------------------- command hooks
    // Each hook takes an optional target accumulator: null charges
    // the device model itself (the serial path); a non-null @p to
    // charges a caller-owned shard instead, using this model's
    // derived constants. Channels running on their own event-domain
    // threads accumulate into private shards (the model's constants
    // are immutable during a run, so sharing them is thread-safe) and
    // the shards are absorb()ed back at quiesce.

    /** One row activation (and its eventual precharge). */
    void
    onActivate(TrafficCat cat, TenantId tenant = kNoTenant,
               EnergyStats *to = nullptr)
    {
        (to ? *to : energy_).addDynamic(cat, actPrePJ_, tenant);
    }

    /**
     * One data burst of @p bytes; the @p tagBytes portion is charged
     * to TrafficCat::Tag, mirroring TrafficStats::add's split (the
     * whole burst stays attributed to the requesting tenant).
     */
    void
    onBurst(std::uint32_t bytes, std::uint32_t tagBytes, bool isWrite,
            TrafficCat cat, TenantId tenant = kNoTenant,
            EnergyStats *to = nullptr)
    {
        const double perByte = isWrite ? writePJPerByte_ : readPJPerByte_;
        EnergyStats &e = to ? *to : energy_;
        if (tagBytes > 0)
            e.addDynamic(TrafficCat::Tag, perByte * tagBytes, tenant);
        e.addDynamic(cat, perByte * (bytes - tagBytes), tenant);
    }

    /** Data bus busy for @p coreCycles: active-standby delta. Kept
     *  out of the background bucket — it is not gateable. */
    void
    onBusBusy(Cycle coreCycles, EnergyStats *to = nullptr)
    {
        (to ? *to : energy_)
            .addActiveStandby(actStandbyDeltaPJPerCycle_ *
                              static_cast<double>(coreCycles));
    }

    /** Fold a channel shard's accumulated energy into the device
     *  totals (see the command-hook comment). */
    void absorb(const EnergyStats &shard) { energy_.merge(shard); }

    // ------------------------------------------------- slice gating
    /**
     * Fraction of the device's slices currently power-gated
     * (0 = fully on). Settles background/refresh up to @p now at the
     * old fraction first.
     */
    void setGatedSliceFraction(double fraction, Cycle now);

    double gatedSliceFraction() const { return gatedFraction_; }

    // ------------------------------------------------------- queries
    /** Integrate background/refresh up to @p now and publish the
     *  energy counters into the owning device's StatSet. */
    void finalize(Cycle now);

    /** Accumulated energy since the last resetStats(). Background and
     *  refresh are current as of the last finalize()/query call. */
    const EnergyStats &energy() const { return energy_; }

    /** Mean device power over [resetStats, now]. */
    double averagePowerWatts(Cycle now);

    /** Total accumulated energy including background up to @p now. */
    double totalEnergyPJ(Cycle now);

    /** Present-rate background + refresh power draw (gating applied). */
    double
    backgroundRefreshWatts() const
    {
        return (backgroundFloorWatts_ + refreshWatts_) *
               (1.0 - gatedFraction_);
    }

    /** Zero all energy; integration restarts at @p now. The gating
     *  state is preserved (it is device state, not a statistic). */
    void resetStats(Cycle now);

    // Derived per-operation constants, exposed for tests.
    double actPrePJ() const { return actPrePJ_; }
    double readPJPerByte() const { return readPJPerByte_; }
    double writePJPerByte() const { return writePJPerByte_; }
    /** Ungated whole-device background floor (precharge standby). */
    double backgroundFloorWatts() const { return backgroundFloorWatts_; }
    /** Ungated whole-device average refresh power. */
    double refreshWatts() const { return refreshWatts_; }

  private:
    /** Accrue background floor + refresh over [lastIntegrate_, now]. */
    void integrateTo(Cycle now);

    EnergyStats energy_;
    double gatedFraction_ = 0.0;
    Cycle lastIntegrate_ = 0;
    Cycle statsStart_ = 0;

    // Derived constants (see power_params.hh for the formulas).
    double actPrePJ_;
    double readPJPerByte_;
    double writePJPerByte_;
    double actStandbyDeltaPJPerCycle_;
    double backgroundFloorWatts_;
    double refreshWatts_;

    StatSet &stats_;
};

} // namespace banshee

#endif // BANSHEE_POWER_POWER_MODEL_HH
