#include "power/power_model.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"

namespace banshee {

namespace {

constexpr double kNsPerCoreCycle = 1e9 / kCoreFreqHz;

/** mA * V * ns = pJ; mA * V = mW; mW / 1000 = W. */
constexpr double kMilliwattToWatt = 1e-3;

} // namespace

DramPowerModel::DramPowerModel(const DramPowerParams &params,
                               const DramTiming &timing,
                               std::uint32_t numChannels, StatSet &stats)
    : stats_(stats)
{
    sim_assert(numChannels > 0, "power model needs >= 1 channel");
    const double chans = static_cast<double>(numChannels);
    const double tCkNs = timing.dramCycleCoreCycles * kNsPerCoreCycle;
    const double tRasNs = timing.scaledRAS() * tCkNs;
    const double tRcNs = (timing.scaledRAS() + timing.scaledRP()) * tCkNs;

    // One ACT+PRE pair: IDD0 over tRC minus the standby current that
    // would have flowed anyway (active standby during tRAS, precharge
    // standby during tRP).
    actPrePJ_ = params.vdd * (params.idd0 * tRcNs -
                              params.idd3n * tRasNs -
                              params.idd2n * (tRcNs - tRasNs));
    actPrePJ_ = std::max(actPrePJ_, 0.0);

    // Burst energy above active standby, per byte, plus interface.
    const double burstReadPJPerCycle =
        params.vdd * (params.idd4r - params.idd3n) * tCkNs;
    const double burstWritePJPerCycle =
        params.vdd * (params.idd4w - params.idd3n) * tCkNs;
    readPJPerByte_ = burstReadPJPerCycle / timing.busBytesPerCycle +
                     params.ioPJPerBit * 8.0;
    writePJPerByte_ = burstWritePJPerCycle / timing.busBytesPerCycle +
                      params.ioPJPerBit * 8.0;

    actStandbyDeltaPJPerCycle_ =
        params.vdd * (params.idd3n - params.idd2n) * kNsPerCoreCycle;

    backgroundFloorWatts_ =
        params.vdd * params.idd2n * kMilliwattToWatt * chans;
    refreshWatts_ = params.vdd * (params.idd5 - params.idd2n) *
                    (params.tRfcNs / params.tRefiNs) * kMilliwattToWatt *
                    chans;
}

void
DramPowerModel::integrateTo(Cycle now)
{
    if (now <= lastIntegrate_)
        return;
    const double ns =
        static_cast<double>(now - lastIntegrate_) * kNsPerCoreCycle;
    const double on = 1.0 - gatedFraction_;
    // W * ns = nJ; * 1000 = pJ.
    energy_.addBackground(backgroundFloorWatts_ * on * ns * 1e3);
    energy_.addRefresh(refreshWatts_ * on * ns * 1e3);
    lastIntegrate_ = now;
}

void
DramPowerModel::setGatedSliceFraction(double fraction, Cycle now)
{
    sim_assert(fraction >= 0.0 && fraction <= 1.0,
               "bad gated fraction %f", fraction);
    integrateTo(now);
    gatedFraction_ = fraction;
}

void
DramPowerModel::finalize(Cycle now)
{
    integrateTo(now);
    for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
        stats_.counter("energy." +
                       std::string(trafficCatName(
                           static_cast<TrafficCat>(c))) +
                       "_pJ")
            .set(static_cast<std::uint64_t>(
                energy_.dynamicPJ(static_cast<TrafficCat>(c))));
    }
    stats_.counter("energy.background_pJ")
        .set(static_cast<std::uint64_t>(energy_.backgroundPJ()));
    stats_.counter("energy.refresh_pJ")
        .set(static_cast<std::uint64_t>(energy_.refreshPJ()));
    stats_.counter("energy.activeStandby_pJ")
        .set(static_cast<std::uint64_t>(energy_.activeStandbyPJ()));
    stats_.counter("energy.total_pJ")
        .set(static_cast<std::uint64_t>(energy_.totalPJ()));
}

double
DramPowerModel::totalEnergyPJ(Cycle now)
{
    integrateTo(now);
    return energy_.totalPJ();
}

double
DramPowerModel::averagePowerWatts(Cycle now)
{
    integrateTo(now);
    if (now <= statsStart_)
        return 0.0;
    const double ns =
        static_cast<double>(now - statsStart_) * kNsPerCoreCycle;
    // pJ / ns = mW.
    return energy_.totalPJ() / ns * kMilliwattToWatt;
}

void
DramPowerModel::resetStats(Cycle now)
{
    energy_.reset();
    lastIntegrate_ = now;
    statsStart_ = now;
}

} // namespace banshee
