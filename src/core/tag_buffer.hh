/**
 * @file
 * The Tag Buffer (paper Section 3.3, Figure 2).
 *
 * A small set-associative SRAM structure in each memory controller
 * holding the mapping of recently remapped pages (remap bit set) plus
 * opportunistic clean copies of mappings for pages likely to produce
 * LLC dirty evictions (remap bit clear). Clean entries are replaceable
 * (LRU among remap==0); remapped entries may only leave through a
 * harvest, i.e. the software PTE-update routine.
 */

#ifndef BANSHEE_CORE_TAG_BUFFER_HH
#define BANSHEE_CORE_TAG_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "os/page_table.hh"

namespace banshee {

struct TagBufferParams
{
    std::uint32_t entries = 1024;
    std::uint32_t ways = 8;
    /** Fraction of remapped entries that triggers the PTE update. */
    double flushThreshold = 0.7;
};

class TagBuffer
{
  public:
    TagBuffer(const TagBufferParams &params, std::string name);

    /** Mapping lookup; updates LRU state on hit. */
    std::optional<PageMapping> lookup(PageNum page);

    /**
     * Record a remap (remap bit set). Fails (returns false) only when
     * the set has no invalid or clean entry to displace — the caller
     * must then refuse the replacement.
     */
    bool insertRemap(PageNum page, PageMapping mapping);

    /**
     * Opportunistically cache a PTE-consistent mapping (remap clear),
     * displacing only invalid or clean entries. No effect if the set
     * is full of remapped entries.
     */
    void insertClean(PageNum page, PageMapping mapping);

    /** True if @p n more remap insertions are guaranteed to succeed. */
    bool canAcceptRemaps(std::uint32_t n) const;

    /**
     * Exact per-set admission check for the two remap insertions a
     * replacement produces (the inserted page, and the victim when
     * one exists). A replacement must not start unless both fit.
     */
    bool canInsertRemapPair(PageNum a, bool hasB, PageNum b) const;

    /** True once the remap population crosses the flush threshold. */
    bool
    needsFlush() const
    {
        return remapCount_ >= static_cast<std::uint32_t>(
                                  params_.flushThreshold * params_.entries);
    }

    /**
     * The PTE-update routine: returns all remapped pages and clears
     * their remap bits (entries stay valid as clean mapping copies).
     */
    std::vector<PageNum> harvest();

    std::uint32_t remapCount() const { return remapCount_; }
    std::uint32_t capacity() const { return params_.entries; }

    double
    occupancy() const
    {
        return static_cast<double>(remapCount_) / params_.entries;
    }

    StatSet &stats() { return stats_; }

    std::uint64_t hits() const { return statHits_.value(); }
    std::uint64_t misses() const { return statMisses_.value(); }

  private:
    struct Entry
    {
        PageNum page = 0;
        PageMapping mapping;
        std::uint64_t stamp = 0;
        bool valid = false;
        bool remap = false;
    };

    Entry *set(PageNum page);
    const Entry *set(PageNum page) const;
    Entry *find(PageNum page);

    TagBufferParams params_;
    std::uint32_t numSets_;
    std::vector<Entry> entries_;
    std::uint32_t remapCount_ = 0;
    std::uint64_t stampCounter_ = 1;

    StatSet stats_;
    Counter &statHits_;
    Counter &statMisses_;
    Counter &statRemapInserts_;
    Counter &statCleanInserts_;
    Counter &statHarvests_;
    Counter &statInsertFails_;
};

} // namespace banshee

#endif // BANSHEE_CORE_TAG_BUFFER_HH
