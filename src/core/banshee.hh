/**
 * @file
 * The Banshee DRAM cache scheme (paper Sections 3 and 4).
 *
 * Demand path: the request's PTE/TLB mapping bits are overridden by a
 * Tag Buffer hit; a hit moves exactly 64 B from in-package DRAM, a
 * miss moves exactly 64 B from off-package DRAM — no tag probe, no
 * speculative load (Table 1's "Traffic 64B / 0B" row).
 *
 * Replacement: frequency-based with sampled counter maintenance
 * (Algorithm 1). An access is sampled with probability
 * recent_miss_rate x sampling_coefficient; only then is the 32 B set
 * metadata read and written. A candidate replaces the coldest cached
 * way only when its counter leads by `threshold =
 * lines_per_page x coefficient / 2`, which bounds replacement churn.
 * Both the incoming and outgoing page enter the Tag Buffer as
 * remapped entries; when the buffer passes its fill threshold the OS
 * routine batch-commits PTEs and shoots down TLBs (lazy coherence).
 *
 * Ablations used by Figure 7 are selectable: LruEveryMiss (Unison-
 * style management without footprints) and FbrNoSample (CHOP-style
 * per-access counters).
 *
 * Large (2 MB) pages (Section 4.3) reuse the same machinery with
 * pageBits = 21, a smaller sampling coefficient and a proportionally
 * larger threshold.
 */

#ifndef BANSHEE_CORE_BANSHEE_HH
#define BANSHEE_CORE_BANSHEE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "core/fbr_directory.hh"
#include "core/tag_buffer.hh"
#include "mem/scheme.hh"
#include "resize/resize_domain.hh"
#include "resize/resize_host.hh"

namespace banshee {

struct BansheeConfig
{
    enum class Policy : std::uint8_t
    {
        Fbr,          ///< the real design: sampled FBR
        FbrNoSample,  ///< ablation: counters on every access
        LruEveryMiss  ///< ablation: LRU + replace on every miss
    };

    std::uint32_t ways = 4;
    std::uint32_t numCandidates = 5;
    std::uint32_t counterBits = 5;
    double samplingCoeff = 0.1;
    /** < 0 selects the paper's default lines*coeff/2. */
    double replaceThreshold = -1.0;
    std::uint32_t pageBits = kPageBits; ///< 12 = 4 KB, 21 = 2 MB
    TagBufferParams tagBuffer;
    Policy policy = Policy::Fbr;
    /** Verify the lazy-coherence invariant on every access (tests). */
    bool checkStaleInvariant = false;
    /** Halve all FBR counters when a shrink commits, so the slimmer
     *  cache's resident set re-earns its standing instead of the
     *  pre-shrink counts freezing out every re-admission candidate.
     *  Off by default: the decay changes post-shrink dynamics that
     *  the seed resize/power-cap behavior (and its tests) pin. */
    bool fbrDecayOnShrink = false;
};

class BansheeScheme : public DramCacheScheme, public ResizeHost
{
  public:
    BansheeScheme(const SchemeContext &ctx, const BansheeConfig &config);

    void demandFetch(LineAddr line, const MappingInfo &mapping, CoreId core,
                     MissDoneFn done) override;
    void demandWriteback(LineAddr line) override;

    /** Banshee supports dynamic resizing (lazy-remap machinery). */
    ResizeHost *resizeHost() override { return this; }

    // ResizeHost interface (see resize/resize_host.hh). The resize
    // subsystem drains frames through these; traffic is charged as
    // TrafficCat::Migration and the un-mappings ride the tag buffer's
    // lazy PTE-commit path like any replacement victim's.
    std::uint32_t numSets() const override { return dir_.numSets(); }
    void forEachResident(
        const std::function<void(std::uint32_t, std::uint32_t, PageNum,
                                 bool)> &fn) override;
    bool residentAt(std::uint32_t setIdx, std::uint32_t way,
                    PageNum page) override;
    bool canEvictFrame(PageNum page) const override;
    bool evictFrame(std::uint32_t setIdx, std::uint32_t way) override;
    void requestMappingCommit() override;
    void onCapacityLoss() override;
    void
    attachResizeDomain(ResizeDomain *domain) override
    {
        resizeDomain_ = domain;
    }
    std::uint64_t demandAccesses() const override { return accesses(); }
    std::uint64_t demandMisses() const override { return misses(); }
    std::uint64_t
    demandAccessesOf(TenantId t) const override
    {
        return tenantAccesses(t);
    }
    std::uint64_t
    demandMissesOf(TenantId t) const override
    {
        return tenantMisses(t);
    }
    /** Owner of a scheme-granularity page (slice placement + stats). */
    TenantId
    pageTenant(PageNum page) const override
    {
        return tenantOfAddr(pageAddr(page));
    }
    void verifyResidencyConsistent() override;

    /** Effective replacement threshold (counter lead required). */
    double threshold() const { return threshold_; }

    /** Current adaptive sampling rate = miss-rate EWMA x coefficient. */
    double currentSampleRate() const;

    TagBuffer &tagBuffer() { return tagBuffer_; }
    FbrDirectory &directory() { return dir_; }

    bool replacementsLocked() const { return replacementsLocked_; }

    /** Mapping-memo observability (tests/microbenches; plain members,
     *  not StatSet, so enabling them can't perturb any report). */
    std::uint64_t setMemoHits() const { return memoHits_; }
    std::uint64_t setMemoLookups() const { return memoLookups_; }

    /** Freeze/unfreeze replacements (driven by the OS routine). */
    void setReplacementsLocked(bool locked) { replacementsLocked_ = locked; }

    std::uint64_t pagesInserted() const { return statInserts_.value(); }

    /**
     * Set index. The page number is mixed with a Fibonacci hash
     * before taking the modulus: this models the effectively random
     * virtual-to-physical frame placement a real OS produces.
     * Without it, identity-mapped private heaps (which start at large
     * power-of-two boundaries) would alias every core onto the same
     * few sets — an artifact no real system exhibits.
     *
     * With resizing enabled the mixed hash becomes the offset within
     * a consistent-hash-chosen slice instead of a modulus over all
     * sets (see ResizeDomain::setOf), so capacity changes remap only
     * the resized fraction of pages.
     */
    std::uint32_t
    setOf(PageNum page) const
    {
        const std::uint64_t h =
            (page / ctx_.numMcs) * 0x9e3779b97f4a7c15ull;
        if (resizeDomain_)
            return resizeDomain_->setOf(page, h >> 32);
        return static_cast<std::uint32_t>((h >> 32) % dir_.numSets());
    }

    /**
     * Memoized setOf for the demand path. Each core's accesses have
     * page locality (64 lines per 4 KB page), so a per-core MRU
     * (page, set) pair short-circuits the pin lookup + ring walk +
     * hash on most fetches. setOf is pure in (page, layout
     * generation): an entry is served only while the resize domain's
     * layoutGeneration() still matches the one it was computed under
     * (constant 0 without resizing), so hits are byte-identical to
     * recomputation by construction.
     */
    std::uint32_t
    setOfMemo(PageNum page, CoreId core)
    {
        const std::uint64_t gen =
            resizeDomain_ ? resizeDomain_->layoutGeneration() : 0;
        if (core >= setMemo_.size())
            setMemo_.resize(core + 1);
        SetMemoEntry &e = setMemo_[core];
        ++memoLookups_;
        if (e.page == page && e.generation == gen) {
            ++memoHits_;
            return e.setIdx;
        }
        const std::uint32_t idx = setOf(page);
        e = SetMemoEntry{page, gen, idx};
        return idx;
    }

  private:
    /** Scheme-granularity page number of a 64 B line. */
    PageNum
    pageOfLine64(LineAddr line) const
    {
        return lineToAddr(line) >> config_.pageBits;
    }

    /** Device address of a page frame (set, way) on this channel. */
    Addr
    frameAddr(std::uint32_t setIdx, std::uint32_t way) const
    {
        return (static_cast<Addr>(setIdx) * config_.ways + way)
               << config_.pageBits;
    }

    /** Device address of a set's 32 B metadata in the tag rows. */
    Addr
    metaAddr(std::uint32_t setIdx) const
    {
        return metaBase_ + static_cast<Addr>(setIdx) * 32;
    }

    /** Off-package byte address of a page. */
    Addr
    pageAddr(PageNum page) const
    {
        return static_cast<Addr>(page) << config_.pageBits;
    }

    /**
     * Resolve the authoritative mapping: Tag Buffer first, then the
     * page table (whose committed view is guaranteed fresh when the
     * Tag Buffer misses). Optionally checks the invariant that a
     * request carrying stale bits implies a Tag Buffer hit.
     * @p tbHit (optional) reports whether the Tag Buffer answered —
     * lookup() touches LRU state, so callers must not probe twice.
     */
    PageMapping resolveMapping(PageNum page, const MappingInfo &carried,
                               bool insertCleanOnMiss,
                               bool *tbHit = nullptr);

    /** Algorithm 1: sampling, counter maintenance, replacement. */
    void fbrSampleAndReplace(PageNum page, std::uint32_t setIdx, bool hit,
                             std::uint8_t hitWay, TenantId tenant);

    /** LRU ablation: touch on access, replace on every miss. */
    void lruTouchAndReplace(PageNum page, std::uint32_t setIdx, bool hit,
                            std::uint8_t hitWay, TenantId tenant);

    /** Move @p page into (set, way); handles victim + tag buffer. */
    void executeReplacement(PageNum page, std::uint32_t setIdx,
                            std::uint32_t way, TenantId tenant);

    /** Charge a 32 B metadata read + write pair. */
    void chargeMetadataRw(std::uint32_t setIdx, TrafficCat cat,
                          TenantId tenant,
                          PageNum spanPage = kNoSpanPage);

    struct SetMemoEntry
    {
        PageNum page = ~0ull;
        std::uint64_t generation = 0;
        std::uint32_t setIdx = 0;
    };

    BansheeConfig config_;
    FbrDirectory dir_;
    TagBuffer tagBuffer_;
    ResizeDomain *resizeDomain_ = nullptr;
    double threshold_;
    double coeffOverTwo_; ///< cached candidate-overtake constant
    EwmaRatio missRate_;
    bool replacementsLocked_ = false;
    std::uint64_t lruStampCounter_ = 1;
    std::uint32_t pageBytes_;
    Addr metaBase_;
    /** Per-core MRU page->set memo (grown on first use per core). */
    std::vector<SetMemoEntry> setMemo_;
    std::uint64_t memoHits_ = 0;
    std::uint64_t memoLookups_ = 0;

    Counter &statSampled_;
    Counter &statInserts_;
    Counter &statEvictions_;
    Counter &statDirtyEvictions_;
    Counter &statReplacementsBlocked_;
    Counter &statTagProbes_;
    Counter &statCandidateTakeovers_;
    Counter &statCounterOverflows_;
    Counter &statStaleMappingsServed_;
    Counter &statResizeEvictions_;
    Counter &statResizeDirtyWritebacks_;
};

} // namespace banshee

#endif // BANSHEE_CORE_BANSHEE_HH
