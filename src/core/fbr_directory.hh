/**
 * @file
 * Per-set frequency-based-replacement metadata (paper Fig. 3, §4.1).
 *
 * Each DRAM cache set keeps 32 bytes of metadata in a tag row:
 * tags + 5-bit frequency counters + valid/dirty bits for the cached
 * ways, and tags + counters for a few candidate pages that are not
 * cached but are being considered. metadataBitsPerSet() verifies the
 * paper's packing claim (4 cached + 5 candidates fit in 32 B).
 *
 * The directory stores the *functional* state; the DRAM traffic for
 * reading/writing it is charged by the scheme.
 */

#ifndef BANSHEE_CORE_FBR_DIRECTORY_HH
#define BANSHEE_CORE_FBR_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace banshee {

struct FbrParams
{
    std::uint32_t numSets = 2048;
    std::uint32_t ways = 4;
    std::uint32_t numCandidates = 5;
    std::uint32_t counterBits = 5;
};

/**
 * Compute the metadata bits one set needs (paper footnote 1):
 * a cached entry is tag + counter + valid + dirty; a candidate entry
 * is tag + counter. With 48-bit addresses, 2^16 sets and 4 KB pages
 * the tag is 20 bits, giving 4*27 + 5*25 = 233 bits <= 256 (32 B).
 */
constexpr std::uint32_t
metadataBitsPerSet(std::uint32_t tagBits, std::uint32_t counterBits,
                   std::uint32_t ways, std::uint32_t numCandidates)
{
    const std::uint32_t cached = tagBits + counterBits + 2;
    const std::uint32_t candidate = tagBits + counterBits;
    return ways * cached + numCandidates * candidate;
}

class FbrDirectory
{
  public:
    struct CachedEntry
    {
        PageNum tag = 0;
        std::uint32_t count = 0;
        std::uint64_t lruStamp = 0; ///< for the LRU ablation only
        bool valid = false;
        bool dirty = false;
    };

    struct CandidateEntry
    {
        PageNum tag = 0;
        std::uint32_t count = 0;
        bool valid = false;
    };

    explicit FbrDirectory(const FbrParams &params);

    std::uint32_t numSets() const { return params_.numSets; }
    std::uint32_t ways() const { return params_.ways; }
    std::uint32_t numCandidates() const { return params_.numCandidates; }
    std::uint32_t maxCount() const { return (1u << params_.counterBits) - 1; }

    CachedEntry &
    cached(std::uint32_t setIdx, std::uint32_t way)
    {
        return cached_[static_cast<std::uint64_t>(setIdx) * params_.ways +
                       way];
    }

    CandidateEntry &
    candidate(std::uint32_t setIdx, std::uint32_t slot)
    {
        return cands_[static_cast<std::uint64_t>(setIdx) *
                          params_.numCandidates +
                      slot];
    }

    /** Way holding @p page, if cached. */
    std::optional<std::uint32_t> findCached(std::uint32_t setIdx,
                                            PageNum page);

    /** Candidate slot holding @p page, if tracked. */
    std::optional<std::uint32_t> findCandidate(std::uint32_t setIdx,
                                               PageNum page);

    /**
     * Way with the smallest counter; invalid ways count as zero so
     * cold sets fill up first.
     */
    std::uint32_t minCountWay(std::uint32_t setIdx);

    /** Counter value of @p way (0 if invalid). */
    std::uint32_t
    wayCount(std::uint32_t setIdx, std::uint32_t way)
    {
        const CachedEntry &e = cached(setIdx, way);
        return e.valid ? e.count : 0;
    }

    /** Halve every counter in the set (counter saturation, Alg. 1). */
    void halveAll(std::uint32_t setIdx);

    /**
     * Saturating increment of a cached way's counter.
     * @return true if the counter saturated (caller then halves).
     */
    bool incrementCached(std::uint32_t setIdx, std::uint32_t way);

    /** Saturating increment of a candidate's counter. */
    bool incrementCandidate(std::uint32_t setIdx, std::uint32_t slot);

    /**
     * Swap a candidate into a way: the way's old occupant (tag+count)
     * moves into the candidate slot (paper: the evicted page remains
     * tracked so it must out-score the threshold to come back).
     * @return the evicted entry (valid=false if the way was empty).
     */
    CachedEntry promote(std::uint32_t setIdx, std::uint32_t way,
                        std::uint32_t slot);

    /** Number of valid cached entries across all sets (tests). */
    std::uint64_t validCachedCount() const;

    /**
     * Visit every valid cached frame: fn(set, way, entry). Used by
     * the resize subsystem to find pages whose slice changed.
     */
    void forEachValid(
        const std::function<void(std::uint32_t, std::uint32_t,
                                 const CachedEntry &)> &fn) const;

    /** Drop a frame (resize drain); no-op if already invalid. */
    void
    invalidate(std::uint32_t setIdx, std::uint32_t way)
    {
        cached(setIdx, way) = CachedEntry{};
    }

  private:
    FbrParams params_;
    std::vector<CachedEntry> cached_;
    std::vector<CandidateEntry> cands_;
};

} // namespace banshee

#endif // BANSHEE_CORE_FBR_DIRECTORY_HH
