#include "core/fbr_directory.hh"

namespace banshee {

FbrDirectory::FbrDirectory(const FbrParams &params) : params_(params)
{
    sim_assert(params.ways > 0 && params.numSets > 0, "bad FBR geometry");
    sim_assert(params.counterBits >= 2 && params.counterBits <= 16,
               "counter bits out of range");
    cached_.assign(
        static_cast<std::uint64_t>(params.numSets) * params.ways,
        CachedEntry{});
    cands_.assign(
        static_cast<std::uint64_t>(params.numSets) * params.numCandidates,
        CandidateEntry{});
}

std::optional<std::uint32_t>
FbrDirectory::findCached(std::uint32_t setIdx, PageNum page)
{
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        const CachedEntry &e = cached(setIdx, w);
        if (e.valid && e.tag == page)
            return w;
    }
    return std::nullopt;
}

std::optional<std::uint32_t>
FbrDirectory::findCandidate(std::uint32_t setIdx, PageNum page)
{
    for (std::uint32_t s = 0; s < params_.numCandidates; ++s) {
        const CandidateEntry &e = candidate(setIdx, s);
        if (e.valid && e.tag == page)
            return s;
    }
    return std::nullopt;
}

std::uint32_t
FbrDirectory::minCountWay(std::uint32_t setIdx)
{
    std::uint32_t best = 0;
    std::uint32_t bestCount = wayCount(setIdx, 0);
    for (std::uint32_t w = 1; w < params_.ways; ++w) {
        const std::uint32_t c = wayCount(setIdx, w);
        if (c < bestCount) {
            bestCount = c;
            best = w;
        }
    }
    return best;
}

void
FbrDirectory::halveAll(std::uint32_t setIdx)
{
    for (std::uint32_t w = 0; w < params_.ways; ++w)
        cached(setIdx, w).count /= 2;
    for (std::uint32_t s = 0; s < params_.numCandidates; ++s)
        candidate(setIdx, s).count /= 2;
}

bool
FbrDirectory::incrementCached(std::uint32_t setIdx, std::uint32_t way)
{
    CachedEntry &e = cached(setIdx, way);
    if (e.count < maxCount())
        ++e.count;
    return e.count == maxCount();
}

bool
FbrDirectory::incrementCandidate(std::uint32_t setIdx, std::uint32_t slot)
{
    CandidateEntry &e = candidate(setIdx, slot);
    if (e.count < maxCount())
        ++e.count;
    return e.count == maxCount();
}

FbrDirectory::CachedEntry
FbrDirectory::promote(std::uint32_t setIdx, std::uint32_t way,
                      std::uint32_t slot)
{
    CachedEntry &w = cached(setIdx, way);
    CandidateEntry &c = candidate(setIdx, slot);
    sim_assert(c.valid, "promoting an invalid candidate");

    const CachedEntry evicted = w;

    w.tag = c.tag;
    w.count = c.count;
    w.valid = true;
    w.dirty = false;
    w.lruStamp = 0;

    if (evicted.valid) {
        c.tag = evicted.tag;
        c.count = evicted.count;
        c.valid = true;
    } else {
        c.valid = false;
        c.count = 0;
    }
    return evicted;
}

void
FbrDirectory::forEachValid(
    const std::function<void(std::uint32_t, std::uint32_t,
                             const CachedEntry &)> &fn) const
{
    for (std::uint32_t set = 0; set < params_.numSets; ++set) {
        for (std::uint32_t w = 0; w < params_.ways; ++w) {
            const CachedEntry &e =
                cached_[static_cast<std::uint64_t>(set) * params_.ways + w];
            if (e.valid)
                fn(set, w, e);
        }
    }
}

std::uint64_t
FbrDirectory::validCachedCount() const
{
    std::uint64_t n = 0;
    for (const auto &e : cached_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace banshee
