#include "core/banshee.hh"

#include <algorithm>

#include "common/log.hh"
#include "schemes/batman.hh"

namespace banshee {

namespace {

FbrParams
makeFbrParams(const SchemeContext &ctx, const BansheeConfig &config)
{
    FbrParams p;
    p.ways = config.ways;
    p.numCandidates = config.numCandidates;
    p.counterBits = config.counterBits;
    const std::uint64_t pageBytes = 1ull << config.pageBits;
    const std::uint64_t frames = ctx.cacheBytesPerMc / pageBytes;
    sim_assert(frames >= config.ways,
               "cache partition smaller than one set");
    p.numSets = static_cast<std::uint32_t>(frames / config.ways);
    return p;
}

} // namespace

BansheeScheme::BansheeScheme(const SchemeContext &ctx,
                             const BansheeConfig &config)
    : DramCacheScheme(ctx, "banshee"), config_(config),
      dir_(makeFbrParams(ctx, config)),
      tagBuffer_(config.tagBuffer,
                 "tagBuffer" + std::to_string(ctx.mcId)),
      missRate_(256, 0.25, 1.0),
      pageBytes_(1u << config.pageBits),
      metaBase_(ctx.cacheBytesPerMc),
      statSampled_(stats_.counter("sampledAccesses")),
      statInserts_(stats_.counter("pagesInserted")),
      statEvictions_(stats_.counter("pagesEvicted")),
      statDirtyEvictions_(stats_.counter("dirtyPagesEvicted")),
      statReplacementsBlocked_(stats_.counter("replacementsBlocked")),
      statTagProbes_(stats_.counter("writebackTagProbes")),
      statCandidateTakeovers_(stats_.counter("candidateTakeovers")),
      statCounterOverflows_(stats_.counter("counterOverflows")),
      statStaleMappingsServed_(stats_.counter("staleMappingsServed")),
      statResizeEvictions_(stats_.counter("resizeEvictions")),
      statResizeDirtyWritebacks_(stats_.counter("resizeDirtyWritebacks"))
{
    const double lines = static_cast<double>(pageBytes_) / kLineBytes;
    threshold_ = config.replaceThreshold >= 0.0
                     ? config.replaceThreshold
                     : lines * config.samplingCoeff / 2.0;
    coeffOverTwo_ = threshold_;

    if (ctx_.os) {
        ctx_.os->registerTagBufferHarvester(
            [this] { return tagBuffer_.harvest(); });
        ctx_.os->registerReplacementLock(
            [this](bool locked) { setReplacementsLocked(locked); });
    }
}

double
BansheeScheme::currentSampleRate() const
{
    switch (config_.policy) {
      case BansheeConfig::Policy::Fbr:
        return std::min(1.0, missRate_.value() * config_.samplingCoeff);
      case BansheeConfig::Policy::FbrNoSample:
        return 1.0;
      case BansheeConfig::Policy::LruEveryMiss:
        return 1.0;
    }
    return 1.0;
}

PageMapping
BansheeScheme::resolveMapping(PageNum page, const MappingInfo &carried,
                              bool insertCleanOnMiss, bool *tbHit)
{
    if (auto tb = tagBuffer_.lookup(page)) {
        if (tbHit)
            *tbHit = true;
        return *tb;
    }

    // Tag Buffer miss: the lazy-coherence invariant guarantees the
    // PTEs are up to date for this page.
    const PageMapping fresh = ctx_.pageTable->currentMapping(page);
    if (config_.checkStaleInvariant) {
        sim_assert(!ctx_.pageTable->isStale(page),
                   "stale PTE without a tag-buffer entry (page %llx)",
                   static_cast<unsigned long long>(page));
        if (carried.valid &&
            (carried.cached != fresh.cached ||
             (fresh.cached && carried.way != fresh.way))) {
            // A request carried stale bits yet the buffer missed:
            // the design's safety argument would be broken.
            panic("request carried stale mapping that the tag buffer "
                  "did not correct (page %llx)",
                  static_cast<unsigned long long>(page));
        }
    }
    if (carried.valid && ctx_.pageTable->isStale(page))
        ++statStaleMappingsServed_;

    if (insertCleanOnMiss)
        tagBuffer_.insertClean(page, fresh);
    return fresh;
}

void
BansheeScheme::chargeMetadataRw(std::uint32_t setIdx, TrafficCat cat,
                                TenantId tenant, PageNum spanPage)
{
    inPkgAccess(metaAddr(setIdx), 32, 0, false, cat, nullptr, tenant,
                spanPage);
    inPkgAccess(metaAddr(setIdx), 32, 0, true, cat, nullptr, tenant,
                spanPage);
}

void
BansheeScheme::demandFetch(LineAddr line, const MappingInfo &mapping,
                           CoreId core, MissDoneFn done)
{
    const PageNum page = pageOfLine64(line);
    const TenantId tenant = tenantOfAddr(lineToAddr(line));
    const std::uint32_t setIdx = setOfMemo(page, core);
    bool tbHit = false;
    const PageMapping m = resolveMapping(page, mapping, true, &tbHit);

    recordAccess(m.cached, tenant);
    missRate_.record(!m.cached);

    const PageNum spanPage = spanPageOf(page);
    if (spanPage != kNoSpanPage) {
        spans_->pageInstant(page, "access", ctx_.eq->now(),
                            {{"tb", tbHit ? "hit" : "miss"},
                             {"cache", m.cached ? "hit" : "miss"},
                             {"tenant", static_cast<std::uint32_t>(tenant)}});
    }

    if (config_.policy == BansheeConfig::Policy::LruEveryMiss)
        lruTouchAndReplace(page, setIdx, m.cached, m.way, tenant);
    else
        fbrSampleAndReplace(page, setIdx, m.cached, m.way, tenant);

    if (m.cached) {
        const Addr dev = frameAddr(setIdx, m.way) +
                         (lineToAddr(line) & (pageBytes_ - 1));
        inPkgAccess(dev, kLineBytes, 0, false, TrafficCat::HitData,
                    std::move(done), tenant, spanPage);
    } else {
        offPkgRead64(line, TrafficCat::Demand, std::move(done), tenant,
                     spanPage);
    }
}

void
BansheeScheme::demandWriteback(LineAddr line)
{
    const PageNum page = pageOfLine64(line);
    const TenantId tenant = tenantOfAddr(lineToAddr(line));
    const std::uint32_t setIdx = setOf(page);
    const PageNum spanPage = spanPageOf(page);

    PageMapping m;
    bool tagProbe = false;
    if (auto tb = tagBuffer_.lookup(page)) {
        m = *tb;
    } else {
        // No mapping anywhere on the eviction path: probe the tags in
        // the DRAM cache (32 B read) and stash a clean copy so the
        // next eviction of this page avoids the probe (Section 3.3).
        ++statTagProbes_;
        tagProbe = true;
        inPkgAccess(metaAddr(setIdx), 32, 32, false, TrafficCat::Tag,
                    nullptr, tenant, spanPage);
        m = ctx_.pageTable->currentMapping(page);
        tagBuffer_.insertClean(page, m);
    }

    if (spanPage != kNoSpanPage) {
        spans_->pageInstant(page, "writeback", ctx_.eq->now(),
                            {{"dest", m.cached ? "inpkg" : "offpkg"},
                             {"tag_probe", tagProbe ? 1 : 0}});
    }

    if (m.cached) {
        const Addr dev = frameAddr(setIdx, m.way) +
                         (lineToAddr(line) & (pageBytes_ - 1));
        inPkgAccess(dev, kLineBytes, 0, true, TrafficCat::HitData, nullptr,
                    tenant, spanPage);
        dir_.cached(setIdx, m.way).dirty = true;
    } else {
        offPkgWrite64(line, TrafficCat::Writeback, tenant, spanPage);
    }
}

void
BansheeScheme::fbrSampleAndReplace(PageNum page, std::uint32_t setIdx,
                                   bool hit, std::uint8_t hitWay,
                                   TenantId tenant)
{
    // BATMAN bandwidth balancing: bypassed pages are not tracked or
    // cached (already-cached ones keep hitting and age out).
    if (!hit && ctx_.batman && ctx_.batman->shouldBypass(page))
        return;
    if (!rng_.nextBool(currentSampleRate()))
        return;

    ++statSampled_;
    const PageNum spanPage = spanPageOf(page);
    chargeMetadataRw(setIdx, TrafficCat::Counter, tenant, spanPage);

    if (hit) {
        // Algorithm 1 lines 5-6: increment; halve all on saturation.
        if (dir_.incrementCached(setIdx, hitWay)) {
            ++statCounterOverflows_;
            dir_.halveAll(setIdx);
        }
        return;
    }

    if (auto slot = dir_.findCandidate(setIdx, page)) {
        const bool saturated = dir_.incrementCandidate(setIdx, *slot);
        const std::uint32_t victimWay = dir_.minCountWay(setIdx);
        const double victimCount = dir_.wayCount(setIdx, victimWay);
        const double candCount = dir_.candidate(setIdx, *slot).count;
        // Algorithm 1 line 7: replace only when the candidate leads
        // the coldest cached page by the bandwidth-aware threshold.
        if (candCount > victimCount + threshold_) {
            // "fbr_admit" records the decision; a tag-buffer-blocked
            // replacement still shows up as admit + repl_blocked.
            if (spanPage != kNoSpanPage) {
                spans_->pageInstant(page, "fbr_admit", ctx_.eq->now(),
                                    {{"cand", candCount},
                                     {"victim", victimCount},
                                     {"threshold", threshold_}});
            }
            executeReplacement(page, setIdx, victimWay, tenant);
        } else if (spanPage != kNoSpanPage) {
            spans_->pageInstant(page, "fbr_reject", ctx_.eq->now(),
                                {{"cand", candCount},
                                 {"victim", victimCount},
                                 {"threshold", threshold_}});
        }
        if (saturated) {
            ++statCounterOverflows_;
            dir_.halveAll(setIdx);
        }
        return;
    }

    // Algorithm 1 lines 17-23: takeover of a random candidate slot
    // with probability 1/victim.count.
    const std::uint32_t slot = static_cast<std::uint32_t>(
        rng_.nextBelow(dir_.numCandidates()));
    FbrDirectory::CandidateEntry &victim = dir_.candidate(setIdx, slot);
    if (!victim.valid || victim.count == 0 ||
        rng_.nextDouble() < 1.0 / victim.count) {
        victim.tag = page;
        victim.count = 1;
        victim.valid = true;
        ++statCandidateTakeovers_;
    }
}

void
BansheeScheme::lruTouchAndReplace(PageNum page, std::uint32_t setIdx,
                                  bool hit, std::uint8_t hitWay,
                                  TenantId tenant)
{
    // LRU bits live in the same tag rows: every access reads and
    // updates them — the bandwidth cost Unison pays (Table 1).
    chargeMetadataRw(setIdx, TrafficCat::Counter, tenant,
                     spanPageOf(page));

    if (hit) {
        dir_.cached(setIdx, hitWay).lruStamp = lruStampCounter_++;
        return;
    }

    // Replace on every miss: victim is the LRU way.
    std::uint32_t victimWay = 0;
    std::uint64_t best = ~0ull;
    for (std::uint32_t w = 0; w < dir_.ways(); ++w) {
        const auto &e = dir_.cached(setIdx, w);
        if (!e.valid) {
            victimWay = w;
            best = 0;
            break;
        }
        if (e.lruStamp < best) {
            best = e.lruStamp;
            victimWay = w;
        }
    }

    // The incoming page must be a candidate slot for promote();
    // fabricate one (slot 0) — the LRU ablation does not track
    // candidate frequency.
    FbrDirectory::CandidateEntry &slot0 = dir_.candidate(setIdx, 0);
    slot0.tag = page;
    slot0.count = 1;
    slot0.valid = true;
    executeReplacement(page, setIdx, victimWay, tenant);
    dir_.cached(setIdx, victimWay).lruStamp = lruStampCounter_++;
}

void
BansheeScheme::executeReplacement(PageNum page, std::uint32_t setIdx,
                                  std::uint32_t way, TenantId tenant)
{
    const FbrDirectory::CachedEntry &pre = dir_.cached(setIdx, way);
    const PageNum spanPage = spanPageOf(page);
    if (replacementsLocked_ || !tagBuffer_.canAcceptRemaps(2) ||
        !tagBuffer_.canInsertRemapPair(page, pre.valid, pre.tag)) {
        ++statReplacementsBlocked_;
        if (spanPage != kNoSpanPage) {
            spans_->pageInstant(page, "repl_blocked", ctx_.eq->now(),
                                {{"locked", replacementsLocked_ ? 1 : 0}});
        }
        if (!replacementsLocked_ && ctx_.os)
            ctx_.os->requestPteUpdate();
        return;
    }

    const auto slot = dir_.findCandidate(setIdx, page);
    sim_assert(slot.has_value(), "replacement without candidate entry");

    // Data movement: fetch the page from off-package DRAM and write
    // it into the frame; a dirty victim makes the round trip back,
    // charged to the victim page's own tenant.
    offPkgBulk(pageAddr(page), pageBytes_, false, TrafficCat::Fill, nullptr,
               tenant, spanPage);
    inPkgBulk(frameAddr(setIdx, way), pageBytes_, true,
              TrafficCat::Replacement, nullptr, tenant, spanPage);

    const FbrDirectory::CachedEntry victim = dir_.promote(setIdx, way,
                                                          *slot);
    ++statInserts_;
    if (spanPage != kNoSpanPage) {
        spans_->residentBegin(page, ctx_.eq->now(),
                              {{"set", setIdx},
                               {"way", way},
                               {"tenant", static_cast<std::uint32_t>(tenant)}});
    }
    if (victim.valid) {
        ++statEvictions_;
        const PageNum victimSpan = spanPageOf(victim.tag);
        if (victim.dirty) {
            ++statDirtyEvictions_;
            const TenantId victimTenant = pageTenant(victim.tag);
            inPkgBulk(frameAddr(setIdx, way), pageBytes_, false,
                      TrafficCat::Replacement, nullptr, victimTenant,
                      victimSpan);
            offPkgBulk(pageAddr(victim.tag), pageBytes_, true,
                       TrafficCat::Writeback, nullptr, victimTenant,
                       victimSpan);
        }
        if (victimSpan != kNoSpanPage) {
            spans_->residentEnd(victim.tag, ctx_.eq->now(), "replaced",
                                victim.dirty);
        }
    }

    // Hardware mapping updates take effect instantly; PTEs learn of
    // them lazily via the tag buffer.
    ctx_.pageTable->setCurrentMapping(
        page, PageMapping{true, static_cast<std::uint8_t>(way)});
    bool ok = tagBuffer_.insertRemap(
        page, PageMapping{true, static_cast<std::uint8_t>(way)});
    sim_assert(ok, "tag buffer rejected remap after capacity check");
    if (victim.valid) {
        ctx_.pageTable->setCurrentMapping(victim.tag, PageMapping{});
        ok = tagBuffer_.insertRemap(victim.tag, PageMapping{});
        sim_assert(ok, "tag buffer rejected victim remap");
        // If the victim was awaiting resize migration its drain is
        // moot; future accesses must use the new slice layout.
        if (resizeDomain_)
            resizeDomain_->notifyFrameEvicted(victim.tag);
    }

    if (tagBuffer_.needsFlush() && ctx_.os)
        ctx_.os->requestPteUpdate();
}

// --------------------------------------------------------------------
// ResizeHost: the hooks the dynamic-resizing subsystem drains through.
// --------------------------------------------------------------------

void
BansheeScheme::forEachResident(
    const std::function<void(std::uint32_t, std::uint32_t, PageNum, bool)>
        &fn)
{
    dir_.forEachValid([&fn](std::uint32_t setIdx, std::uint32_t way,
                            const FbrDirectory::CachedEntry &e) {
        fn(setIdx, way, e.tag, e.dirty);
    });
}

bool
BansheeScheme::residentAt(std::uint32_t setIdx, std::uint32_t way,
                          PageNum page)
{
    const FbrDirectory::CachedEntry &e = dir_.cached(setIdx, way);
    return e.valid && e.tag == page;
}

bool
BansheeScheme::canEvictFrame(PageNum page) const
{
    // Same admission discipline as a replacement: the un-mapping must
    // land in the tag buffer or stale TLB bits could go uncorrected.
    return tagBuffer_.canAcceptRemaps(1) &&
           tagBuffer_.canInsertRemapPair(page, false, 0);
}

bool
BansheeScheme::evictFrame(std::uint32_t setIdx, std::uint32_t way)
{
    FbrDirectory::CachedEntry &e = dir_.cached(setIdx, way);
    sim_assert(e.valid, "resize drain of an empty frame");
    const PageNum page = e.tag;
    const bool wasDirty = e.dirty;

    // A dirty page makes the round trip through the DRAM models so
    // migration competes with demand traffic for bus time; a clean
    // page is dropped for free (its off-package copy is current).
    const PageNum spanPage = spanPageOf(page);
    if (wasDirty) {
        const TenantId tenant = pageTenant(page);
        inPkgBulk(frameAddr(setIdx, way), pageBytes_, false,
                  TrafficCat::Migration, nullptr, tenant, spanPage);
        offPkgBulk(pageAddr(page), pageBytes_, true, TrafficCat::Migration,
                   nullptr, tenant, spanPage);
    }
    if (spanPage != kNoSpanPage)
        spans_->residentEnd(page, ctx_.eq->now(), "migration", wasDirty);
    dir_.invalidate(setIdx, way);
    ++statResizeEvictions_;
    if (wasDirty)
        ++statResizeDirtyWritebacks_;

    // Publish the un-mapping exactly like a replacement victim's:
    // hardware view first, then a tag-buffer remap entry so PTEs and
    // TLBs learn of it at the next batch commit.
    ctx_.pageTable->setCurrentMapping(page, PageMapping{});
    const bool ok = tagBuffer_.insertRemap(page, PageMapping{});
    sim_assert(ok, "tag buffer rejected resize remap after admission check");
    if (tagBuffer_.needsFlush() && ctx_.os)
        ctx_.os->requestPteUpdate();
    return wasDirty;
}

void
BansheeScheme::requestMappingCommit()
{
    if (ctx_.os)
        ctx_.os->requestResizeCommit();
}

void
BansheeScheme::onCapacityLoss()
{
    if (!config_.fbrDecayOnShrink)
        return;
    // Same operation as counter saturation (Alg. 1), applied across
    // the board: relative hotness ordering survives, but the absolute
    // counts that the anti-churn threshold compares against shrink,
    // so pages evicted with the drained slices can re-earn residency
    // instead of the stale resident set staying frozen.
    for (std::uint32_t s = 0; s < dir_.numSets(); ++s)
        dir_.halveAll(s);
}

void
BansheeScheme::verifyResidencyConsistent()
{
    dir_.forEachValid([this](std::uint32_t setIdx, std::uint32_t way,
                             const FbrDirectory::CachedEntry &e) {
        if (resizeDomain_) {
            sim_assert(
                resizeDomain_->sliceActive(resizeDomain_->sliceOfSet(setIdx)),
                "resident frame in an inactive slice (set %u)", setIdx);
        }
        sim_assert(setOf(e.tag) == setIdx,
                   "frame not at its page's home set (page %llx)",
                   static_cast<unsigned long long>(e.tag));
        const PageMapping m = ctx_.pageTable->currentMapping(e.tag);
        sim_assert(m.cached && m.way == way,
                   "directory and page table disagree (page %llx)",
                   static_cast<unsigned long long>(e.tag));
    });
}

} // namespace banshee
