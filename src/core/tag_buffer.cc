#include "core/tag_buffer.hh"

#include "common/log.hh"

namespace banshee {

TagBuffer::TagBuffer(const TagBufferParams &params, std::string name)
    : params_(params), stats_(std::move(name)),
      statHits_(stats_.counter("hits")),
      statMisses_(stats_.counter("misses")),
      statRemapInserts_(stats_.counter("remapInserts")),
      statCleanInserts_(stats_.counter("cleanInserts")),
      statHarvests_(stats_.counter("harvests")),
      statInsertFails_(stats_.counter("insertFails"))
{
    sim_assert(params.entries % params.ways == 0,
               "tag buffer entries not divisible by ways");
    numSets_ = params.entries / params.ways;
    sim_assert(isPow2(numSets_), "tag buffer sets must be a power of two");
    entries_.assign(params.entries, Entry{});
}

TagBuffer::Entry *
TagBuffer::set(PageNum page)
{
    return &entries_[static_cast<std::uint64_t>(page & (numSets_ - 1)) *
                     params_.ways];
}

const TagBuffer::Entry *
TagBuffer::set(PageNum page) const
{
    return const_cast<TagBuffer *>(this)->set(page);
}

TagBuffer::Entry *
TagBuffer::find(PageNum page)
{
    Entry *s = set(page);
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (s[w].valid && s[w].page == page)
            return &s[w];
    }
    return nullptr;
}

std::optional<PageMapping>
TagBuffer::lookup(PageNum page)
{
    Entry *e = find(page);
    if (!e) {
        ++statMisses_;
        return std::nullopt;
    }
    ++statHits_;
    e->stamp = stampCounter_++;
    return e->mapping;
}

bool
TagBuffer::insertRemap(PageNum page, PageMapping mapping)
{
    Entry *e = find(page);
    if (e) {
        e->mapping = mapping;
        e->stamp = stampCounter_++;
        if (!e->remap) {
            e->remap = true;
            ++remapCount_;
        }
        ++statRemapInserts_;
        return true;
    }

    // Prefer an invalid slot; otherwise evict the LRU clean entry
    // (remap entries are pinned until harvested).
    Entry *s = set(page);
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (!s[w].valid) {
            victim = &s[w];
            break;
        }
        if (!s[w].remap && (!victim || s[w].stamp < victim->stamp))
            victim = &s[w];
    }
    if (!victim || (victim->valid && victim->remap)) {
        ++statInsertFails_;
        return false;
    }
    victim->page = page;
    victim->mapping = mapping;
    victim->stamp = stampCounter_++;
    victim->valid = true;
    victim->remap = true;
    ++remapCount_;
    ++statRemapInserts_;
    return true;
}

void
TagBuffer::insertClean(PageNum page, PageMapping mapping)
{
    Entry *e = find(page);
    if (e) {
        // Never downgrade a remapped entry: its mapping is the only
        // up-to-date copy in the system.
        if (!e->remap)
            e->mapping = mapping;
        e->stamp = stampCounter_++;
        return;
    }
    Entry *s = set(page);
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (!s[w].valid) {
            victim = &s[w];
            break;
        }
        if (!s[w].remap && (!victim || s[w].stamp < victim->stamp))
            victim = &s[w];
    }
    if (!victim || (victim->valid && victim->remap))
        return; // set saturated with remaps; clean copy is optional
    victim->page = page;
    victim->mapping = mapping;
    victim->stamp = stampCounter_++;
    victim->valid = true;
    victim->remap = false;
    ++statCleanInserts_;
}

bool
TagBuffer::canInsertRemapPair(PageNum a, bool hasB, PageNum b) const
{
    // Slots needed per set: an existing entry (clean or remapped)
    // upgrades in place; otherwise one displaceable slot is required.
    // Clean entries that already hold a or b are excluded from the
    // free pool: displacing them would invalidate the other page's
    // in-place upgrade (they upgrade, they do not free a slot).
    auto slotsFree = [this, a, hasB, b](const Entry *s) {
        std::uint32_t free = 0;
        for (std::uint32_t w = 0; w < params_.ways; ++w) {
            if (s[w].valid &&
                (s[w].remap || s[w].page == a || (hasB && s[w].page == b)))
                continue;
            ++free;
        }
        return free;
    };
    auto hasEntry = [this](const Entry *s, PageNum p) {
        for (std::uint32_t w = 0; w < params_.ways; ++w)
            if (s[w].valid && s[w].page == p)
                return true;
        return false;
    };

    const Entry *sa = set(a);
    const std::uint32_t needA = hasEntry(sa, a) ? 0 : 1;
    if (!hasB)
        return slotsFree(sa) >= needA;

    const Entry *sb = set(b);
    const std::uint32_t needB = hasEntry(sb, b) ? 0 : 1;
    if (sa == sb)
        return slotsFree(sa) >= needA + needB;
    return slotsFree(sa) >= needA && slotsFree(sb) >= needB;
}

bool
TagBuffer::canAcceptRemaps(std::uint32_t n) const
{
    // Conservative global check used before a replacement commits to
    // producing two remap entries: total remap population must leave
    // room (a per-set check would also be needed in hardware; the
    // per-set insert failure path covers that case).
    return remapCount_ + n <= params_.entries;
}

std::vector<PageNum>
TagBuffer::harvest()
{
    ++statHarvests_;
    std::vector<PageNum> pages;
    pages.reserve(remapCount_);
    for (auto &e : entries_) {
        if (e.valid && e.remap) {
            pages.push_back(e.page);
            e.remap = false;
        }
    }
    remapCount_ = 0;
    return pages;
}

} // namespace banshee
