/**
 * @file
 * Full-system assembly and the warmup/measure run loop.
 *
 * A System wires one SystemConfig into a complete simulated machine:
 * event queue, page table + OS services, DRAM devices + memory
 * controllers + the selected DRAM-cache scheme, cache hierarchy,
 * TLBs, workload generators and cores. run() executes a warmup phase
 * (caches and predictors learn, statistics discarded) followed by a
 * measured phase, and returns a RunResult with everything the
 * benches and tests need.
 */

#ifndef BANSHEE_SIM_SYSTEM_HH
#define BANSHEE_SIM_SYSTEM_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "cpu/core_model.hh"
#include "cpu/tlb.hh"
#include "dram/traffic.hh"
#include "mem/mem_system.hh"
#include "os/os_services.hh"
#include "os/page_table.hh"
#include "resize/resize_controller.hh"
#include "schemes/batman.hh"
#include "sim/system_config.hh"
#include "telemetry/histogram.hh"
#include "tenant/tenant_map.hh"
#include "workload/pattern.hh"

namespace banshee {

class Telemetry;    // telemetry/telemetry.hh
class DomainEngine; // sim/domain_engine.hh

/** One tenant's share of a multi-tenant run's measured statistics. */
struct TenantRunStats
{
    std::string name;
    double weight = 0.0;        ///< configured quota weight
    std::uint32_t cores = 0;

    std::uint64_t instructions = 0;
    Cycle cycles = 0;           ///< slowest of the tenant's cores
    double ipc = 0.0;

    std::uint64_t dramCacheAccesses = 0;
    std::uint64_t dramCacheMisses = 0;
    double missRate = 0.0;

    /** DRAM bytes attributed to this tenant's requests. */
    std::uint64_t inPkgBytes = 0;
    std::uint64_t offPkgBytes = 0;
    /** Dynamic DRAM energy attributed to this tenant's requests. */
    double inPkgDynPJ = 0.0;
    double offPkgDynPJ = 0.0;

    /** Slices owned at the end of the run (0 when unpartitioned). */
    std::uint32_t slicesOwned = 0;

    /** QoS scheduler accounting on the in-package device (zero when
     *  the scheduler is off; see TrafficStats). */
    std::uint64_t qosGrants = 0;
    std::uint64_t qosDefers = 0;
};

/** Everything measured over the measured phase of one run. */
struct RunResult
{
    std::string workload;
    std::string scheme;

    std::uint64_t instructions = 0;
    Cycle cycles = 0;       ///< slowest core's measured cycles
    double ipc = 0.0;       ///< aggregate instructions / cycles

    std::uint64_t dramCacheAccesses = 0;
    std::uint64_t dramCacheMisses = 0;
    double missRate = 0.0;
    double mpki = 0.0;      ///< DRAM cache misses per kilo-instruction
    double llcMpki = 0.0;

    /** Bytes per category (see TrafficCat). */
    std::array<std::uint64_t, kNumTrafficCats> inPkgBytes{};
    std::array<std::uint64_t, kNumTrafficCats> offPkgBytes{};

    /** Dynamic DRAM energy per category (pJ; see DramPowerModel). */
    std::array<double, kNumTrafficCats> inPkgDynPJ{};
    std::array<double, kNumTrafficCats> offPkgDynPJ{};
    double inPkgBackgroundPJ = 0.0;
    double inPkgRefreshPJ = 0.0;
    double inPkgActiveStandbyPJ = 0.0;
    double offPkgBackgroundPJ = 0.0;
    double offPkgRefreshPJ = 0.0;
    double offPkgActiveStandbyPJ = 0.0;
    /** Mean power over the measured phase (W). */
    double inPkgAvgPowerWatts = 0.0;
    double offPkgAvgPowerWatts = 0.0;

    double inPkgBusUtil = 0.0;
    double offPkgBusUtil = 0.0;
    double avgFetchLatency = 0.0; ///< mean LLC-miss service cycles

    std::uint64_t pteUpdateRuns = 0;
    std::uint64_t tlbShootdowns = 0;
    std::uint64_t tagBufferHits = 0;
    std::uint64_t tagBufferMisses = 0;
    std::uint64_t replacementsBlocked = 0;

    // Dynamic-resize transition statistics (zero when disabled).
    std::uint64_t resizesStarted = 0;
    std::uint64_t resizesCompleted = 0;
    std::uint64_t pagesMigrated = 0;
    std::uint64_t dirtyPagesMigrated = 0;
    std::uint64_t migrationTagStalls = 0;
    std::uint32_t finalActiveSlices = 0;
    std::uint64_t qosReassigns = 0; ///< slice ownership transfers

    /** The in-package QoS channel scheduler was enabled for this run
     *  (gates the per-tenant grant/defer fields in JSON output). */
    bool qosSchedEnabled = false;

    /** Per-tenant splits (empty for single-tenant runs). */
    std::vector<TenantRunStats> tenants;

    /** Latency/occupancy distribution summaries over the measured
     *  phase (empty unless telemetry was enabled). */
    std::vector<HistogramSummary> histograms;

    double inPkgBpi(TrafficCat c) const;
    double offPkgBpi(TrafficCat c) const;
    double inPkgTotalBpi() const;
    double offPkgTotalBpi() const;

    /** Whole-memory-system DRAM energy over the measured phase (pJ). */
    double totalEnergyPJ() const;
    /** Total DRAM energy per instruction (pJ/instr), the paper's
     *  energy-efficiency axis. */
    double energyPerInstrPJ() const;
    /** In-package background + refresh energy (pJ) — what slice
     *  power-gating saves. */
    double inPkgBgRefreshPJ() const;
};

class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Warmup + measured phase; returns the measured statistics. */
    RunResult run();

    // Component access for tests and examples.
    EventQueue &eventQueue() { return eq_; }
    PageTableManager &pageTable() { return *pageTable_; }
    OsServices &os() { return *os_; }
    MemSystem &memSystem() { return *mem_; }
    CacheHierarchy &hierarchy() { return *hierarchy_; }
    CoreModel &core(CoreId id) { return *cores_[id]; }
    Tlb &tlb(CoreId id) { return *tlbs_[id]; }
    const SystemConfig &config() const { return config_; }

    /** Resize coordination, or nullptr when resizing is disabled. */
    ResizeController *resizeController() { return resize_.get(); }

    /** Tenant ownership, or nullptr for single-tenant runs. */
    TenantMap *tenantMap() { return tenants_.get(); }

    /** Telemetry façade, or nullptr when telemetry is disabled. */
    Telemetry *telemetry() { return telemetry_.get(); }

    /** Intra-system event-domain engine, or nullptr when
     *  config.intraDomains == 1 (the serial engine). */
    DomainEngine *domainEngine() { return engine_.get(); }

    /** Events executed across every queue this system owns: the
     *  frontend queue plus any channel-domain shards. */
    std::uint64_t totalEventsExecuted() const;

    /** Span-trace journal, or nullptr when tracing is disabled. */
    PageJournal *spanTrace() { return spans_.get(); }

    /** Zero every statistic (called at the warmup boundary). */
    void resetAllStats();

  private:
    /** Build the telemetry façade and attach every hook. */
    void buildTelemetry();

    /** Build the span-trace journal and attach every hook. */
    void buildSpanTrace();

    /** Run all cores until each reaches @p instrLimit. */
    void runPhase(std::uint64_t instrLimit);

    RunResult collect(const std::vector<Cycle> &phaseStartCycle,
                      const std::vector<std::uint64_t> &phaseStartInstr,
                      Cycle phaseStartGlobal);

    SystemConfig config_;
    EventQueue eq_;
    /** Declared right after eq_ (and before mem_) so the channel
     *  domains' queues outlive the channels scheduled on them. */
    std::unique_ptr<DomainEngine> engine_;
    std::unique_ptr<TenantMap> tenants_;
    std::unique_ptr<PageTableManager> pageTable_;
    std::unique_ptr<OsServices> os_;
    std::unique_ptr<MemSystem> mem_;
    std::unique_ptr<BatmanController> batman_;
    std::unique_ptr<ResizeController> resize_;
    std::unique_ptr<Telemetry> telemetry_;
    std::unique_ptr<PageJournal> spans_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Tlb>> tlbs_;
    std::vector<std::unique_ptr<AccessPattern>> patterns_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    std::uint32_t parkedCount_ = 0;
};

} // namespace banshee

#endif // BANSHEE_SIM_SYSTEM_HH
