#include "sim/runner.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/log.hh"

namespace banshee {

std::uint64_t
SweepPerf::totalEvents() const
{
    std::uint64_t total = 0;
    for (const RunPerf &p : experiments)
        total += p.events;
    return total;
}

double
SweepPerf::eventsPerSec() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(totalEvents()) / wallSeconds
               : 0.0;
}

std::vector<RunResult>
runSweep(const std::vector<Experiment> &exps, const SweepOptions &opts)
{
    using clock = std::chrono::steady_clock;

    unsigned threads = opts.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, std::max<std::size_t>(exps.size(), 1));

    // Auto shard size: several claims per worker for load balance;
    // one experiment per claim until grids get large.
    std::size_t shard = opts.shard;
    if (shard == 0)
        shard = std::max<std::size_t>(
            1, exps.size() / (static_cast<std::size_t>(threads) * 8));

    std::vector<RunResult> results(exps.size());
    std::vector<RunPerf> perf(exps.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> finished{0};

    const auto sweepStart = clock::now();

    auto worker = [&] {
        while (true) {
            const std::size_t begin = next.fetch_add(shard);
            if (begin >= exps.size())
                return;
            const std::size_t end =
                std::min(begin + shard, exps.size());
            for (std::size_t i = begin; i < end; ++i) {
                // Telemetry traces from a sweep share one file; stamp
                // each run's lines with its experiment label so the
                // summary script can split them back apart.
                SystemConfig config = exps[i].config;
                if (config.telemetry.enabled &&
                    config.telemetry.runLabel.empty())
                    config.telemetry.runLabel = exps[i].label;
                // Span traces never share a file: the label routes
                // each experiment to its own trace (directory paths)
                // or a "-<label>" suffixed file.
                if (config.spans.enabled && config.spans.runLabel.empty())
                    config.spans.runLabel = exps[i].label;
                const auto start = clock::now();
                System system(config);
                results[i] = system.run();
                perf[i].wallSeconds =
                    std::chrono::duration<double>(clock::now() - start)
                        .count();
                perf[i].events = system.totalEventsExecuted();
                const std::size_t done = finished.fetch_add(1) + 1;
                if (opts.showProgress) {
                    std::fprintf(stderr, "\r[bench] %zu/%zu %-40s", done,
                                 exps.size(), exps[i].label.c_str());
                    std::fflush(stderr);
                }
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (opts.showProgress)
        std::fprintf(stderr, "\n");

    if (opts.perf != nullptr) {
        opts.perf->wallSeconds =
            std::chrono::duration<double>(clock::now() - sweepStart)
                .count();
        opts.perf->experiments = std::move(perf);
    }
    return results;
}

std::vector<RunResult>
runExperiments(const std::vector<Experiment> &exps, unsigned threads,
               bool showProgress, SweepPerf *perf)
{
    SweepOptions opts;
    opts.threads = threads;
    opts.showProgress = showProgress;
    opts.perf = perf;
    return runSweep(exps, opts);
}

std::vector<Experiment>
schemeSweep(const SystemConfig &base, const std::string &workload)
{
    std::vector<Experiment> exps;
    auto add = [&](const std::string &label, SchemeKind kind,
                   double alloyProb = 0.0) {
        SystemConfig c = base;
        c.workload = workload;
        c.withScheme(kind);
        if (kind == SchemeKind::Alloy)
            c.withAlloyFillProb(alloyProb);
        exps.push_back(Experiment{workload + "/" + label, c});
    };
    add("NoCache", SchemeKind::NoCache);
    add("Unison", SchemeKind::Unison);
    add("TDC", SchemeKind::Tdc);
    add("Alloy 1", SchemeKind::Alloy, 1.0);
    add("Alloy 0.1", SchemeKind::Alloy, 0.1);
    add("Banshee", SchemeKind::Banshee);
    add("CacheOnly", SchemeKind::CacheOnly);
    return exps;
}

std::vector<Experiment>
resizeSweep(const SystemConfig &base, const std::string &workload,
            std::uint64_t epoch, std::uint32_t targetSlices)
{
    SystemConfig none = base;
    none.workload = workload;
    none.withScheme(SchemeKind::Banshee);
    none.resize.enabled = false;
    none.resize.policy.schedule.clear();

    SystemConfig ch = none;
    ch.withResizeStep(epoch, targetSlices, ResizeStrategy::ConsistentHash);
    SystemConfig flush = none;
    flush.withResizeStep(epoch, targetSlices, ResizeStrategy::FlushAll);

    return {Experiment{workload + "/NoResize", none},
            Experiment{workload + "/CH-resize", ch},
            Experiment{workload + "/Flush-resize", flush}};
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        sim_assert(v >= 0.0, "geomean needs non-negative values");
        if (v == 0.0)
            return 0.0; // the limit of (prod)^(1/n) with a zero factor
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace banshee
