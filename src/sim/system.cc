#include "sim/system.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/units.hh"
#include "core/banshee.hh"
#include "schemes/alloy.hh"
#include "schemes/hma.hh"
#include "schemes/simple.hh"
#include "schemes/tdc.hh"
#include "schemes/unison.hh"
#include "sim/domain_engine.hh"
#include "telemetry/span_trace.hh"
#include "telemetry/telemetry.hh"
#include "workload/workloads.hh"

namespace banshee {

double
RunResult::inPkgBpi(TrafficCat c) const
{
    return instructions == 0
               ? 0.0
               : static_cast<double>(
                     inPkgBytes[static_cast<std::size_t>(c)]) /
                     instructions;
}

double
RunResult::offPkgBpi(TrafficCat c) const
{
    return instructions == 0
               ? 0.0
               : static_cast<double>(
                     offPkgBytes[static_cast<std::size_t>(c)]) /
                     instructions;
}

double
RunResult::inPkgTotalBpi() const
{
    double t = 0.0;
    for (std::size_t c = 0; c < kNumTrafficCats; ++c)
        t += static_cast<double>(inPkgBytes[c]);
    return instructions == 0 ? 0.0 : t / instructions;
}

double
RunResult::offPkgTotalBpi() const
{
    double t = 0.0;
    for (std::size_t c = 0; c < kNumTrafficCats; ++c)
        t += static_cast<double>(offPkgBytes[c]);
    return instructions == 0 ? 0.0 : t / instructions;
}

double
RunResult::totalEnergyPJ() const
{
    double t = inPkgBackgroundPJ + inPkgRefreshPJ + inPkgActiveStandbyPJ +
               offPkgBackgroundPJ + offPkgRefreshPJ +
               offPkgActiveStandbyPJ;
    for (std::size_t c = 0; c < kNumTrafficCats; ++c)
        t += inPkgDynPJ[c] + offPkgDynPJ[c];
    return t;
}

double
RunResult::energyPerInstrPJ() const
{
    return instructions == 0 ? 0.0 : totalEnergyPJ() / instructions;
}

double
RunResult::inPkgBgRefreshPJ() const
{
    return inPkgBackgroundPJ + inPkgRefreshPJ;
}

System::System(const SystemConfig &config) : config_(config)
{
    // Fail fast on configurations that would otherwise trip deep
    // internal asserts (or silently misplace pages). Large pages: the
    // scheme addresses whole pages within one controller, so the
    // MC striping granularity must be at least the page size.
    if (config.scheme == SchemeKind::Banshee && config.mem.numMcs > 1 &&
        config.mem.mcStripeBits < config.banshee.pageBits) {
        fatal("banshee.pageBits (%u) exceeds mem.mcStripeBits (%u): a "
              "cache page would stripe across %u memory controllers — "
              "raise mcStripeBits to pageBits (large pages need "
              "controller-aligned placement)",
              config.banshee.pageBits, config.mem.mcStripeBits,
              config.mem.numMcs);
    }
    if (config.resize.enabled && config.scheme == SchemeKind::Banshee &&
        config.mem.hasInPkg) {
        const std::uint64_t framesPerMc =
            (config.mem.inPkgCapacity / config.mem.numMcs) >>
            config.banshee.pageBits;
        const std::uint64_t sets = framesPerMc / config.banshee.ways;
        const std::uint32_t slices = config.resize.hash.numSlices;
        if (sets < slices || sets % slices != 0) {
            fatal("resize needs each controller's set count to split "
                  "evenly over slices, but %llu sets (inPkgCapacity "
                  "%llu B / %u MCs / 2^%u B pages / %u ways) do not "
                  "divide into %u slices — lower "
                  "resize.hash.numSlices, shrink pageBits, or grow "
                  "inPkgCapacity",
                  static_cast<unsigned long long>(sets),
                  static_cast<unsigned long long>(
                      config.mem.inPkgCapacity),
                  config.mem.numMcs, config.banshee.pageBits,
                  config.banshee.ways, slices);
        }
    }

    if (config.tenants.empty()) {
        sim_assert(WorkloadFactory::exists(config.workload),
                   "unknown workload '%s'", config.workload.c_str());
    } else {
        tenants_ = std::make_unique<TenantMap>(config.tenants,
                                               config.numCores);
        for (std::uint32_t t = 0; t < tenants_->numTenants(); ++t) {
            const TenantConfig &tc =
                tenants_->config(static_cast<TenantId>(t));
            sim_assert(WorkloadFactory::exists(tc.workload),
                       "unknown workload '%s' (tenant '%s')",
                       tc.workload.c_str(), tc.name.c_str());
            sim_assert(!WorkloadFactory::isGraph(tc.workload),
                       "tenant '%s': graph workloads share one heap and "
                       "cannot be partitioned", tc.name.c_str());
            sim_assert(tc.workload.rfind("trace:", 0) != 0,
                       "tenant '%s': trace replay addresses were "
                       "recorded outside the per-core regions, so they "
                       "cannot be tenant-tagged", tc.name.c_str());
        }
        // Each core's private heap region belongs to its tenant, so
        // every layer holding only an address (writebacks, the resize
        // scan, DRAM attribution) can recover the owner. The core's
        // code region is registered too: untagged pages walk to *any*
        // slice of a partitioned cache, so an unowned code page would
        // land in (and, under replace-on-miss, evict from) another
        // tenant's quota.
        for (CoreId c = 0; c < config.numCores; ++c) {
            const auto region = WorkloadFactory::privateRegion(c);
            tenants_->addRegion(region.first, region.second,
                                tenants_->tenantOfCore(c));
            const Addr codeBase =
                CoreModel::codeRegionBase(c, config.core);
            tenants_->addRegion(codeBase, codeBase + config.core.codeBytes,
                                tenants_->tenantOfCore(c));
        }
        sim_assert(config.resize.tenantWeights.empty() ||
                       config.resize.tenantWeights.size() ==
                           tenants_->numTenants(),
                   "resize tenant weights do not match the tenant list");
    }

    // Intra-system event domains: the frontend (everything below)
    // stays on eq_; the DRAM channels are sharded across worker
    // domains. Features that read state across the domain boundary
    // mid-run are rejected up front rather than racing silently.
    if (config.intraDomains > 1) {
        sim_assert(!config.telemetry.enabled && !config.spans.enabled,
                   "intraDomains > 1 is incompatible with telemetry "
                   "and span tracing (hooks sample channel state "
                   "across the domain boundary)");
        sim_assert(!config.mem.qos.enabled,
                   "intraDomains > 1 is incompatible with the QoS "
                   "channel scheduler (per-device grant/defer "
                   "accounting is shared across channels)");
        sim_assert(!config.enableBatman,
                   "intraDomains > 1 is incompatible with Batman "
                   "(it samples channel queues mid-run)");
        sim_assert(!config.resize.enabled ||
                       (config.resize.policy.kind !=
                            ResizePolicyConfig::Kind::PowerCap &&
                        config.resize.policy.kind !=
                            ResizePolicyConfig::Kind::Qos),
                   "intraDomains > 1 is incompatible with power-fed "
                   "resize policies (channel energy lands in domain "
                   "shards until the run quiesces)");
        const std::uint32_t totalChannels =
            (config.mem.hasInPkg ? config.mem.numMcs : 0) +
            (config.mem.hasOffPkg ? config.mem.numOffPkgChannels : 0);
        sim_assert(totalChannels > 0,
                   "intraDomains > 1 needs at least one DRAM channel");
        engine_ = std::make_unique<DomainEngine>(
            eq_, std::min(config.intraDomains - 1, totalChannels));
    }

    pageTable_ = std::make_unique<PageTableManager>();
    os_ = std::make_unique<OsServices>(eq_, *pageTable_, config.osCosts,
                                       config.seed);
    mem_ = std::make_unique<MemSystem>(eq_, config.mem, engine_.get());
    if (engine_)
        engine_->attach(*mem_);
    if (tenants_)
        mem_->setTenantMap(tenants_.get());

    if (config.enableBatman) {
        batman_ = std::make_unique<BatmanController>(
            eq_, mem_->inPkg(), mem_->offPkg(), config.batman);
    }

    // Scheme factory: one instance per memory controller.
    const SystemConfig &cfg = config_;
    BatmanController *batman = batman_.get();
    SchemeFactory factory = [&cfg,
                             batman](const SchemeContext &baseCtx)
        -> std::unique_ptr<DramCacheScheme> {
        SchemeContext ctx = baseCtx;
        ctx.batman = batman;
        switch (cfg.scheme) {
          case SchemeKind::NoCache:
            return std::make_unique<NoCacheScheme>(ctx);
          case SchemeKind::CacheOnly:
            return std::make_unique<CacheOnlyScheme>(ctx);
          case SchemeKind::Alloy:
            return std::make_unique<AlloyScheme>(ctx, cfg.alloy);
          case SchemeKind::Unison:
            return std::make_unique<UnisonScheme>(ctx, cfg.unison);
          case SchemeKind::Tdc:
            return std::make_unique<TdcScheme>(ctx);
          case SchemeKind::Hma:
            return std::make_unique<HmaScheme>(ctx, cfg.hma);
          case SchemeKind::Banshee:
            return std::make_unique<BansheeScheme>(ctx, cfg.banshee);
        }
        panic("unhandled scheme kind");
    };
    mem_->buildSchemes(factory, pageTable_.get(), os_.get(), config.seed);

    if (config.resize.enabled) {
        resize_ = std::make_unique<ResizeController>(eq_, *os_,
                                                     config.resize);
        for (std::uint32_t mc = 0; mc < mem_->numMcs(); ++mc) {
            ResizeHost *host = mem_->scheme(mc).resizeHost();
            sim_assert(host != nullptr,
                       "resize enabled but scheme '%s' cannot resize",
                       schemeKindName(config.scheme));
            resize_->addHost(*host, "resize" + std::to_string(mc));
        }
        if (mem_->inPkg())
            resize_->attachPowerModel(&mem_->inPkg()->power());
        if (tenants_)
            resize_->attachTenants(tenants_.get());
    }

    // QoS channel scheduling: seed bandwidth entitlements from the
    // quota weights now; resize commits re-push shares as slices
    // change hands (attachQosDevice pushes the partition-based split).
    if (config.mem.qos.enabled && mem_->inPkg()) {
        if (tenants_) {
            const std::uint32_t n = std::min<std::uint32_t>(
                tenants_->numTenants(), kMaxTenants);
            double wsum = 0.0;
            for (std::uint32_t t = 0; t < n; ++t)
                wsum += tenants_->weight(static_cast<TenantId>(t));
            if (wsum > 0.0) {
                std::array<double, kMaxTenants> shares{};
                for (std::uint32_t t = 0; t < n; ++t) {
                    shares[t] =
                        tenants_->weight(static_cast<TenantId>(t)) / wsum;
                }
                mem_->inPkg()->setQosShares(shares);
            }
        }
        if (resize_)
            resize_->attachQosDevice(mem_->inPkg());
    }

    HierarchyParams hp = config.hierarchy;
    hp.numCores = config.numCores;
    hierarchy_ = std::make_unique<CacheHierarchy>(hp, *mem_);

    for (CoreId c = 0; c < config.numCores; ++c) {
        tlbs_.push_back(std::make_unique<Tlb>(
            config.tlb, *pageTable_, "tlb" + std::to_string(c)));
        // Multi-tenant runs: each core runs its tenant's workload,
        // partitioned over the tenant's cores.
        std::string workload = config.workload;
        std::uint32_t workloadCores = config.numCores;
        if (tenants_) {
            const TenantId t = tenants_->tenantOfCore(c);
            workload = tenants_->config(t).workload;
            workloadCores = tenants_->coreCount(t);
        }
        patterns_.push_back(WorkloadFactory::create(
            workload, c, workloadCores, config.footprintScale));
        cores_.push_back(std::make_unique<CoreModel>(
            c, config.core, eq_, *hierarchy_, *tlbs_[c], *patterns_[c],
            config.seed * 1000003ull + c));
        cores_[c]->onParked([this](CoreId) {
            ++parkedCount_;
            if (parkedCount_ == config_.numCores)
                eq_.requestStop();
        });
    }

    // Warmup budget scaling (see SystemConfig::autoWarmup): when the
    // workload is a pure sequential sweep whose aggregate footprint
    // fits the DRAM cache, measurement should start from steady-state
    // residency — raise warmup to cover warmupSweeps full passes.
    if (config_.autoWarmup && config_.mem.hasInPkg) {
        std::uint64_t totalSweepBytes = 0;
        std::uint64_t maxSweepInstr = 0;
        bool allSweep = true;
        for (const auto &p : patterns_) {
            if (p->sweepBytes() == 0) {
                allSweep = false;
                break;
            }
            totalSweepBytes += p->sweepBytes();
            maxSweepInstr = std::max(maxSweepInstr, p->sweepInstr());
        }
        if (allSweep && totalSweepBytes <= config_.mem.inPkgCapacity) {
            config_.warmupInstrPerCore =
                std::max<std::uint64_t>(config_.warmupInstrPerCore,
                                        config_.warmupSweeps *
                                            maxSweepInstr);
        }
    }

    // Register OS hooks last so stalls and shootdowns reach the cores.
    for (CoreId c = 0; c < config.numCores; ++c) {
        CoreModel *core = cores_[c].get();
        Tlb *tlb = tlbs_[c].get();
        os_->registerCore(OsServices::CoreHooks{
            [core](Cycle stall) { core->addStall(stall); },
            [tlb] { tlb->flushAll(); }});
    }

    if (config_.telemetry.enabled)
        buildTelemetry();
    if (config_.spans.enabled)
        buildSpanTrace();
}

void
System::buildTelemetry()
{
    telemetry_ = std::make_unique<Telemetry>(eq_, config_.telemetry);
    MetricRegistry &reg = telemetry_->registry();

    // System-wide gauges: cumulative as-of-sample; the summary script
    // turns adjacent-sample deltas into per-epoch rates.
    reg.addGauge("instructions", [this] {
        std::uint64_t n = 0;
        for (const auto &core : cores_)
            n += core->instrRetired();
        return static_cast<double>(n);
    });
    reg.addGauge("dramAccesses", [this] {
        return static_cast<double>(mem_->totalAccesses());
    });
    reg.addGauge("dramMisses", [this] {
        return static_cast<double>(mem_->totalMisses());
    });
    if (mem_->inPkg()) {
        reg.addGauge("inPkgEnergyPJ", [this] {
            return mem_->inPkg()->power().totalEnergyPJ(eq_.now());
        });
    }
    if (resize_) {
        reg.addGauge("activeSlices", [this] {
            return static_cast<double>(resize_->activeSlices());
        });
        reg.addStatSet(resize_->stats(), "resize.");
        resize_->attachTelemetry(telemetry_.get());
        Histogram &batchLat = telemetry_->histogram("migration.batchLat");
        for (std::size_t d = 0; d < resize_->numDomains(); ++d)
            resize_->domain(d).engine().setTelemetry(&batchLat);
    }

    if (tenants_) {
        for (std::uint32_t ti = 0; ti < tenants_->numTenants(); ++ti) {
            const TenantId t = static_cast<TenantId>(ti);
            const std::string base = "tenant." + tenants_->config(t).name;
            reg.addGauge(base + ".slices", [this, t] {
                return resize_
                           ? static_cast<double>(resize_->slicesOwnedBy(t))
                           : 0.0;
            });
            reg.addGauge(base + ".accesses", [this, t] {
                std::uint64_t n = 0;
                for (std::uint32_t mc = 0; mc < mem_->numMcs(); ++mc)
                    n += mem_->scheme(mc).tenantAccesses(t);
                return static_cast<double>(n);
            });
            reg.addGauge(base + ".misses", [this, t] {
                std::uint64_t n = 0;
                for (std::uint32_t mc = 0; mc < mem_->numMcs(); ++mc)
                    n += mem_->scheme(mc).tenantMisses(t);
                return static_cast<double>(n);
            });
            telemetry_->nameTenantQueueLatency(tenantBucket(t),
                                               base + ".queueLat");
        }
    }

    // DRAM channel distributions. Only the in-package device splits
    // sojourns by tenant: that is the contended resource co-location
    // studies care about (PR 4's finding).
    auto attachChannels = [this](DramModel *dev, const char *prefix,
                                 bool tenantSplit) {
        if (!dev)
            return;
        for (std::uint32_t c = 0; c < dev->numChannels(); ++c) {
            ChannelTelemetry &ct = telemetry_->channelTelemetry(
                std::string(prefix) + ".ch" + std::to_string(c));
            if (tenantSplit && tenants_)
                ct.tenantQueueLatency = telemetry_->tenantQueueLatency();
            ct.kickTimer = telemetry_->timer("host.dramKick");
            dev->channel(c).setTelemetry(&ct);
        }
    };
    attachChannels(mem_->inPkg(), "inpkg", true);
    attachChannels(mem_->offPkg(), "offpkg", false);

    mem_->setFetchTimer(telemetry_->timer("host.fetchLine"));
}

void
System::buildSpanTrace()
{
    // The sampler hashes page frames at the scheme's page granularity
    // so every hook — line-addressed fetches, page-addressed FBR and
    // migration — agrees on which pages are journaled.
    const std::uint32_t pageBits = config_.scheme == SchemeKind::Banshee
                                       ? config_.banshee.pageBits
                                       : kPageBits;
    spans_ = std::make_unique<PageJournal>(config_.spans, pageBits,
                                           config_.seed);
    spans_->runInfo({{"workload", config_.workload},
                     {"scheme", schemeKindName(config_.scheme)},
                     {"label", config_.spans.runLabel},
                     {"sampleShift", config_.spans.sampleShift},
                     {"seed", config_.seed},
                     {"pageBits", pageBits}});

    mem_->setSpanTrace(spans_.get());
    for (std::uint32_t mc = 0; mc < mem_->numMcs(); ++mc)
        mem_->scheme(mc).attachSpanTrace(spans_.get());

    auto attachChannels = [this](DramModel *dev, const char *prefix) {
        if (!dev)
            return;
        for (std::uint32_t c = 0; c < dev->numChannels(); ++c) {
            const std::uint32_t track = spans_->addChannelTrack(
                std::string(prefix) + ".ch" + std::to_string(c));
            dev->channel(c).setSpanTrace(spans_.get(), track);
        }
    };
    attachChannels(mem_->inPkg(), "inpkg");
    attachChannels(mem_->offPkg(), "offpkg");

    if (resize_)
        resize_->attachSpanTrace(spans_.get());

    if (tenants_) {
        for (std::uint32_t ti = 0; ti < tenants_->numTenants(); ++ti) {
            const TenantId t = static_cast<TenantId>(ti);
            spans_->tenantInfo(ti, tenants_->config(t).name,
                               tenants_->weight(t));
        }
    }
}

System::~System() = default;

void
System::runPhase(std::uint64_t instrLimit)
{
    parkedCount_ = 0;
    for (auto &core : cores_) {
        core->setInstrLimit(instrLimit);
        core->start();
    }
    if (engine_) {
        engine_->runPhase(
            [this] { return parkedCount_ == config_.numCores; });
    } else {
        ScopedTimer profile(
            telemetry_ ? telemetry_->timer("host.eventQueue") : nullptr);
        eq_.run();
    }
    sim_assert(parkedCount_ == config_.numCores,
               "event queue drained with %u/%u cores parked — "
               "a memory response was lost",
               parkedCount_, config_.numCores);
}

void
System::resetAllStats()
{
    if (engine_)
        engine_->resetEnergyShards();
    mem_->resetStats();
    hierarchy_->resetStats();
    os_->stats().reset();
    pageTable_->stats().reset();
    if (resize_)
        resize_->resetStats();
    for (auto &core : cores_)
        core->stats().reset();
    for (auto &tlb : tlbs_)
        tlb->stats().reset();
}

RunResult
System::run()
{
    if (telemetry_) {
        telemetry_->event(
            "run_start",
            {{"workload", config_.workload},
             {"scheme", schemeKindName(config_.scheme)},
             {"cores", config_.numCores},
             {"coreFreqHz", kCoreFreqHz},
             {"epochCycles", config_.telemetry.epochCycles},
             {"warmupInstrPerCore", config_.warmupInstrPerCore},
             {"measureInstrPerCore", config_.measureInstrPerCore}});
        if (tenants_) {
            for (std::uint32_t ti = 0; ti < tenants_->numTenants(); ++ti) {
                const TenantId t = static_cast<TenantId>(ti);
                telemetry_->event(
                    "tenant", {{"id", ti},
                               {"name", tenants_->config(t).name},
                               {"workload", tenants_->config(t).workload},
                               {"weight", tenants_->weight(t)},
                               {"cores", tenants_->coreCount(t)}});
            }
        }
    }

    // Warmup: caches, predictors and counters learn; stats discarded.
    if (config_.warmupInstrPerCore > 0)
        runPhase(config_.warmupInstrPerCore);
    resetAllStats();
    if (telemetry_) {
        // Warmup-phase distributions would pollute the measured ones.
        telemetry_->resetHistograms();
        telemetry_->event("measure_start");
        telemetry_->startEpochs();
    }
    // The resize epoch clock runs over the measured phase only, so
    // scripted schedules are phase-relative and deterministic.
    if (resize_)
        resize_->onMeasureStart();

    std::vector<Cycle> startCycle(config_.numCores);
    std::vector<std::uint64_t> startInstr(config_.numCores);
    for (CoreId c = 0; c < config_.numCores; ++c) {
        startCycle[c] = cores_[c]->localCycle();
        startInstr[c] = cores_[c]->instrRetired();
    }
    const Cycle startGlobal = eq_.now();

    runPhase(config_.warmupInstrPerCore + config_.measureInstrPerCore);

    // Event-domain runs: fold the channels' energy shards back into
    // their device models (the workers are quiescent at the barrier)
    // so collect() sees whole-device energy as usual.
    if (engine_)
        engine_->mergeEnergy();

    return collect(startCycle, startInstr, startGlobal);
}

std::uint64_t
System::totalEventsExecuted() const
{
    return eq_.eventsExecuted() +
           (engine_ ? engine_->domainEventsExecuted() : 0);
}

RunResult
System::collect(const std::vector<Cycle> &phaseStartCycle,
                const std::vector<std::uint64_t> &phaseStartInstr,
                Cycle phaseStartGlobal)
{
    if (telemetry_)
        telemetry_->finishEpochs();
    if (spans_)
        spans_->finish(eq_.now());

    RunResult r;
    r.workload = config_.workload;
    r.scheme = schemeKindName(config_.scheme);
    if (config_.scheme == SchemeKind::Alloy) {
        r.scheme += config_.alloy.fillProbability >= 1.0 ? " 1" : " 0.1";
    }

    Cycle maxCycles = 0;
    std::uint64_t instr = 0;
    for (CoreId c = 0; c < config_.numCores; ++c) {
        const Cycle cycles = cores_[c]->localCycle() - phaseStartCycle[c];
        maxCycles = std::max(maxCycles, cycles);
        instr += cores_[c]->instrRetired() - phaseStartInstr[c];
    }
    r.cycles = std::max<Cycle>(maxCycles, 1);
    r.instructions = instr;
    r.ipc = static_cast<double>(instr) / r.cycles;

    r.dramCacheAccesses = mem_->totalAccesses();
    r.dramCacheMisses = mem_->totalMisses();
    r.missRate = r.dramCacheAccesses == 0
                     ? 0.0
                     : static_cast<double>(r.dramCacheMisses) /
                           r.dramCacheAccesses;
    r.mpki = instr == 0 ? 0.0
                        : 1000.0 * r.dramCacheMisses / instr;
    r.llcMpki = instr == 0
                    ? 0.0
                    : 1000.0 * hierarchy_->llcMisses() / instr;

    const Cycle elapsed =
        std::max<Cycle>(eq_.now() - phaseStartGlobal, 1);
    if (mem_->inPkg()) {
        for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
            r.inPkgBytes[c] = mem_->inPkg()->traffic().bytes(
                static_cast<TrafficCat>(c));
        }
        r.inPkgBusUtil = mem_->inPkg()->busUtilization(elapsed);
        DramPowerModel &power = mem_->inPkg()->power();
        power.finalize(eq_.now());
        for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
            r.inPkgDynPJ[c] =
                power.energy().dynamicPJ(static_cast<TrafficCat>(c));
        }
        r.inPkgBackgroundPJ = power.energy().backgroundPJ();
        r.inPkgRefreshPJ = power.energy().refreshPJ();
        r.inPkgActiveStandbyPJ = power.energy().activeStandbyPJ();
        r.inPkgAvgPowerWatts = power.averagePowerWatts(eq_.now());
    }
    if (mem_->offPkg()) {
        for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
            r.offPkgBytes[c] = mem_->offPkg()->traffic().bytes(
                static_cast<TrafficCat>(c));
        }
        r.offPkgBusUtil = mem_->offPkg()->busUtilization(elapsed);
        DramPowerModel &power = mem_->offPkg()->power();
        power.finalize(eq_.now());
        for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
            r.offPkgDynPJ[c] =
                power.energy().dynamicPJ(static_cast<TrafficCat>(c));
        }
        r.offPkgBackgroundPJ = power.energy().backgroundPJ();
        r.offPkgRefreshPJ = power.energy().refreshPJ();
        r.offPkgActiveStandbyPJ = power.energy().activeStandbyPJ();
        r.offPkgAvgPowerWatts = power.averagePowerWatts(eq_.now());
    }

    r.avgFetchLatency = mem_->avgFetchLatency();
    r.pteUpdateRuns = os_->updateRuns();
    r.tlbShootdowns = os_->stats().value("tlbShootdowns");

    for (std::uint32_t mc = 0; mc < mem_->numMcs(); ++mc) {
        auto &s = mem_->scheme(mc);
        if (auto *banshee = dynamic_cast<BansheeScheme *>(&s)) {
            r.tagBufferHits += banshee->tagBuffer().hits();
            r.tagBufferMisses += banshee->tagBuffer().misses();
            r.replacementsBlocked +=
                s.stats().value("replacementsBlocked");
        }
    }

    r.qosSchedEnabled = config_.mem.qos.enabled && mem_->inPkg() != nullptr;

    if (resize_) {
        r.resizesStarted = resize_->resizesStarted();
        r.resizesCompleted = resize_->resizesCompleted();
        r.pagesMigrated = resize_->pagesMigrated();
        r.dirtyPagesMigrated = resize_->dirtyPagesMigrated();
        r.migrationTagStalls = resize_->tagBufferStalls();
        r.finalActiveSlices = resize_->activeSlices();
        r.qosReassigns = resize_->reassignsCompleted();
    }

    if (tenants_) {
        r.tenants.resize(tenants_->numTenants());
        for (std::uint32_t ti = 0; ti < tenants_->numTenants(); ++ti) {
            const TenantId t = static_cast<TenantId>(ti);
            TenantRunStats &ts = r.tenants[ti];
            ts.name = tenants_->config(t).name;
            ts.weight = tenants_->weight(t);
            ts.cores = tenants_->coreCount(t);

            // A tenant's IPC is its own instructions over its slowest
            // core — the per-tenant mirror of the aggregate metric.
            Cycle tenantCycles = 0;
            for (CoreId c = 0; c < config_.numCores; ++c) {
                if (tenants_->tenantOfCore(c) != t)
                    continue;
                tenantCycles = std::max(
                    tenantCycles,
                    cores_[c]->localCycle() - phaseStartCycle[c]);
                ts.instructions +=
                    cores_[c]->instrRetired() - phaseStartInstr[c];
            }
            ts.cycles = std::max<Cycle>(tenantCycles, 1);
            ts.ipc = static_cast<double>(ts.instructions) / ts.cycles;

            for (std::uint32_t mc = 0; mc < mem_->numMcs(); ++mc) {
                ts.dramCacheAccesses += mem_->scheme(mc).tenantAccesses(t);
                ts.dramCacheMisses += mem_->scheme(mc).tenantMisses(t);
            }
            ts.missRate = ts.dramCacheAccesses == 0
                              ? 0.0
                              : static_cast<double>(ts.dramCacheMisses) /
                                    ts.dramCacheAccesses;

            if (mem_->inPkg()) {
                ts.inPkgBytes = mem_->inPkg()->traffic().tenantBytes(t);
                ts.inPkgDynPJ =
                    mem_->inPkg()->power().energy().tenantDynamicPJ(t);
                ts.qosGrants = mem_->inPkg()->traffic().qosGrants(t);
                ts.qosDefers = mem_->inPkg()->traffic().qosDefers(t);
            }
            if (mem_->offPkg()) {
                ts.offPkgBytes = mem_->offPkg()->traffic().tenantBytes(t);
                ts.offPkgDynPJ =
                    mem_->offPkg()->power().energy().tenantDynamicPJ(t);
            }
            if (resize_)
                ts.slicesOwned = resize_->slicesOwnedBy(t);
        }
    }

    if (telemetry_) {
        r.histograms = telemetry_->summaries();
        telemetry_->event("run_end",
                          {{"instructions", r.instructions},
                           {"cycles", r.cycles},
                           {"ipc", r.ipc},
                           {"missRate", r.missRate},
                           {"finalActiveSlices", r.finalActiveSlices}});
        telemetry_->emitProfile();
    }
    return r;
}

} // namespace banshee
