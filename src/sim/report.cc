#include "sim/report.hh"

#include <cstdarg>

namespace banshee {

void
TablePrinter::printHeader() const
{
    printRow(headers_);
    printRule();
}

void
TablePrinter::printRow(const std::vector<std::string> &cells) const
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // First column is wider (workload names).
        const int w = i == 0 ? width_ + 4 : width_;
        std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
}

void
TablePrinter::printRule() const
{
    int total = width_ + 4 + static_cast<int>(headers_.size() - 1) * width_;
    for (int i = 0; i < total; ++i)
        std::printf("-");
    std::printf("\n");
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

void
printBanner(const std::string &title, const std::string &paperRef)
{
    std::printf("==============================================================="
                "=================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("==============================================================="
                "=================\n");
}

} // namespace banshee
