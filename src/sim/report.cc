#include "sim/report.hh"

#include <cstdarg>

#include "common/log.hh"

namespace banshee {

void
TablePrinter::printHeader() const
{
    printRow(headers_);
    printRule();
}

void
TablePrinter::printRow(const std::vector<std::string> &cells) const
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // First column is wider (workload names).
        const int w = i == 0 ? width_ + 4 : width_;
        std::printf("%-*s", w, cells[i].c_str());
    }
    std::printf("\n");
}

void
TablePrinter::printRule() const
{
    int total = width_ + 4 + static_cast<int>(headers_.size() - 1) * width_;
    for (int i = 0; i < total; ++i)
        std::printf("-");
    std::printf("\n");
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

// jsonEscape comes from telemetry/trace_sink.hh (via system_config.hh).

namespace {

void
writeCatBytes(std::FILE *f, const char *key,
              const std::array<std::uint64_t, kNumTrafficCats> &bytes)
{
    std::fprintf(f, "      \"%s\": {", key);
    for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
        std::fprintf(f, "%s\"%s\": %llu", c == 0 ? "" : ", ",
                     trafficCatName(static_cast<TrafficCat>(c)),
                     static_cast<unsigned long long>(bytes[c]));
    }
    std::fprintf(f, "},\n");
}

void
writeCatEnergy(std::FILE *f, const char *key,
               const std::array<double, kNumTrafficCats> &pJ)
{
    std::fprintf(f, "      \"%s\": {", key);
    for (std::size_t c = 0; c < kNumTrafficCats; ++c) {
        std::fprintf(f, "%s\"%s\": %.1f", c == 0 ? "" : ", ",
                     trafficCatName(static_cast<TrafficCat>(c)), pJ[c]);
    }
    std::fprintf(f, "},\n");
}

} // namespace

void
writeResultsJson(const std::string &path, const std::string &bench,
                 const std::vector<std::string> &labels,
                 const std::vector<RunResult> &results,
                 const SweepPerf *perf)
{
    sim_assert(labels.size() == results.size(),
               "json: %zu labels for %zu results", labels.size(),
               results.size());
    sim_assert(perf == nullptr ||
                   perf->experiments.size() == results.size(),
               "json: host perf for %zu of %zu results",
               perf == nullptr ? 0 : perf->experiments.size(),
               results.size());
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot open '%s' for writing", path.c_str());

    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", jsonEscape(bench).c_str());
    // Host performance is opt-in: timings vary run to run, and the
    // default output is guarded byte-identical across refactors.
    if (perf != nullptr) {
        std::fprintf(f,
                     "  \"sweepHostPerf\": {\"wallSeconds\": %.3f, "
                     "\"events\": %llu, \"eventsPerSec\": %.0f},\n",
                     perf->wallSeconds,
                     static_cast<unsigned long long>(perf->totalEvents()),
                     perf->eventsPerSec());
    }
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"label\": \"%s\",\n",
                     jsonEscape(labels[i]).c_str());
        std::fprintf(f, "      \"workload\": \"%s\",\n",
                     jsonEscape(r.workload).c_str());
        std::fprintf(f, "      \"scheme\": \"%s\",\n",
                     jsonEscape(r.scheme).c_str());
        std::fprintf(f, "      \"instructions\": %llu,\n",
                     static_cast<unsigned long long>(r.instructions));
        std::fprintf(f, "      \"cycles\": %llu,\n",
                     static_cast<unsigned long long>(r.cycles));
        std::fprintf(f, "      \"ipc\": %.6f,\n", r.ipc);
        std::fprintf(f, "      \"missRate\": %.6f,\n", r.missRate);
        std::fprintf(f, "      \"mpki\": %.4f,\n", r.mpki);
        writeCatBytes(f, "inPkgBytes", r.inPkgBytes);
        writeCatBytes(f, "offPkgBytes", r.offPkgBytes);
        writeCatEnergy(f, "inPkgDynPJ", r.inPkgDynPJ);
        writeCatEnergy(f, "offPkgDynPJ", r.offPkgDynPJ);
        std::fprintf(f, "      \"inPkgBackgroundPJ\": %.1f,\n",
                     r.inPkgBackgroundPJ);
        std::fprintf(f, "      \"inPkgRefreshPJ\": %.1f,\n",
                     r.inPkgRefreshPJ);
        std::fprintf(f, "      \"inPkgActiveStandbyPJ\": %.1f,\n",
                     r.inPkgActiveStandbyPJ);
        std::fprintf(f, "      \"offPkgBackgroundPJ\": %.1f,\n",
                     r.offPkgBackgroundPJ);
        std::fprintf(f, "      \"offPkgRefreshPJ\": %.1f,\n",
                     r.offPkgRefreshPJ);
        std::fprintf(f, "      \"offPkgActiveStandbyPJ\": %.1f,\n",
                     r.offPkgActiveStandbyPJ);
        std::fprintf(f, "      \"totalEnergyPJ\": %.1f,\n",
                     r.totalEnergyPJ());
        std::fprintf(f, "      \"energyPerInstrPJ\": %.4f,\n",
                     r.energyPerInstrPJ());
        std::fprintf(f, "      \"inPkgAvgPowerWatts\": %.6f,\n",
                     r.inPkgAvgPowerWatts);
        std::fprintf(f, "      \"offPkgAvgPowerWatts\": %.6f,\n",
                     r.offPkgAvgPowerWatts);
        std::fprintf(f, "      \"pagesMigrated\": %llu,\n",
                     static_cast<unsigned long long>(r.pagesMigrated));
        std::fprintf(f, "      \"finalActiveSlices\": %u,\n",
                     r.finalActiveSlices);
        std::fprintf(f, "      \"qosReassigns\": %llu,\n",
                     static_cast<unsigned long long>(r.qosReassigns));
        if (perf != nullptr) {
            const RunPerf &p = perf->experiments[i];
            std::fprintf(f,
                         "      \"hostPerf\": {\"wallSeconds\": %.3f, "
                         "\"events\": %llu, \"eventsPerSec\": %.0f},\n",
                         p.wallSeconds,
                         static_cast<unsigned long long>(p.events),
                         p.eventsPerSec());
        }
        std::fprintf(f, "      \"tenants\": [");
        for (std::size_t t = 0; t < r.tenants.size(); ++t) {
            const TenantRunStats &ts = r.tenants[t];
            std::fprintf(
                f,
                "%s\n        {\"name\": \"%s\", \"weight\": %.4f, "
                "\"cores\": %u, \"instructions\": %llu, "
                "\"ipc\": %.6f, \"missRate\": %.6f, "
                "\"accesses\": %llu, \"misses\": %llu, "
                "\"inPkgBytes\": %llu, \"offPkgBytes\": %llu, "
                "\"inPkgDynPJ\": %.1f, \"offPkgDynPJ\": %.1f, "
                "\"slicesOwned\": %u",
                t == 0 ? "" : ",", jsonEscape(ts.name).c_str(), ts.weight,
                ts.cores, static_cast<unsigned long long>(ts.instructions),
                ts.ipc, ts.missRate,
                static_cast<unsigned long long>(ts.dramCacheAccesses),
                static_cast<unsigned long long>(ts.dramCacheMisses),
                static_cast<unsigned long long>(ts.inPkgBytes),
                static_cast<unsigned long long>(ts.offPkgBytes),
                ts.inPkgDynPJ, ts.offPkgDynPJ, ts.slicesOwned);
            // QoS scheduler counters appear only when it ran, so
            // scheduler-off output stays byte-identical to older
            // builds (the md5-guarded contract).
            if (r.qosSchedEnabled) {
                std::fprintf(
                    f, ", \"qosGrants\": %llu, \"qosDefers\": %llu",
                    static_cast<unsigned long long>(ts.qosGrants),
                    static_cast<unsigned long long>(ts.qosDefers));
            }
            std::fprintf(f, "}");
        }
        // The histograms key appears only when telemetry filled it, so
        // telemetry-off output stays byte-identical to older builds.
        std::fprintf(f, "%s]%s\n", r.tenants.empty() ? "" : "\n      ",
                     r.histograms.empty() ? "" : ",");
        if (!r.histograms.empty()) {
            std::fprintf(f, "      \"histograms\": [");
            for (std::size_t h = 0; h < r.histograms.size(); ++h) {
                const HistogramSummary &hs = r.histograms[h];
                // "saturated" marks top-bucket samples: tail
                // percentiles are then clamp values (the observed
                // max), i.e. lower bounds rather than estimates.
                std::fprintf(
                    f,
                    "%s\n        {\"name\": \"%s\", \"count\": %llu, "
                    "\"mean\": %.2f, \"p50\": %llu, \"p95\": %llu, "
                    "\"p99\": %llu, \"max\": %llu, \"saturated\": %s}",
                    h == 0 ? "" : ",", jsonEscape(hs.name).c_str(),
                    static_cast<unsigned long long>(hs.count), hs.mean,
                    static_cast<unsigned long long>(hs.p50),
                    static_cast<unsigned long long>(hs.p95),
                    static_cast<unsigned long long>(hs.p99),
                    static_cast<unsigned long long>(hs.max),
                    hs.saturated ? "true" : "false");
            }
            std::fprintf(f, "\n      ]\n");
        }
        std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    if (std::fclose(f) != 0)
        fatal("error writing '%s'", path.c_str());
}

void
printBanner(const std::string &title, const std::string &paperRef)
{
    std::printf("==============================================================="
                "=================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paperRef.c_str());
    std::printf("==============================================================="
                "=================\n");
}

} // namespace banshee
