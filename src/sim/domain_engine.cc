#include "sim/domain_engine.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/mem_system.hh"

namespace banshee {

DomainEngine::DomainEngine(EventQueue &frontend, std::uint32_t numWorkers)
    : frontend_(frontend)
{
    sim_assert(numWorkers >= 1, "event domains need >= 1 worker");
    domains_.reserve(numWorkers);
    for (std::uint32_t d = 0; d < numWorkers; ++d)
        domains_.push_back(std::make_unique<Domain>());
    // Epoch barriers are microseconds apart, so waiters spin — unless
    // the host is oversubscribed (fewer cores than threads), where
    // spinning steals cycles from the thread doing the work and every
    // barrier degenerates into a scheduling round trip. Yield
    // immediately in that case.
    const unsigned hw = std::thread::hardware_concurrency();
    spinLimit_ = (hw != 0 && hw < numWorkers + 1) ? 1 : 4096;
}

DomainEngine::~DomainEngine()
{
    stopWorkers();
}

EventQueue &
DomainEngine::nextChannelQueue()
{
    EventQueue &q = domains_[nextQueue_]->eq;
    nextQueue_ = (nextQueue_ + 1) % static_cast<std::uint32_t>(
                                        domains_.size());
    return q;
}

void
DomainEngine::send(DramChannel &ch, DramRequest req)
{
    inbox_.push_back(Envelope{&ch, frontend_.now(), std::move(req)});
}

void
DomainEngine::attach(MemSystem &mem)
{
    sim_assert(shards_.empty(), "DomainEngine::attach called twice");
    Cycle minLat = kNoCycle;
    auto attachDevice = [this, &minLat](DramModel *dev) {
        if (!dev)
            return;
        dev->setDomainRouter(this);
        // Lower bound on any request's completion relative to its
        // issue cycle: complete = busStart + transfer with
        // busStart >= casTime + toCore(scaledCAS()) and
        // casTime >= now (see DramChannel::issue). The transfer term
        // can be zero for a narrow request on a wide bus, so only
        // the CAS term is counted.
        minLat = std::min(
            minLat, dev->timing().toCore(dev->timing().scaledCAS()));
        for (std::uint32_t c = 0; c < dev->numChannels(); ++c) {
            DramChannel &ch = dev->channel(c);
            Domain *home = nullptr;
            for (auto &d : domains_) {
                if (&d->eq == &ch.queue()) {
                    home = d.get();
                    break;
                }
            }
            sim_assert(home != nullptr,
                       "channel was not built on a domain queue shard "
                       "(pass the engine as the MemSystem's "
                       "ChannelQueueMap)");
            ch.setCompletionSink(&home->outbox);
            auto shard = std::make_unique<EnergyShard>();
            shard->device = &dev->power();
            ch.setEnergySink(&shard->stats);
            shards_.push_back(std::move(shard));
        }
    };
    attachDevice(mem.inPkg());
    attachDevice(mem.offPkg());
    sim_assert(minLat != kNoCycle, "no DRAM device to shard");
    window_ = minLat / 2;
    sim_assert(window_ >= 1,
               "minimum DRAM completion latency (%llu core cycles) is "
               "too small to bound epoch skew — event domains need a "
               "round trip of at least 2 cycles",
               static_cast<unsigned long long>(minLat));
}

void
DomainEngine::startWorkers()
{
    if (workersRunning_)
        return;
    workersRunning_ = true;
    for (auto &d : domains_) {
        Domain *dp = d.get();
        d->thread = std::thread([this, dp] { workerLoop(*dp); });
    }
}

void
DomainEngine::stopWorkers()
{
    if (!workersRunning_)
        return;
    stopRequested_ = true;
    go_.fetch_add(1, std::memory_order_release);
    for (auto &d : domains_) {
        if (d->thread.joinable())
            d->thread.join();
    }
    workersRunning_ = false;
    stopRequested_ = false;
}

void
DomainEngine::workerLoop(Domain &d)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t g;
        std::uint32_t spins = 0;
        // Epochs are tens of cycles of simulated time — microseconds
        // of host time — so spin first and only yield when the
        // frontend's window runs long (or the machine is loaded).
        while ((g = go_.load(std::memory_order_acquire)) == seen) {
            if (++spins >= spinLimit_) {
                std::this_thread::yield();
                spins = 0;
            }
        }
        seen = g;
        if (stopRequested_)
            return;
        if (workerLimitEnd_ > 0)
            d.eq.run(workerLimitEnd_ - 1);
        arrived_.fetch_add(1, std::memory_order_release);
    }
}

void
DomainEngine::releaseWorkers(Cycle limitEnd)
{
    workerLimitEnd_ = limitEnd;
    go_.fetch_add(1, std::memory_order_release);
}

void
DomainEngine::waitWorkers()
{
    const std::uint32_t n = numWorkers();
    std::uint32_t spins = 0;
    while (arrived_.load(std::memory_order_acquire) < n) {
        if (++spins >= spinLimit_) {
            std::this_thread::yield();
            spins = 0;
        }
    }
    arrived_.store(0, std::memory_order_relaxed);
}

void
DomainEngine::exchange(Cycle channelWindowStart, Cycle frontendWindowStart)
{
    // Frontend pushes -> channel domain queues, in frontend execution
    // order (same-cycle envelopes for one channel keep FIFO order on
    // its queue). The skew contract: the channel domains are about to
    // run the window starting at @p channelWindowStart, so no
    // envelope may target an earlier cycle.
    for (Envelope &e : inbox_) {
        sim_assert(e.when >= channelWindowStart,
                   "cross-domain request targets its channel's past "
                   "(send %llu < window start %llu)",
                   static_cast<unsigned long long>(e.when),
                   static_cast<unsigned long long>(channelWindowStart));
        DramChannel *ch = e.ch;
        ch->queue().schedule(
            e.when, [ch, r = std::move(e.req)](Cycle) mutable {
                ch->push(std::move(r));
            });
    }
    inbox_.clear();

    // Channel completions -> frontend queue, merged in deterministic
    // (cycle, domain, issue-order) order. A completion recorded in
    // the channels' just-finished window is at least 2W after that
    // window's start, i.e. no earlier than the frontend's next
    // window at @p frontendWindowStart.
    mergeScratch_.clear();
    for (std::size_t d = 0; d < domains_.size(); ++d) {
        auto &items = domains_[d]->outbox.items;
        for (std::size_t i = 0; i < items.size(); ++i) {
            mergeScratch_.push_back(
                MergeRef{items[i].when, static_cast<std::uint32_t>(d),
                         static_cast<std::uint32_t>(i)});
        }
    }
    std::sort(mergeScratch_.begin(), mergeScratch_.end(),
              [](const MergeRef &a, const MergeRef &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.domain != b.domain)
                      return a.domain < b.domain;
                  return a.index < b.index;
              });
    for (const MergeRef &m : mergeScratch_) {
        Domain::Completion &c = domains_[m.domain]->outbox.items[m.index];
        sim_assert(c.when >= frontendWindowStart,
                   "cross-domain completion targets the frontend's past "
                   "(complete %llu < window start %llu)",
                   static_cast<unsigned long long>(c.when),
                   static_cast<unsigned long long>(frontendWindowStart));
        frontend_.schedule(c.when, std::move(c.fn));
    }
    for (auto &d : domains_)
        d->outbox.items.clear();
}

void
DomainEngine::runPhase(const std::function<bool()> &done)
{
    sim_assert(window_ > 0, "DomainEngine::attach was not called");
    startWorkers();
    // Phase boundaries schedule restart work (core kicks, fresh
    // instruction limits) at the frontend's current cycle, which lies
    // inside the window the frontend ran last. Step the pipeline back
    // one window so that work executes in a window that covers its
    // cycle. Safe on both sides: the frontend queue holds no
    // already-executed events, and the channel domains have executed
    // only up to that window's start, so nothing is delivered into
    // their past.
    if (nextFrontendWindow_ > 0)
        --nextFrontendWindow_;
    while (!done()) {
        const Cycle cEnd =
            static_cast<Cycle>(nextFrontendWindow_) * window_;
        const Cycle fEnd = cEnd + window_;
        // Workers run window k-1 (events < cEnd) while the frontend
        // runs window k (events < fEnd) — the stagger-1 pipeline.
        releaseWorkers(cEnd);
        frontend_.run(fEnd - 1);
        waitWorkers();
        exchange(cEnd, fEnd);
        ++nextFrontendWindow_;
        ++epochs_;
        if (done())
            break;

        // Idle fast-forward: if the next event anywhere is beyond the
        // upcoming windows, jump the pipeline to it instead of
        // spinning through empty epochs. The channel domains (one
        // window behind) bound the jump: the new frontend window must
        // stay one ahead of the earliest channel-domain event.
        const Cycle mF = frontend_.nextEventCycle();
        Cycle mD = kNoCycle;
        for (auto &d : domains_)
            mD = std::min(mD, d->eq.nextEventCycle());
        sim_assert(mF != kNoCycle || mD != kNoCycle,
                   "all event queues drained with the phase "
                   "unfinished — a memory response was lost");
        const std::uint64_t fCand =
            mF == kNoCycle ? ~0ull : mF / window_;
        const std::uint64_t dCand =
            mD == kNoCycle ? ~0ull : mD / window_ + 1;
        const std::uint64_t target = std::min(fCand, dCand);
        if (target > nextFrontendWindow_)
            nextFrontendWindow_ = target;
    }
}

void
DomainEngine::mergeEnergy()
{
    for (auto &s : shards_) {
        s->device->absorb(s->stats);
        s->stats.reset();
    }
}

void
DomainEngine::resetEnergyShards()
{
    for (auto &s : shards_)
        s->stats.reset();
}

std::uint64_t
DomainEngine::domainEventsExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->eq.eventsExecuted();
    return n;
}

} // namespace banshee
