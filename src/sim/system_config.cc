#include "sim/system_config.hh"

namespace banshee {

const char *
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::NoCache:
        return "NoCache";
      case SchemeKind::CacheOnly:
        return "CacheOnly";
      case SchemeKind::Alloy:
        return "Alloy";
      case SchemeKind::Unison:
        return "Unison";
      case SchemeKind::Tdc:
        return "TDC";
      case SchemeKind::Hma:
        return "HMA";
      case SchemeKind::Banshee:
        return "Banshee";
    }
    return "?";
}

SystemConfig
SystemConfig::scaledDefault()
{
    SystemConfig c;
    // Table 2 shape: 16 cores, 4-issue OoO; four in-package channels
    // and one off-package channel with identical DDR-1333 timing.
    c.mem.numMcs = 4;
    c.mem.numOffPkgChannels = 1;
    c.mem.inPkgCapacity = 128ull << 20;
    c.footprintScale = 1.0;
    c.autoWarmup = true;
    return c;
}

SystemConfig
SystemConfig::paperDefault()
{
    SystemConfig c = scaledDefault();
    c.mem.inPkgCapacity = 1ull << 30;
    c.footprintScale = 8.0;
    c.warmupInstrPerCore = 2'000'000;
    c.measureInstrPerCore = 4'000'000;
    return c;
}

SystemConfig
SystemConfig::testDefault()
{
    SystemConfig c = scaledDefault();
    c.mem.inPkgCapacity = 8ull << 20;
    c.footprintScale = 1.0 / 16.0;
    c.warmupInstrPerCore = 20'000;
    c.measureInstrPerCore = 30'000;
    c.banshee.checkStaleInvariant = true;
    return c;
}

SystemConfig &
SystemConfig::withScheme(SchemeKind kind)
{
    scheme = kind;
    if (kind == SchemeKind::NoCache)
        mem.hasInPkg = false;
    else
        mem.hasInPkg = true;
    if (kind == SchemeKind::CacheOnly)
        mem.hasOffPkg = false;
    else
        mem.hasOffPkg = true;
    return *this;
}

SystemConfig &
SystemConfig::withAlloyFillProb(double p)
{
    alloy.fillProbability = p;
    return *this;
}

SystemConfig &
SystemConfig::withResizeStep(std::uint64_t epoch, std::uint32_t targetSlices,
                             ResizeStrategy strategy)
{
    resize.enabled = true;
    resize.strategy = strategy;
    resize.policy.kind = ResizePolicyConfig::Kind::Schedule;
    resize.policy.schedule.push_back(ResizeStep{epoch, targetSlices});
    return *this;
}

SystemConfig &
SystemConfig::withPowerCap(double watts, std::uint32_t minSlices)
{
    resize.enabled = true;
    resize.strategy = ResizeStrategy::ConsistentHash;
    resize.policy.kind = ResizePolicyConfig::Kind::PowerCap;
    resize.policy.powerCapWatts = watts;
    resize.policy.minSlices = minSlices;
    return *this;
}

SystemConfig &
SystemConfig::withTenants(std::vector<TenantConfig> list, bool partition)
{
    tenants = std::move(list);
    resize.tenantWeights.clear();
    if (partition) {
        // Quotas ride the consistent-hash ring: partitioning implies
        // the resize subsystem (and therefore the Banshee scheme).
        resize.enabled = true;
        resize.strategy = ResizeStrategy::ConsistentHash;
        for (const TenantConfig &tc : tenants)
            resize.tenantWeights.push_back(tc.weight);
    }
    return *this;
}

SystemConfig &
SystemConfig::withQosArbiter(double capWatts)
{
    resize.enabled = true;
    resize.strategy = ResizeStrategy::ConsistentHash;
    resize.policy.kind = ResizePolicyConfig::Kind::Qos;
    resize.policy.powerCapWatts = capWatts;
    return *this;
}

SystemConfig &
SystemConfig::withDramQos(Cycle epochCycles, Cycle readAgeCap,
                          Cycle writeAgeCap, std::uint32_t writeDrainHigh,
                          std::uint32_t writeDrainLow)
{
    mem.qos.enabled = true;
    mem.qos.epochCycles = epochCycles;
    mem.qos.readAgeCap = readAgeCap;
    mem.qos.writeAgeCap = writeAgeCap;
    mem.qos.writeDrainHigh = writeDrainHigh;
    mem.qos.writeDrainLow = writeDrainLow;
    return *this;
}

SystemConfig &
SystemConfig::withIntraDomains(std::uint32_t n)
{
    sim_assert(n >= 1, "intraDomains must be >= 1");
    intraDomains = n;
    return *this;
}

SystemConfig &
SystemConfig::withTelemetry(std::string path, Cycle epochCycles)
{
    telemetry.enabled = true;
    telemetry.path = std::move(path);
    if (epochCycles > 0)
        telemetry.epochCycles = epochCycles;
    return *this;
}

SystemConfig &
SystemConfig::withSpanTrace(std::string path, std::uint32_t sampleShift)
{
    spans.enabled = true;
    spans.path = std::move(path);
    spans.sampleShift = sampleShift;
    return *this;
}

} // namespace banshee
