/**
 * @file
 * Intra-system event domains: parallel execution of one System's
 * event queue split into a frontend domain (cores, SRAM hierarchy,
 * TLBs, OS, schemes) and one or more DRAM-channel domains, each with
 * its own EventQueue shard driven by a worker thread.
 *
 * Synchronization is an epoch-barrier pipeline with bounded skew.
 * Simulated time is cut into fixed windows of W cycles, where
 * 2W <= the minimum DRAM completion latency (a request issued at
 * cycle t completes no earlier than t + toCore(scaledCAS()), see
 * DramChannel::issue). The frontend runs window k while the channel
 * domains run window k-1; at the barrier between epochs the frontend
 * thread — alone, so no locks — exchanges the two mailbox directions:
 *
 *  - requests the frontend pushed during window k are scheduled onto
 *    their channel's domain queue at the exact send cycle (the
 *    domain is about to run window k, so nothing lands in its past);
 *  - completions the channels recorded during window k-1 are merged
 *    in deterministic (cycle, domain, issue-order) order onto the
 *    frontend queue. A completion of a request issued in window k-1
 *    is at earliest (k-1)W + 2W = (k+1)W — exactly the start of the
 *    window the frontend runs next, so no completion can arrive in
 *    the frontend's past either. Both bounds are sim_assert'ed.
 *
 * Determinism: each domain runs single-threaded over deterministic
 * inputs delivered in a deterministic order, so simulated results
 * are bit-reproducible for a fixed domain count. Different domain
 * counts (including 1, the serial engine) are different — equally
 * valid — interleavings of same-cycle events. With the engine off
 * (SystemConfig::intraDomains == 1) none of these hooks are
 * installed and behavior is byte-identical to the serial engine.
 */

#ifndef BANSHEE_SIM_DOMAIN_ENGINE_HH
#define BANSHEE_SIM_DOMAIN_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/event_queue.hh"
#include "dram/dram_model.hh"
#include "power/energy_stats.hh"

namespace banshee {

class MemSystem;

class DomainEngine : public ChannelQueueMap, public DramDomainRouter
{
  public:
    /** @p numWorkers channel domains (>= 1); channels are assigned
     *  round-robin in construction order via nextChannelQueue(). */
    DomainEngine(EventQueue &frontend, std::uint32_t numWorkers);
    ~DomainEngine() override;

    DomainEngine(const DomainEngine &) = delete;
    DomainEngine &operator=(const DomainEngine &) = delete;

    // ChannelQueueMap (used during MemSystem construction).
    EventQueue &nextChannelQueue() override;

    // DramDomainRouter: frontend-side push -> mailbox envelope.
    void send(DramChannel &ch, DramRequest req) override;

    /**
     * Wire the engine to the constructed memory system: install the
     * request router on both devices, attach a completion sink and a
     * private energy shard to every channel, and derive the epoch
     * width from the fastest device's minimum completion latency.
     */
    void attach(MemSystem &mem);

    /**
     * Run one simulation phase: the epoch-barrier loop described in
     * the file comment, until @p done() (checked on the frontend
     * thread at each epoch boundary) returns true. Queues and epoch
     * counters persist across phases, mirroring how the serial
     * engine leaves queued events in place at a phase boundary.
     */
    void runPhase(const std::function<bool()> &done);

    /** Fold the per-channel energy shards into their device models
     *  in fixed channel order (call between phases / before stats
     *  collection — the workers are quiescent at the barrier). */
    void mergeEnergy();

    /** Zero the per-channel energy shards (warmup boundary). */
    void resetEnergyShards();

    std::uint32_t numWorkers() const
    {
        return static_cast<std::uint32_t>(domains_.size());
    }

    /** Epoch window width W in core cycles (valid after attach). */
    Cycle epochCycles() const { return window_; }

    /** Barrier round-trips completed (across all phases). */
    std::uint64_t epochsRun() const { return epochs_; }

    /** Events executed on the channel-domain queues (for host-perf
     *  accounting next to the frontend queue's own counter). */
    std::uint64_t domainEventsExecuted() const;

  private:
    /** One channel domain: queue shard + completion outbox + the
     *  channels whose schedulers live here. */
    struct Domain
    {
        /** Completion outbox: appended by this domain's thread in
         *  execution order, drained by the frontend at the barrier. */
        struct Completion
        {
            Cycle when = 0;
            DramDoneFn fn;
        };

        struct Sink : DramCompletionSink
        {
            std::vector<Completion> items;

            void
            deliver(Cycle when, DramDoneFn fn) override
            {
                items.push_back(Completion{when, std::move(fn)});
            }
        };

        EventQueue eq;
        Sink outbox;
        std::thread thread;
    };

    /** A frontend push bound for an out-of-domain channel. */
    struct Envelope
    {
        DramChannel *ch = nullptr;
        Cycle when = 0;
        DramRequest req;
    };

    /** A channel's energy shard and the device model it folds into. */
    struct EnergyShard
    {
        EnergyStats stats;
        DramPowerModel *device = nullptr;
    };

    void startWorkers();
    void stopWorkers();
    void workerLoop(Domain &d);

    /** Release the workers to run events below @p limitEnd. */
    void releaseWorkers(Cycle limitEnd);
    void waitWorkers();

    /** Deliver both mailbox directions (frontend thread, all other
     *  threads parked at the barrier). @p channelWindowStart is the
     *  start of the window the channel domains run next and
     *  @p frontendWindowStart the start of the frontend's next
     *  window — the two no-message-in-the-past skew bounds. */
    void exchange(Cycle channelWindowStart, Cycle frontendWindowStart);

    /** Sort key for the deterministic completion merge: completion
     *  cycle, then domain id, then the domain's append order. */
    struct MergeRef
    {
        Cycle when;
        std::uint32_t domain;
        std::uint32_t index;
    };

    EventQueue &frontend_;
    std::vector<std::unique_ptr<Domain>> domains_;
    std::vector<std::unique_ptr<EnergyShard>> shards_;
    std::vector<Envelope> inbox_;
    std::vector<MergeRef> mergeScratch_;

    Cycle window_ = 0;              ///< W (set by attach)
    std::uint64_t nextFrontendWindow_ = 0;
    std::uint64_t epochs_ = 0;
    std::uint32_t nextQueue_ = 0;   ///< round-robin assignment cursor
    std::uint32_t spinLimit_ = 4096; ///< 1 on oversubscribed hosts
    bool workersRunning_ = false;

    // Sense-reversing release/arrive barrier. The payload fields are
    // plain: they are written by the frontend before the go_ release
    // store and read by workers after the acquire load (and vice
    // versa through arrived_).
    std::atomic<std::uint64_t> go_{0};
    std::atomic<std::uint32_t> arrived_{0};
    Cycle workerLimitEnd_ = 0;
    bool stopRequested_ = false;
};

} // namespace banshee

#endif // BANSHEE_SIM_DOMAIN_ENGINE_HH
