/**
 * @file
 * Full-system configuration (paper Tables 2 and 3) plus experiment
 * knobs. Two presets:
 *
 *  - scaledDefault(): the default for this repository's benches —
 *    same shape as the paper's system but with a 128 MB DRAM cache
 *    and proportionally scaled workload footprints, so every
 *    experiment runs in seconds while preserving the cache:footprint
 *    and bandwidth ratios the paper's conclusions depend on;
 *  - paperDefault(): the paper's 1 GB cache and full footprints (for
 *    long runs).
 */

#ifndef BANSHEE_SIM_SYSTEM_CONFIG_HH
#define BANSHEE_SIM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include <vector>

#include "cache/hierarchy.hh"
#include "core/banshee.hh"
#include "cpu/core_model.hh"
#include "cpu/tlb.hh"
#include "mem/mem_system.hh"
#include "os/os_services.hh"
#include "resize/resize_config.hh"
#include "schemes/alloy.hh"
#include "schemes/batman.hh"
#include "schemes/hma.hh"
#include "schemes/unison.hh"
#include "telemetry/span_trace.hh"
#include "telemetry/telemetry_config.hh"
#include "tenant/tenant.hh"

namespace banshee {

enum class SchemeKind : std::uint8_t
{
    NoCache,
    CacheOnly,
    Alloy,     ///< fill probability from AlloyConfig (1.0 or 0.1)
    Unison,
    Tdc,
    Hma,
    Banshee
};

const char *schemeKindName(SchemeKind kind);

struct SystemConfig
{
    // Table 2.
    std::uint32_t numCores = 16;
    CoreParams core;
    HierarchyParams hierarchy;
    TlbParams tlb;
    MemSystemParams mem;
    OsCosts osCosts;

    // Scheme selection + per-scheme knobs (Table 3 for Banshee).
    SchemeKind scheme = SchemeKind::Banshee;
    AlloyConfig alloy;
    UnisonConfig unison;
    HmaConfig hma;
    BansheeConfig banshee;

    bool enableBatman = false;
    BatmanParams batman;

    /** Dynamic DRAM-cache resizing (Banshee scheme only). */
    ResizeConfig resize;

    /** Epoch-resolved telemetry (off by default: zero hot-path work). */
    TelemetryConfig telemetry;

    /** Sampled page-lifecycle span tracing (off by default). */
    SpanTraceConfig spans;

    /**
     * Multi-tenant mode: when non-empty, cores are split between the
     * tenants and each tenant's cores run its own workload over its
     * own private heap regions. See withTenants for the quota
     * (slice-partitioning) semantics.
     */
    std::vector<TenantConfig> tenants;

    /**
     * Intra-system event domains (sim/domain_engine.hh): 1 (default)
     * runs the whole system on one event queue, byte-identical to
     * every prior release; N > 1 adds up to N-1 DRAM-channel domains
     * on their own threads, pipelined against the frontend with
     * epoch barriers. Results are bit-reproducible for a fixed N but
     * differ across N (different same-cycle interleavings).
     */
    std::uint32_t intraDomains = 1;

    // Workload + run control.
    std::string workload = "pagerank";
    double footprintScale = 1.0;
    std::uint64_t warmupInstrPerCore = 1'200'000;
    std::uint64_t measureInstrPerCore = 1'200'000;
    std::uint64_t seed = 42;

    /**
     * Scale the warmup budget with the workload's sweep length: when
     * the workload is a pure sequential sweep whose total footprint
     * fits the DRAM cache (libquantum), raise warmupInstrPerCore so
     * the measured window starts from steady-state residency
     * (@c warmupSweeps full passes). Streams larger than the cache
     * have no steady state to warm into and are left alone.
     */
    bool autoWarmup = false;
    std::uint32_t warmupSweeps = 2;

    /** Scaled default (128 MB cache) — see file comment. */
    static SystemConfig scaledDefault();

    /** Paper-sized system (1 GB cache, 8x footprints). */
    static SystemConfig paperDefault();

    /** Tiny system for unit tests (8 MB cache, 1/16 footprints). */
    static SystemConfig testDefault();

    /** Apply a scheme selection with that scheme's paper defaults. */
    SystemConfig &withScheme(SchemeKind kind);

    /** Convenience for Alloy-1 vs Alloy-0.1. */
    SystemConfig &withAlloyFillProb(double p);

    /**
     * Enable resizing with a scripted schedule: shrink/grow to
     * @p targetSlices at measured-phase epoch @p epoch.
     */
    SystemConfig &withResizeStep(std::uint64_t epoch,
                                 std::uint32_t targetSlices,
                                 ResizeStrategy strategy =
                                     ResizeStrategy::ConsistentHash);

    /**
     * Enable resizing driven by an in-package power cap of @p watts
     * (PowerCapPolicy), never shrinking below @p minSlices.
     */
    SystemConfig &withPowerCap(double watts, std::uint32_t minSlices = 1);

    /**
     * Multi-tenant run: split the cores between @p list and run each
     * tenant's workload on its cores (Banshee scheme required for
     * quotas). With @p partition true (the default) the DRAM cache's
     * slices are apportioned over the tenant weights — each tenant's
     * quota is its share of the consistent-hash ring's points — and
     * page placement confines every tenant to its quota. With
     * @p partition false the tenants share the whole cache (the
     * unpartitioned baseline); per-tenant statistics still split.
     */
    SystemConfig &withTenants(std::vector<TenantConfig> list,
                              bool partition = true);

    /**
     * Enable the QoS arbiter on a tenant-partitioned cache: slice
     * ownership rebalances toward the quota weights, thrashing
     * tenants may borrow from cold ones (never below a tenant's
     * entitlement), and an optional in-package power cap of
     * @p capWatts sheds slices from the tenant furthest over quota.
     */
    SystemConfig &withQosArbiter(double capWatts = 0.0);

    /**
     * Enable the QoS channel scheduler on the in-package device:
     * per-tenant bandwidth credits on an epoch clock plus age-bounded
     * FR-FCFS and a bounded write-drain age (see dram/qos_sched.hh).
     * Off by default — seed-default runs stay byte-identical.
     */
    SystemConfig &withDramQos(Cycle epochCycles = 8192,
                              Cycle readAgeCap = 4096,
                              Cycle writeAgeCap = 16384,
                              std::uint32_t writeDrainHigh = 0,
                              std::uint32_t writeDrainLow = 0);

    /**
     * Split this system's event execution across @p n event domains
     * (see the intraDomains field; n == 1 restores the serial
     * engine). Incompatible with telemetry, span tracing, the QoS
     * channel scheduler, Batman, and power-driven resize policies —
     * those read state across the domain boundary mid-run.
     */
    SystemConfig &withIntraDomains(std::uint32_t n);

    /**
     * Enable epoch-resolved telemetry: metric time series, latency
     * histograms and a structured JSONL event trace appended to
     * @p path. @p epochCycles 0 keeps the default sampling cadence
     * (the ResizeController's 20 us epoch).
     */
    SystemConfig &withTelemetry(std::string path, Cycle epochCycles = 0);

    /**
     * Enable causal page/request span tracing: 1/2^sampleShift of
     * page frames (deterministic seeded hash) record their full
     * lifecycle — access outcomes, FBR decisions, residency,
     * channel queueing vs service, migration, quota changes — as
     * Chrome trace-event JSON loadable in Perfetto. @p path may be a
     * directory (one trace per run label). See telemetry/span_trace.hh.
     */
    SystemConfig &withSpanTrace(std::string path,
                                std::uint32_t sampleShift = 6);
};

} // namespace banshee

#endif // BANSHEE_SIM_SYSTEM_CONFIG_HH
