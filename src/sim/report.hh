/**
 * @file
 * Fixed-width table printing for the bench binaries, so each bench
 * reproduces its paper table/figure as aligned rows on stdout.
 */

#ifndef BANSHEE_SIM_REPORT_HH
#define BANSHEE_SIM_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

namespace banshee {

class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers,
                          int columnWidth = 12)
        : headers_(std::move(headers)), width_(columnWidth)
    {
    }

    void printHeader() const;
    void printRow(const std::vector<std::string> &cells) const;
    void printRule() const;

  private:
    std::vector<std::string> headers_;
    int width_;
};

/** Format a double with @p decimals places. */
std::string fmt(double value, int decimals = 2);

/** Banner printed at the top of every bench binary. */
void printBanner(const std::string &title, const std::string &paperRef);

} // namespace banshee

#endif // BANSHEE_SIM_REPORT_HH
