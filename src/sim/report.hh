/**
 * @file
 * Fixed-width table printing for the bench binaries, so each bench
 * reproduces its paper table/figure as aligned rows on stdout, plus
 * the shared machine-readable result serialization every bench's
 * --json flag uses.
 */

#ifndef BANSHEE_SIM_REPORT_HH
#define BANSHEE_SIM_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/system.hh"

namespace banshee {

class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers,
                          int columnWidth = 12)
        : headers_(std::move(headers)), width_(columnWidth)
    {
    }

    void printHeader() const;
    void printRow(const std::vector<std::string> &cells) const;
    void printRule() const;

  private:
    std::vector<std::string> headers_;
    int width_;
};

/** Format a double with @p decimals places. */
std::string fmt(double value, int decimals = 2);

/** Banner printed at the top of every bench binary. */
void printBanner(const std::string &title, const std::string &paperRef);

/**
 * Serialize one sweep as JSON: run metadata, per-category traffic,
 * per-category energy, and the headline scalars of every RunResult,
 * keyed by its experiment label. Fatal (sim_assert) when @p labels
 * and @p results disagree in length; dies on I/O errors.
 *
 * When @p perf is given (opt-in via the benches' --host-perf flag —
 * host timings are nondeterministic, so stamping them by default
 * would break byte-identical output), each result carries a
 * "hostPerf" object with its wall-clock seconds and events/sec, and
 * the file gains a sweep-level aggregate — the start of a simulator
 * performance trajectory across BENCH_*.json files.
 */
void writeResultsJson(const std::string &path, const std::string &bench,
                      const std::vector<std::string> &labels,
                      const std::vector<RunResult> &results,
                      const SweepPerf *perf = nullptr);

} // namespace banshee

#endif // BANSHEE_SIM_REPORT_HH
