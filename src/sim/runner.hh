/**
 * @file
 * Parallel experiment runner: each experiment is an independent
 * (config, label) pair simulated on its own thread. Used by every
 * bench binary to sweep workloads x schemes in minutes instead of
 * hours.
 */

#ifndef BANSHEE_SIM_RUNNER_HH
#define BANSHEE_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/system_config.hh"

namespace banshee {

struct Experiment
{
    std::string label;
    SystemConfig config;
};

/**
 * Run all experiments, @p threads at a time (0 = hardware
 * concurrency). Results are returned in the input order.
 */
std::vector<RunResult> runExperiments(const std::vector<Experiment> &exps,
                                      unsigned threads = 0,
                                      bool showProgress = true);

/**
 * Build the standard scheme sweep of Figures 4-6 for one workload:
 * NoCache, Unison, TDC, Alloy 1, Alloy 0.1, Banshee, CacheOnly.
 */
std::vector<Experiment> schemeSweep(const SystemConfig &base,
                                    const std::string &workload);

/**
 * Build the resize comparison for one workload: Banshee with no
 * resize, with a consistent-hash resize, and with a naive flush
 * resize — all shrinking to @p targetSlices at measured-phase epoch
 * @p epoch. Resize knobs (slices, epoch length, migration rate) come
 * from @p base.resize.
 */
std::vector<Experiment> resizeSweep(const SystemConfig &base,
                                    const std::string &workload,
                                    std::uint64_t epoch,
                                    std::uint32_t targetSlices);

/**
 * Geometric mean helper (the paper's average bars). Defined as 0 for
 * an empty input and whenever any value is 0 (the mathematical
 * limit); values must not be negative.
 */
double geomean(const std::vector<double> &values);

} // namespace banshee

#endif // BANSHEE_SIM_RUNNER_HH
