/**
 * @file
 * Sharded in-process sweep runner: each experiment is an independent
 * (config, label) pair, and a worker pool claims shards (contiguous
 * chunks) of the experiment list. Used by every bench binary to
 * sweep workloads x schemes in minutes instead of hours.
 *
 * Safe-parallelism contract (audited for the engine refactor): a
 * `System` owns every piece of mutable simulation state it touches —
 * its EventQueue, all component RNGs (seeded from its config), stats
 * and telemetry buffers. The only cross-`System` mutable state is
 * the TraceSink registry (mutex-protected; concurrent JSONL writers
 * append line-atomically), the process-wide `logVerbosity` knob
 * (written during argument parsing, before any worker thread
 * starts), and `warn_once` dedup flags (atomic). Sweeps therefore
 * shard freely across threads with no simulation-visible interaction
 * between experiments.
 */

#ifndef BANSHEE_SIM_RUNNER_HH
#define BANSHEE_SIM_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "sim/system_config.hh"

namespace banshee {

struct Experiment
{
    std::string label;
    SystemConfig config;
};

/** Host-side cost of simulating one experiment (simulator
 *  performance, not simulated results). */
struct RunPerf
{
    double wallSeconds = 0.0;
    std::uint64_t events = 0; ///< events the experiment's queue ran

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(events) / wallSeconds
                   : 0.0;
    }
};

/** Host-side cost of a whole sweep. */
struct SweepPerf
{
    double wallSeconds = 0.0;          ///< whole-sweep wall clock
    std::vector<RunPerf> experiments;  ///< input order

    std::uint64_t totalEvents() const;
    /** Aggregate simulation throughput: events committed across all
     *  experiments per second of sweep wall clock. */
    double eventsPerSec() const;
};

struct SweepOptions
{
    unsigned threads = 0; ///< simultaneous experiments; 0 = hw conc.
    /** Experiments claimed per worker fetch. 0 = auto: chunks sized
     *  so each worker makes several claims (load balance) without a
     *  fetch per experiment on huge grids. */
    std::size_t shard = 0;
    bool showProgress = true;
    SweepPerf *perf = nullptr; ///< optional host-performance out
};

/**
 * Run all experiments across a worker pool claiming shards of the
 * list. Results are returned in the input order regardless of
 * thread count or shard size.
 */
std::vector<RunResult> runSweep(const std::vector<Experiment> &exps,
                                const SweepOptions &opts);

/**
 * Back-compat convenience over runSweep(): run all experiments,
 * @p threads at a time (0 = hardware concurrency). When @p perf is
 * given it receives the per-experiment and whole-sweep host cost.
 */
std::vector<RunResult> runExperiments(const std::vector<Experiment> &exps,
                                      unsigned threads = 0,
                                      bool showProgress = true,
                                      SweepPerf *perf = nullptr);

/**
 * Build the standard scheme sweep of Figures 4-6 for one workload:
 * NoCache, Unison, TDC, Alloy 1, Alloy 0.1, Banshee, CacheOnly.
 */
std::vector<Experiment> schemeSweep(const SystemConfig &base,
                                    const std::string &workload);

/**
 * Build the resize comparison for one workload: Banshee with no
 * resize, with a consistent-hash resize, and with a naive flush
 * resize — all shrinking to @p targetSlices at measured-phase epoch
 * @p epoch. Resize knobs (slices, epoch length, migration rate) come
 * from @p base.resize.
 */
std::vector<Experiment> resizeSweep(const SystemConfig &base,
                                    const std::string &workload,
                                    std::uint64_t epoch,
                                    std::uint32_t targetSlices);

/**
 * Geometric mean helper (the paper's average bars). Defined as 0 for
 * an empty input and whenever any value is 0 (the mathematical
 * limit); values must not be negative.
 */
double geomean(const std::vector<double> &values);

} // namespace banshee

#endif // BANSHEE_SIM_RUNNER_HH
