/**
 * @file
 * OS-side machinery of Banshee's lazy TLB coherence (paper §3.4).
 *
 * When a Tag Buffer passes its fill threshold, hardware raises an
 * interrupt. A randomly chosen core runs the PTE-update routine: it
 * reads every tag buffer (memory mapped), walks the reverse map to
 * find all PTEs of each remapped physical page, writes the new
 * cached/way bits, then issues one system-wide TLB shootdown and
 * clears the remap bits. Replacements are locked while the routine
 * runs; demand accesses proceed unhindered.
 *
 * Costs are charged as core stalls with the paper's Table 3 numbers:
 * 20 us for the routine (swept in Table 5), 4 us for the shootdown
 * initiator and 1 us for every other core.
 */

#ifndef BANSHEE_OS_OS_SERVICES_HH
#define BANSHEE_OS_OS_SERVICES_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "os/page_table.hh"

namespace banshee {

struct OsCosts
{
    Cycle pteUpdateRoutine = usToCycles(20.0);
    Cycle shootdownInitiator = usToCycles(4.0);
    Cycle shootdownSlave = usToCycles(1.0);
};

class OsServices
{
  public:
    /** Stall a core for N cycles / flush its TLB. */
    struct CoreHooks
    {
        std::function<void(Cycle)> stall;
        std::function<void()> tlbFlush;
    };

    /**
     * Harvest callback registered by each Banshee MC: returns the
     * pages whose remap bits are set and clears those bits.
     */
    using HarvestFn = std::function<std::vector<PageNum>()>;

    /** Replacement lock/unlock hook registered by each Banshee MC. */
    using LockFn = std::function<void(bool)>;

    /** Listener invoked every time a batch PTE update completes (the
     *  resize subsystem resumes stalled migrations from it). */
    using UpdateListenerFn = std::function<void()>;

    OsServices(EventQueue &eq, PageTableManager &pageTable,
               OsCosts costs = OsCosts{}, std::uint64_t seed = 7)
        : eq_(eq), pageTable_(pageTable), costs_(costs), rng_(seed),
          stats_("os"),
          statUpdates_(stats_.counter("pteUpdateRuns")),
          statPagesCommitted_(stats_.counter("pagesCommitted")),
          statPteWrites_(stats_.counter("pteWrites")),
          statShootdowns_(stats_.counter("tlbShootdowns")),
          statResizeCommits_(stats_.counter("resizeCommitRequests"))
    {
    }

    void registerCore(CoreHooks hooks) { cores_.push_back(std::move(hooks)); }

    void
    registerTagBufferHarvester(HarvestFn fn)
    {
        harvesters_.push_back(std::move(fn));
    }

    void registerReplacementLock(LockFn fn) { locks_.push_back(std::move(fn)); }

    void
    registerUpdateListener(UpdateListenerFn fn)
    {
        updateListeners_.push_back(std::move(fn));
    }

    /**
     * Hardware interrupt: a tag buffer crossed its threshold. No-op if
     * an update is already in flight.
     */
    void requestPteUpdate();

    /**
     * Cache-resize cooperation entry point: the migration engine (or
     * the resize controller at transition end) asks for the same batch
     * PTE-update/shootdown routine replacements use, so resize remaps
     * piggyback on the lazy TLB-coherence machinery instead of paying
     * per-page shootdowns.
     */
    void
    requestResizeCommit()
    {
        ++statResizeCommits_;
        requestPteUpdate();
    }

    bool updateInProgress() const { return updateInProgress_; }

    /** Stall every core (used by the HMA software remapper). */
    void
    stallAllCores(Cycle cycles)
    {
        for (auto &c : cores_)
            c.stall(cycles);
    }

    /** System-wide shootdown with the Table 3 cost split. */
    void shootdownAll(CoreId initiator);

    const OsCosts &costs() const { return costs_; }
    void setCosts(const OsCosts &c) { costs_ = c; }

    StatSet &stats() { return stats_; }

    std::uint64_t updateRuns() const { return statUpdates_.value(); }

  private:
    /** PTE-update routine body: harvest + commit + shootdown. */
    void updateDone();

    void finishUpdate();

    EventQueue &eq_;
    PageTableManager &pageTable_;
    OsCosts costs_;
    Rng rng_;
    std::vector<CoreHooks> cores_;
    std::vector<HarvestFn> harvesters_;
    std::vector<LockFn> locks_;
    std::vector<UpdateListenerFn> updateListeners_;
    bool updateInProgress_ = false;
    /** Handler core of the in-flight update; meaningful only when
     *  updateHasHandler_ (the no-core test path skips shootdowns). */
    CoreId updateHandler_ = 0;
    bool updateHasHandler_ = false;
    /** Completion of the in-flight PTE-update routine. At most one
     *  update is in flight (updateInProgress_), so one event. */
    TickEvent updateDoneEvent_{[this] { updateDone(); }};

    StatSet stats_;
    Counter &statUpdates_;
    Counter &statPagesCommitted_;
    Counter &statPteWrites_;
    Counter &statShootdowns_;
    Counter &statResizeCommits_;
};

} // namespace banshee

#endif // BANSHEE_OS_OS_SERVICES_HH
