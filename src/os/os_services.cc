#include "os/os_services.hh"

#include "common/log.hh"

namespace banshee {

void
OsServices::requestPteUpdate()
{
    if (updateInProgress_)
        return;
    updateInProgress_ = true;
    ++statUpdates_;

    // Lock replacements in every memory controller for the duration.
    for (auto &lock : locks_)
        lock(true);

    // The interrupt handler runs on one randomly chosen core.
    if (!cores_.empty()) {
        const CoreId handler =
            static_cast<CoreId>(rng_.nextBelow(cores_.size()));
        cores_[handler].stall(costs_.pteUpdateRoutine);
        eq_.scheduleAfter(costs_.pteUpdateRoutine, [this, handler] {
            // Routine body: read all tag buffers, commit each page via
            // the reverse map, then shoot down all TLBs.
            for (auto &harvest : harvesters_) {
                for (PageNum page : harvest()) {
                    statPteWrites_ += pageTable_.commit(page);
                    ++statPagesCommitted_;
                }
            }
            shootdownAll(handler);
            finishUpdate();
        });
    } else {
        // Degenerate (test) configuration with no cores: commit now.
        eq_.scheduleAfter(costs_.pteUpdateRoutine, [this] {
            for (auto &harvest : harvesters_) {
                for (PageNum page : harvest()) {
                    statPteWrites_ += pageTable_.commit(page);
                    ++statPagesCommitted_;
                }
            }
            finishUpdate();
        });
    }
}

void
OsServices::shootdownAll(CoreId initiator)
{
    ++statShootdowns_;
    for (CoreId c = 0; c < cores_.size(); ++c) {
        cores_[c].stall(c == initiator ? costs_.shootdownInitiator
                                       : costs_.shootdownSlave);
        cores_[c].tlbFlush();
    }
}

void
OsServices::finishUpdate()
{
    for (auto &lock : locks_)
        lock(false);
    updateInProgress_ = false;
    for (auto &listener : updateListeners_)
        listener();
}

} // namespace banshee
