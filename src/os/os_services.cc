#include "os/os_services.hh"

#include "common/log.hh"

namespace banshee {

void
OsServices::requestPteUpdate()
{
    if (updateInProgress_)
        return;
    updateInProgress_ = true;
    ++statUpdates_;

    // Lock replacements in every memory controller for the duration.
    for (auto &lock : locks_)
        lock(true);

    // The interrupt handler runs on one randomly chosen core (the
    // degenerate no-core test configuration just commits). At most
    // one update is in flight, so the routine completion is one
    // reusable event.
    updateHasHandler_ = !cores_.empty();
    if (updateHasHandler_) {
        updateHandler_ = static_cast<CoreId>(rng_.nextBelow(cores_.size()));
        cores_[updateHandler_].stall(costs_.pteUpdateRoutine);
    }
    eq_.scheduleAfter(updateDoneEvent_, costs_.pteUpdateRoutine);
}

void
OsServices::updateDone()
{
    // Routine body: read all tag buffers, commit each page via the
    // reverse map, then shoot down all TLBs.
    for (auto &harvest : harvesters_) {
        for (PageNum page : harvest()) {
            statPteWrites_ += pageTable_.commit(page);
            ++statPagesCommitted_;
        }
    }
    if (updateHasHandler_)
        shootdownAll(updateHandler_);
    finishUpdate();
}

void
OsServices::shootdownAll(CoreId initiator)
{
    ++statShootdowns_;
    for (CoreId c = 0; c < cores_.size(); ++c) {
        cores_[c].stall(c == initiator ? costs_.shootdownInitiator
                                       : costs_.shootdownSlave);
        cores_[c].tlbFlush();
    }
}

void
OsServices::finishUpdate()
{
    for (auto &lock : locks_)
        lock(false);
    updateInProgress_ = false;
    for (auto &listener : updateListeners_)
        listener();
}

} // namespace banshee
