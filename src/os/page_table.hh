/**
 * @file
 * Page table with Banshee's PTE extension and a reverse map.
 *
 * Banshee adds a "cached" bit and "way" bits to each PTE
 * (paper Section 3.2). The crucial subtlety of the lazy-coherence
 * design is that PTEs (and therefore TLBs) lag reality: a remap takes
 * effect in hardware immediately (memory controller + Tag Buffer) but
 * is only written into PTEs when tag buffers are batch-flushed
 * (Section 3.4). We model this with two mapping copies per page:
 *
 *   current   — what the hardware (MC + Tag Buffer) knows, updated at
 *               replacement time;
 *   committed — what PTEs/TLBs say, updated by the PTE-update routine.
 *
 * The invariant the design rests on (tested in tests/): whenever
 * current != committed, the page is present in some Tag Buffer with
 * its remap bit set.
 *
 * The reverse map (physical page -> list of virtual aliases) mirrors
 * the OS mechanism the paper leans on for finding PTEs from physical
 * addresses, including the aliasing case TDC cannot handle.
 */

#ifndef BANSHEE_OS_PAGE_TABLE_HH
#define BANSHEE_OS_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace banshee {

/** The PTE extension bits (fits in otherwise-unused PTE bits). */
struct PageMapping
{
    bool cached = false;
    std::uint8_t way = 0;

    bool
    operator==(const PageMapping &o) const
    {
        return cached == o.cached && (!cached || way == o.way);
    }
};

class PageTableManager
{
  public:
    PageTableManager() : stats_("pageTable") {}

    /** Hardware view (MC + Tag Buffer). */
    PageMapping
    currentMapping(PageNum page) const
    {
        auto it = pages_.find(page);
        return it == pages_.end() ? PageMapping{} : it->second.current;
    }

    /** PTE view (what a TLB refill observes). */
    PageMapping
    committedMapping(PageNum page) const
    {
        auto it = pages_.find(page);
        return it == pages_.end() ? PageMapping{} : it->second.committed;
    }

    /** Version of the committed mapping (for staleness tracking). */
    std::uint32_t
    committedVersion(PageNum page) const
    {
        auto it = pages_.find(page);
        return it == pages_.end() ? 0 : it->second.committedVersion;
    }

    std::uint32_t
    currentVersion(PageNum page) const
    {
        auto it = pages_.find(page);
        return it == pages_.end() ? 0 : it->second.currentVersion;
    }

    /** True if PTEs lag the hardware mapping for @p page. */
    bool
    isStale(PageNum page) const
    {
        auto it = pages_.find(page);
        return it != pages_.end() &&
               !(it->second.current == it->second.committed);
    }

    /**
     * Hardware remap: takes effect immediately in the current view.
     * Called by the DRAM cache scheme at replacement time.
     */
    void
    setCurrentMapping(PageNum page, PageMapping m)
    {
        Entry &e = pages_[page];
        e.current = m;
        ++e.currentVersion;
    }

    /**
     * PTE-update routine commits one page: walks the reverse map and
     * writes every aliased PTE. Returns the number of PTEs written.
     */
    std::uint32_t
    commit(PageNum page)
    {
        auto it = pages_.find(page);
        if (it == pages_.end())
            return 0;
        Entry &e = it->second;
        e.committed = e.current;
        e.committedVersion = e.currentVersion;
        const std::uint32_t ptes =
            1 + static_cast<std::uint32_t>(e.aliases.size());
        stats_.counter("pteWrites") += ptes;
        return ptes;
    }

    /** Register an extra virtual alias of @p page (for alias tests). */
    void
    addAlias(PageNum page, std::uint64_t virtualPage)
    {
        pages_[page].aliases.push_back(virtualPage);
    }

    const std::vector<std::uint64_t> &
    aliasesOf(PageNum page)
    {
        return pages_[page].aliases;
    }

    /** Number of pages whose PTEs currently lag the hardware. */
    std::uint64_t
    staleCount() const
    {
        std::uint64_t n = 0;
        for (const auto &kv : pages_)
            if (!(kv.second.current == kv.second.committed))
                ++n;
        return n;
    }

    StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        PageMapping current;
        PageMapping committed;
        std::uint32_t currentVersion = 0;
        std::uint32_t committedVersion = 0;
        std::vector<std::uint64_t> aliases;
    };

    std::unordered_map<PageNum, Entry> pages_;
    StatSet stats_;
};

} // namespace banshee

#endif // BANSHEE_OS_PAGE_TABLE_HH
