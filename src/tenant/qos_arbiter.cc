#include "tenant/qos_arbiter.hh"

#include <algorithm>

#include "common/log.hh"

namespace banshee {

const char *
qosReasonName(QosReason r)
{
    switch (r) {
    case QosReason::None:
        return "none";
    case QosReason::CapShed:
        return "cap_shed";
    case QosReason::CapGrow:
        return "cap_grow";
    case QosReason::Rebalance:
        return "rebalance";
    case QosReason::Lend:
        return "lend";
    }
    return "?";
}

QosArbiterPolicy::QosArbiterPolicy(const ResizePolicyConfig &config,
                                   std::vector<double> weights)
    : config_(config), weights_(std::move(weights)), powerCap_(config)
{
    sim_assert(!weights_.empty(), "QoS arbiter without tenants");
}

void
QosArbiterPolicy::setWeights(std::vector<double> weights)
{
    sim_assert(weights.size() == weights_.size(),
               "QoS weight update changes the tenant count");
    weights_ = std::move(weights);
}

double
QosArbiterPolicy::entitled(std::size_t t, std::uint32_t active) const
{
    double sum = 0.0;
    for (double w : weights_)
        sum += w;
    return weights_[t] / sum * active;
}

QosDecision
QosArbiterPolicy::decide(const std::vector<TenantEpochStats> &tenantStats,
                         const ResizeEpochStats &total,
                         const std::vector<std::uint32_t> &owned,
                         std::uint32_t activeSlices,
                         std::uint32_t totalSlices) const
{
    const std::size_t n = weights_.size();
    sim_assert(tenantStats.size() == n && owned.size() == n,
               "QoS arbiter input width mismatch");
    const std::uint32_t floor =
        std::max<std::uint32_t>(config_.minSlicesPerTenant, 1);

    // ---------------------------------------- power-cap composition
    // The cap decides the count; the arbiter decides whose slice.
    if (const auto capTarget =
            powerCap_.decide(total, activeSlices, totalSlices)) {
        QosDecision d;
        d.targetActive = *capTarget;
        d.reason = *capTarget < activeSlices ? QosReason::CapShed
                                             : QosReason::CapGrow;
        if (*capTarget < activeSlices) {
            // Shed from the tenant furthest over its quota at the
            // post-shed size (so repeated sheds distribute fairly).
            double bestOver = -1e300;
            for (std::size_t t = 0; t < n; ++t) {
                if (owned[t] <= floor)
                    continue;
                const double over = static_cast<double>(owned[t]) -
                                    entitled(t, *capTarget);
                if (over > bestOver) {
                    bestOver = over;
                    d.donor = static_cast<TenantId>(t);
                }
            }
            if (d.donor == kNoTenant)
                return QosDecision{}; // every tenant at its floor
        } else {
            // Hand the returning slice to the largest deficit; break
            // ties toward the tenant under more miss pressure.
            double bestUnder = -1e300;
            for (std::size_t t = 0; t < n; ++t) {
                const double under = entitled(t, *capTarget) -
                                     static_cast<double>(owned[t]) +
                                     tenantStats[t].missRate() * 1e-3;
                if (under > bestUnder) {
                    bestUnder = under;
                    d.receiver = static_cast<TenantId>(t);
                }
            }
        }
        return d;
    }

    // -------------------------------------- entitlement rebalance
    // Ownership drifted from the weights (quota change, uneven cap
    // shed): one slice per epoch from max surplus to max deficit.
    double bestDeficit = config_.qosDeficitSlack;
    double bestSurplus = 0.0;
    std::size_t deficitT = n;
    std::size_t surplusT = n;
    for (std::size_t t = 0; t < n; ++t) {
        const double diff = entitled(t, activeSlices) -
                            static_cast<double>(owned[t]);
        if (diff > bestDeficit) {
            bestDeficit = diff;
            deficitT = t;
        }
        if (-diff > bestSurplus && owned[t] > floor) {
            bestSurplus = -diff;
            surplusT = t;
        }
    }
    if (deficitT < n && surplusT < n && deficitT != surplusT) {
        // A loan-sized deficit is not drift: while the surplus tenant
        // is still thrashing and the deficit tenant shows no pressure
        // of its own, reclaiming the lent slice would only flap it
        // back and forth through a full drain every epoch. Anything
        // beyond the one-slice lending allowance is reclaimed
        // regardless — quota remains the steady-state guarantee.
        const TenantEpochStats &def = tenantStats[deficitT];
        const TenantEpochStats &sur = tenantStats[surplusT];
        // Asymmetric evidence bar (hysteresis): granting a loan
        // requires a full epoch's worth of borrower traffic, but
        // *keeping* one only requires the borrower not to have gone
        // idle — otherwise a borrower hovering around the access
        // floor would flip the loan every other epoch.
        const bool surplusThrashing =
            sur.accesses > 0 && sur.missRate() > config_.growMissRate;
        const bool deficitCold =
            def.accesses < config_.minEpochAccesses ||
            def.missRate() < config_.shrinkMissRate;
        const bool loanSized =
            bestDeficit <= 1.0 + config_.qosDeficitSlack;
        if (!(surplusThrashing && deficitCold && loanSized)) {
            QosDecision d;
            d.donor = static_cast<TenantId>(surplusT);
            d.receiver = static_cast<TenantId>(deficitT);
            d.reason = QosReason::Rebalance;
            return d;
        }
    }

    // ------------------------------------------- pressure lending
    // A thrashing tenant may borrow one slice beyond its entitlement
    // from a demonstrably cold tenant — but the donor never drops
    // below one slice under its own entitlement, so quotas remain a
    // floor a hostile tenant cannot arbitrate away.
    std::size_t starved = n;
    double worstMiss = config_.growMissRate;
    for (std::size_t t = 0; t < n; ++t) {
        if (tenantStats[t].accesses < config_.minEpochAccesses)
            continue;
        if (tenantStats[t].missRate() > worstMiss) {
            worstMiss = tenantStats[t].missRate();
            starved = t;
        }
    }
    if (starved < n) {
        std::size_t coldest = n;
        double coldMiss = config_.shrinkMissRate;
        for (std::size_t t = 0; t < n; ++t) {
            if (t == starved || owned[t] <= floor)
                continue;
            if (static_cast<double>(owned[t]) <=
                entitled(t, activeSlices) - 1.0) {
                continue; // already lending its one-slice allowance
            }
            const double mr = tenantStats[t].accesses >=
                                      config_.minEpochAccesses
                                  ? tenantStats[t].missRate()
                                  : 0.0;
            if (mr < coldMiss) {
                coldMiss = mr;
                coldest = t;
            }
        }
        if (coldest < n) {
            QosDecision d;
            d.donor = static_cast<TenantId>(coldest);
            d.receiver = static_cast<TenantId>(starved);
            d.reason = QosReason::Lend;
            return d;
        }
    }

    return QosDecision{};
}

} // namespace banshee
