#include "tenant/tenant_map.hh"

#include <algorithm>

#include "common/log.hh"

namespace banshee {

TenantMap::TenantMap(std::vector<TenantConfig> tenants,
                     std::uint32_t numCores)
    : tenants_(std::move(tenants)), coreOwner_(numCores, kNoTenant)
{
    sim_assert(!tenants_.empty(), "tenant map without tenants");
    sim_assert(tenants_.size() <= kMaxTenants, "more than %zu tenants",
               kMaxTenants);

    // Explicit core counts first; tenants with numCores == 0 split the
    // leftover equally (earlier tenants take the remainder).
    std::uint32_t claimed = 0;
    std::uint32_t flexible = 0;
    for (const TenantConfig &tc : tenants_) {
        sim_assert(tc.weight > 0.0, "tenant '%s' needs a positive weight",
                   tc.name.c_str());
        claimed += tc.numCores;
        flexible += tc.numCores == 0 ? 1 : 0;
    }
    sim_assert(claimed <= numCores,
               "tenants claim %u cores but the system has %u", claimed,
               numCores);
    sim_assert(flexible > 0 || claimed == numCores,
               "tenant core counts (%u) must cover all %u cores", claimed,
               numCores);
    std::uint32_t leftover = numCores - claimed;

    firstCore_.resize(tenants_.size());
    coreCount_.resize(tenants_.size());
    CoreId next = 0;
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
        std::uint32_t count = tenants_[t].numCores;
        if (count == 0) {
            count = leftover / flexible + (leftover % flexible ? 1 : 0);
            count = std::min(count, leftover);
            leftover -= count;
            --flexible;
        }
        sim_assert(count > 0, "tenant '%s' owns no cores",
                   tenants_[t].name.c_str());
        firstCore_[t] = next;
        coreCount_[t] = count;
        for (std::uint32_t c = 0; c < count; ++c)
            coreOwner_[next++] = static_cast<TenantId>(t);
    }
    sim_assert(next == numCores, "core assignment left cores unowned");
}

double
TenantMap::share(TenantId t) const
{
    double sum = 0.0;
    for (const TenantConfig &tc : tenants_)
        sum += tc.weight;
    return tenants_[t].weight / sum;
}

std::vector<double>
TenantMap::weights() const
{
    std::vector<double> w;
    w.reserve(tenants_.size());
    for (const TenantConfig &tc : tenants_)
        w.push_back(tc.weight);
    return w;
}

void
TenantMap::setWeight(TenantId t, double weight)
{
    sim_assert(t < tenants_.size() && weight > 0.0, "bad weight update");
    tenants_[t].weight = weight;
}

void
TenantMap::addRegion(Addr base, Addr limit, TenantId t)
{
    sim_assert(base < limit && t < tenants_.size(), "bad tenant region");
    regions_.push_back(Region{base, limit, t});
    std::sort(regions_.begin(), regions_.end(),
              [](const Region &a, const Region &b) {
                  return a.base < b.base;
              });
    for (std::size_t i = 1; i < regions_.size(); ++i) {
        sim_assert(regions_[i - 1].limit <= regions_[i].base,
                   "tenant regions overlap");
    }
}

TenantId
TenantMap::tenantOfAddr(Addr addr) const
{
    // Binary search for the last region starting at or before addr.
    auto it = std::upper_bound(regions_.begin(), regions_.end(), addr,
                               [](Addr a, const Region &r) {
                                   return a < r.base;
                               });
    if (it == regions_.begin())
        return kNoTenant;
    --it;
    return addr < it->limit ? it->tenant : kNoTenant;
}

} // namespace banshee
