/**
 * @file
 * Who owns what in a multi-tenant run.
 *
 * The TenantMap is the single authority for the two bindings the rest
 * of the system needs:
 *
 *  - core -> tenant: cores are handed to tenants in contiguous runs
 *    (explicit numCores, or an equal split of the leftover), the way
 *    a host partitions hardware threads between co-located jobs;
 *  - address -> tenant: each tenant's workload runs over its cores'
 *    private heap regions, registered here at system build time, so
 *    any layer holding only an address (LLC writebacks, the resize
 *    scan over resident frames, DRAM traffic attribution) can recover
 *    the owner without a core id.
 *
 * Weights double as quota shares for slice apportionment and as the
 * QoS arbiter's entitlement; setWeight models a runtime quota change
 * the arbiter then converges the slice ownership toward.
 */

#ifndef BANSHEE_TENANT_TENANT_MAP_HH
#define BANSHEE_TENANT_TENANT_MAP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "tenant/tenant.hh"

namespace banshee {

class TenantMap
{
  public:
    TenantMap(std::vector<TenantConfig> tenants, std::uint32_t numCores);

    std::uint32_t
    numTenants() const
    {
        return static_cast<std::uint32_t>(tenants_.size());
    }

    const TenantConfig &
    config(TenantId t) const
    {
        return tenants_[t];
    }

    double weight(TenantId t) const { return tenants_[t].weight; }

    /** Normalized quota share of @p t (weights sum to 1). */
    double share(TenantId t) const;

    std::vector<double> weights() const;

    /** Runtime quota change; callers re-arbitrate toward it. */
    void setWeight(TenantId t, double weight);

    TenantId
    tenantOfCore(CoreId core) const
    {
        return core < coreOwner_.size() ? coreOwner_[core] : kNoTenant;
    }

    /** [first, first+count) cores owned by @p t. */
    CoreId firstCore(TenantId t) const { return firstCore_[t]; }
    std::uint32_t coreCount(TenantId t) const { return coreCount_[t]; }

    /** Register [base, limit) as owned by @p t (system build time). */
    void addRegion(Addr base, Addr limit, TenantId t);

    /** Owner of @p addr, or kNoTenant for unregistered (shared) space. */
    TenantId tenantOfAddr(Addr addr) const;

  private:
    struct Region
    {
        Addr base;
        Addr limit;
        TenantId tenant;
    };

    std::vector<TenantConfig> tenants_;
    std::vector<TenantId> coreOwner_;
    std::vector<CoreId> firstCore_;
    std::vector<std::uint32_t> coreCount_;
    std::vector<Region> regions_; ///< sorted by base, non-overlapping
};

} // namespace banshee

#endif // BANSHEE_TENANT_TENANT_MAP_HH
