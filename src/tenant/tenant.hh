/**
 * @file
 * Multi-tenant partitioning of the DRAM cache: core types.
 *
 * Banshee's page-granularity, software-managed placement makes the
 * in-package cache a partitionable resource: pages land on slices
 * through the consistent-hash ring (src/resize), so giving a tenant a
 * subset of the slices — its *quota* — confines the tenant's fills,
 * replacements and evictions to that subset. Quotas are expressed as
 * weights; a tenant's slice count is its share of the ring's points
 * (every slice contributes the same number of virtual nodes, so the
 * share of slices equals the share of ring points), apportioned by
 * the largest-remainder method with a floor of one slice per tenant.
 */

#ifndef BANSHEE_TENANT_TENANT_HH
#define BANSHEE_TENANT_TENANT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace banshee {

/** Tenant identifier. Dense and small: tenants index stat arrays. */
using TenantId = std::uint8_t;

/** "No tenant": untagged traffic, shared slices, disabled features. */
constexpr TenantId kNoTenant = 0xff;

/** Upper bound on concurrently configured tenants (stat array size;
 *  sized for the 16-tenant consolidation grids of ext_scale). */
constexpr std::size_t kMaxTenants = 16;

/**
 * Stat-bucket index for a tenant id: real tenants map to their own
 * bucket, everything else (kNoTenant, overflow) shares the last one,
 * so per-bucket sums always conserve the total.
 */
constexpr std::size_t
tenantBucket(TenantId t)
{
    return t < kMaxTenants ? t : kMaxTenants;
}

/** Buckets per per-tenant stat array: kMaxTenants + the shared one. */
constexpr std::size_t kTenantBuckets = kMaxTenants + 1;

/** One tenant of a multi-tenant run. */
struct TenantConfig
{
    std::string name;      ///< label in reports
    std::string workload;  ///< WorkloadFactory name its cores run
    double weight = 1.0;   ///< quota share (normalized over tenants)
    /** Cores owned by this tenant; 0 = equal split of the leftover. */
    std::uint32_t numCores = 0;
};

/**
 * Largest-remainder apportionment of @p numSlices slices over tenant
 * @p weights, each tenant receiving at least one slice. The returned
 * counts sum to numSlices and deviate from the exact proportional
 * share by less than one slice.
 */
std::vector<std::uint32_t> apportionSlices(const std::vector<double> &weights,
                                           std::uint32_t numSlices);

} // namespace banshee

#endif // BANSHEE_TENANT_TENANT_HH
