/**
 * @file
 * QoS arbitration of DRAM-cache slices between tenants.
 *
 * Layered on the resize machinery: where the scalar policies pick an
 * active-slice *count*, the arbiter picks counts *and owners*. Once
 * per epoch it receives each tenant's demand-traffic delta plus the
 * device power reading and decides one of three things:
 *
 *  - power-cap composition: while the device is over its watt budget
 *    the embedded PowerCapPolicy sheds one slice per epoch, and the
 *    arbiter picks the donor — the tenant furthest over its
 *    weight-entitled share (never below its slice floor). Grows hand
 *    the returning slice to the tenant furthest under quota.
 *  - entitlement rebalance: when slice ownership drifts from the
 *    configured weights (a quota change at runtime, or a cap shrink
 *    that landed unevenly), move one slice per epoch from the largest
 *    surplus to the largest deficit until ownership matches the
 *    apportionment within hysteresis slack.
 *  - pressure lending: a tenant thrashing above growMissRate may
 *    borrow one slice beyond its entitlement from a tenant idling
 *    below shrinkMissRate — but a donor never lends below one slice
 *    under its own entitlement, so quota remains a guarantee: a
 *    streaming tenant cannot arbitrate a busy tenant below its share.
 *
 * Pure function of its inputs; the controller rate-limits it (one
 * transition at a time, settle epochs after each drain).
 */

#ifndef BANSHEE_TENANT_QOS_ARBITER_HH
#define BANSHEE_TENANT_QOS_ARBITER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "power/power_cap_policy.hh"
#include "resize/resize_config.hh"
#include "tenant/tenant.hh"

namespace banshee {

/** One tenant's demand-traffic delta over an epoch. */
struct TenantEpochStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

/** Why the arbiter decided what it decided (trace/telemetry). */
enum class QosReason : std::uint8_t
{
    None,      ///< no action this epoch
    CapShed,   ///< power cap over budget: shed a slice
    CapGrow,   ///< power headroom: regrow a shed slice
    Rebalance, ///< ownership drifted from the quota weights
    Lend,      ///< pressure loan from a cold tenant to a thrasher
};

const char *qosReasonName(QosReason r);

/** What the arbiter wants done this epoch (all fields optional). */
struct QosDecision
{
    /** Change the active-slice count (power cap shed/grow). */
    std::optional<std::uint32_t> targetActive;
    /** Tenant losing a slice (shrinks and reassignments). */
    TenantId donor = kNoTenant;
    /** Tenant gaining a slice (grows and reassignments). */
    TenantId receiver = kNoTenant;
    /** Which rule produced this decision. */
    QosReason reason = QosReason::None;

    /** A same-size ownership transfer donor -> receiver. */
    bool
    reassign() const
    {
        return !targetActive.has_value() && donor != kNoTenant &&
               receiver != kNoTenant;
    }

    bool
    empty() const
    {
        return !targetActive.has_value() && donor == kNoTenant &&
               receiver == kNoTenant;
    }
};

class QosArbiterPolicy
{
  public:
    QosArbiterPolicy(const ResizePolicyConfig &config,
                     std::vector<double> weights);

    /** Runtime quota change; subsequent epochs rebalance toward it. */
    void setWeights(std::vector<double> weights);

    const std::vector<double> &weights() const { return weights_; }

    /**
     * Decide this epoch's action. @p tenantStats and @p owned are
     * indexed by tenant; @p owned counts each tenant's active slices.
     * Pure function of its inputs (testable without a system).
     */
    QosDecision decide(const std::vector<TenantEpochStats> &tenantStats,
                       const ResizeEpochStats &total,
                       const std::vector<std::uint32_t> &owned,
                       std::uint32_t activeSlices,
                       std::uint32_t totalSlices) const;

  private:
    /** Exact (fractional) entitlement of tenant @p t at @p active. */
    double entitled(std::size_t t, std::uint32_t active) const;

    ResizePolicyConfig config_;
    std::vector<double> weights_;
    PowerCapPolicy powerCap_;
};

} // namespace banshee

#endif // BANSHEE_TENANT_QOS_ARBITER_HH
