#include "tenant/tenant.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hh"

namespace banshee {

std::vector<std::uint32_t>
apportionSlices(const std::vector<double> &weights, std::uint32_t numSlices)
{
    const std::size_t n = weights.size();
    sim_assert(n > 0, "apportionment over zero tenants");
    sim_assert(numSlices >= n,
               "%u slices cannot give %zu tenants one slice each",
               numSlices, n);
    double sum = 0.0;
    for (double w : weights) {
        sim_assert(w > 0.0, "tenant weights must be positive");
        sum += w;
    }

    // Floor of the exact share (with the one-slice minimum), then hand
    // the leftover slices to the largest fractional remainders.
    std::vector<std::uint32_t> counts(n);
    std::vector<double> remainder(n);
    std::uint32_t assigned = 0;
    for (std::size_t t = 0; t < n; ++t) {
        const double exact = weights[t] / sum * numSlices;
        counts[t] = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(std::floor(exact)));
        // A tenant already boosted to the one-slice floor holds more
        // than its exact share; letting its fractional remainder also
        // compete for leftovers could hand it a second surplus slice
        // (deviation > 1) at another tenant's expense.
        remainder[t] = counts[t] > exact ? 0.0 : exact - std::floor(exact);
        assigned += counts[t];
    }

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return remainder[a] != remainder[b] ? remainder[a] > remainder[b]
                                            : a < b;
    });
    for (std::size_t i = 0; assigned < numSlices; i = (i + 1) % n) {
        ++counts[order[i]];
        ++assigned;
    }
    // The one-slice floors can overshoot when many tiny weights round
    // up; take the excess back from the largest holders.
    while (assigned > numSlices) {
        auto it = std::max_element(counts.begin(), counts.end());
        sim_assert(*it > 1, "apportionment cannot satisfy slice floors");
        --*it;
        --assigned;
    }
    return counts;
}

} // namespace banshee
