#include "mem/mem_system.hh"

#include "common/log.hh"

namespace banshee {

MemSystem::MemSystem(EventQueue &eq, const MemSystemParams &params,
                     ChannelQueueMap *domains)
    : eq_(eq), params_(params), stats_("memSystem"),
      statFetches_(stats_.counter("fetches")),
      statWritebacks_(stats_.counter("writebacks")),
      statFetchesCompleted_(stats_.counter("fetchesCompleted")),
      statFetchLatencyTotal_(stats_.counter("fetchLatencyTotal"))
{
    if (params_.hasInPkg) {
        inPkg_ = std::make_unique<DramModel>(eq_, params_.inPkgTiming,
                                             params_.numMcs, "inPkg",
                                             params_.inPkgPower, domains);
        if (params_.qos.enabled)
            inPkg_->setQosConfig(params_.qos);
        for (std::uint32_t c = 0; c < inPkg_->numChannels(); ++c)
            inPkg_->channel(c).setKickCoalescing(params_.kickCoalescing);
    }
    if (params_.hasOffPkg) {
        offPkg_ = std::make_unique<DramModel>(
            eq_, params_.offPkgTiming, params_.numOffPkgChannels, "offPkg",
            params_.offPkgPower, domains);
        for (std::uint32_t c = 0; c < offPkg_->numChannels(); ++c)
            offPkg_->channel(c).setKickCoalescing(params_.kickCoalescing);
    }
    sim_assert(inPkg_ || offPkg_, "memory system needs at least one DRAM");
}

void
MemSystem::buildSchemes(const SchemeFactory &factory,
                        PageTableManager *pageTable, OsServices *os,
                        std::uint64_t seed)
{
    schemes_.clear();
    for (std::uint32_t mc = 0; mc < params_.numMcs; ++mc) {
        SchemeContext ctx;
        ctx.eq = &eq_;
        ctx.inPkg = inPkg_.get();
        ctx.offPkg = offPkg_.get();
        ctx.mcId = mc;
        ctx.numMcs = params_.numMcs;
        ctx.cacheBytesPerMc = params_.inPkgCapacity / params_.numMcs;
        ctx.pageTable = pageTable;
        ctx.os = os;
        ctx.tenants = tenants_;
        ctx.seed = seed;
        schemes_.push_back(factory(ctx));
    }
}

void
MemSystem::fetchLine(LineAddr line, const MappingInfo &mapping, CoreId core,
                     MissDoneFn done)
{
    ScopedTimer profile(fetchTimer_);
    ++statFetches_;
    const Cycle issued = eq_.now();
    // Span tracing: tag the fetch with its (sampled) page so the
    // completion closure can stitch an issue->complete span. The page
    // number is at the journal's granularity, which matches the
    // scheme's (System wires both from the same config).
    PageJournal *spans =
        (spans_ && spans_->sampledAddr(lineToAddr(line))) ? spans_
                                                          : nullptr;
    const PageNum spanPage =
        spans ? (lineToAddr(line) >> spans->pageBits()) : 0;
    schemes_[mcOf(line)]->demandFetch(
        line, mapping, core,
        [this, issued, spans, spanPage,
         done = std::move(done)](Cycle when) {
            ++statFetchesCompleted_;
            statFetchLatencyTotal_ += when > issued ? when - issued : 0;
            if (spans)
                spans->fetchSpan(spanPage, issued, when);
            if (done)
                done(when);
        });
}

void
MemSystem::writebackLine(LineAddr line)
{
    ++statWritebacks_;
    schemes_[mcOf(line)]->demandWriteback(line);
}

std::uint64_t
MemSystem::totalAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &s : schemes_)
        n += s->accesses();
    return n;
}

std::uint64_t
MemSystem::totalHits() const
{
    std::uint64_t n = 0;
    for (const auto &s : schemes_)
        n += s->hits();
    return n;
}

std::uint64_t
MemSystem::totalMisses() const
{
    std::uint64_t n = 0;
    for (const auto &s : schemes_)
        n += s->misses();
    return n;
}

void
MemSystem::resetStats()
{
    stats_.reset();
    if (inPkg_)
        inPkg_->resetStats();
    if (offPkg_)
        offPkg_->resetStats();
    for (auto &s : schemes_)
        s->resetStats();
}

} // namespace banshee
