/**
 * @file
 * Types shared between the cache hierarchy and the memory system.
 */

#ifndef BANSHEE_MEM_REQUEST_HH
#define BANSHEE_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace banshee {

/**
 * Page-mapping bits carried by every request through the memory
 * hierarchy (paper Section 3.2): whether the page is resident in the
 * DRAM cache and in which way. @c version lets tests detect whether
 * the information was stale relative to the page table when used.
 */
struct MappingInfo
{
    bool valid = false;   ///< mapping bits were attached at all
    bool cached = false;  ///< PTE "cached" bit
    std::uint8_t way = 0; ///< PTE "way" bits
    std::uint32_t version = 0; ///< page-table version the bits came from
};

/** Completion callback for an LLC miss, with the finishing cycle. */
using MissDoneFn = std::function<void(Cycle)>;

/**
 * Interface of the memory system as seen by the LLC: demand line
 * fetches (with completion callback) and posted dirty writebacks
 * (which, per the paper, carry no mapping information — that is what
 * makes the Tag Buffer's probe-avoidance matter).
 */
class MemBackend
{
  public:
    virtual ~MemBackend() = default;

    /** Fetch one 64 B line; @p done fires when data is available. */
    virtual void fetchLine(LineAddr line, const MappingInfo &mapping,
                           CoreId core, MissDoneFn done) = 0;

    /** Posted write of one dirty 64 B line evicted from the LLC. */
    virtual void writebackLine(LineAddr line) = 0;
};

} // namespace banshee

#endif // BANSHEE_MEM_REQUEST_HH
