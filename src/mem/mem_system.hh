/**
 * @file
 * Memory system: the DRAM devices plus one memory controller (and one
 * scheme instance) per in-package channel. Physical pages are striped
 * across controllers at page granularity (paper Section 2 assumption).
 */

#ifndef BANSHEE_MEM_MEM_SYSTEM_HH
#define BANSHEE_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "dram/dram_model.hh"
#include "mem/request.hh"
#include "mem/scheme.hh"
#include "telemetry/scoped_timer.hh"

namespace banshee {

struct MemSystemParams
{
    std::uint32_t numMcs = 4;            ///< = in-package channels
    std::uint32_t numOffPkgChannels = 1;
    std::uint64_t inPkgCapacity = 128ull << 20;
    /**
     * Page-to-MC striping granularity in address bits. 12 (4 KB) by
     * default; large-page mode raises it to 21 so a 2 MB page maps to
     * a single controller (paper Section 4.3).
     */
    std::uint32_t mcStripeBits = kPageBits;
    DramTiming inPkgTiming;
    DramTiming offPkgTiming;
    /** Energy knobs (see power/power_params.hh): die-stacked device
     *  vs DDR pins differ mainly in interface pJ/bit. */
    DramPowerParams inPkgPower = DramPowerParams::inPackage();
    DramPowerParams offPkgPower = DramPowerParams::offPackage();
    bool hasInPkg = true;   ///< false for NoCache
    bool hasOffPkg = true;  ///< false for CacheOnly
    /** QoS channel scheduling on the in-package device (the contended
     *  tier). Off by default: the stock FR-FCFS path is untouched. */
    DramQosConfig qos;
    /** Collapse repeated same-cycle no-op scheduler kicks on every
     *  channel (see DramChannel::setKickCoalescing). On by default;
     *  the off position is the A/B baseline for identity tests. */
    bool kickCoalescing = true;
};

class MemSystem : public MemBackend
{
  public:
    /** @p domains, when given, shards the DRAM channels' schedulers
     *  across event-domain queues (sim/domain_engine.hh). */
    MemSystem(EventQueue &eq, const MemSystemParams &params,
              ChannelQueueMap *domains = nullptr);

    /** Multi-tenant runs: attach the ownership map before
     *  buildSchemes so every scheme can attribute traffic. */
    void setTenantMap(const TenantMap *tenants) { tenants_ = tenants; }

    /** Attach (or detach with nullptr) a host-time profile of the
     *  scheme-side fetch path (demandFetch dispatch, not completion). */
    void setFetchTimer(PhaseTimer *timer) { fetchTimer_ = timer; }

    /** Attach span tracing: demand fetches of sampled pages emit
     *  end-to-end issue->complete spans. Null = off. */
    void setSpanTrace(PageJournal *spans) { spans_ = spans; }

    /** Install the scheme instances (one per MC) from a factory. */
    void buildSchemes(const SchemeFactory &factory,
                      PageTableManager *pageTable, OsServices *os,
                      std::uint64_t seed);

    // MemBackend interface (called by the LLC).
    void fetchLine(LineAddr line, const MappingInfo &mapping, CoreId core,
                   MissDoneFn done) override;
    void writebackLine(LineAddr line) override;

    std::uint32_t
    mcOf(LineAddr line) const
    {
        return static_cast<std::uint32_t>(
            (lineToAddr(line) >> params_.mcStripeBits) % params_.numMcs);
    }

    DramModel *inPkg() { return inPkg_.get(); }
    DramModel *offPkg() { return offPkg_.get(); }

    DramCacheScheme &scheme(std::uint32_t mc) { return *schemes_[mc]; }
    std::uint32_t numMcs() const { return params_.numMcs; }

    /** Sum of demand accesses / hits / misses over all MCs. */
    std::uint64_t totalAccesses() const;
    std::uint64_t totalHits() const;
    std::uint64_t totalMisses() const;

    /** Mean LLC-miss service latency (core cycles) this phase. */
    double
    avgFetchLatency() const
    {
        const std::uint64_t n = stats_.value("fetchesCompleted");
        return n == 0 ? 0.0
                      : static_cast<double>(
                            stats_.value("fetchLatencyTotal")) /
                            static_cast<double>(n);
    }

    void resetStats();

    StatSet &stats() { return stats_; }

  private:
    EventQueue &eq_;
    MemSystemParams params_;
    const TenantMap *tenants_ = nullptr;
    PhaseTimer *fetchTimer_ = nullptr;
    PageJournal *spans_ = nullptr;
    std::unique_ptr<DramModel> inPkg_;
    std::unique_ptr<DramModel> offPkg_;
    std::vector<std::unique_ptr<DramCacheScheme>> schemes_;

    StatSet stats_;
    Counter &statFetches_;
    Counter &statWritebacks_;
    Counter &statFetchesCompleted_;
    Counter &statFetchLatencyTotal_;
};

} // namespace banshee

#endif // BANSHEE_MEM_MEM_SYSTEM_HH
