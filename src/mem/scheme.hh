/**
 * @file
 * Abstract DRAM cache scheme, instantiated once per memory controller.
 *
 * The memory controller framework routes each LLC miss / dirty
 * eviction to the scheme owning its page; the scheme decides which
 * DRAM to touch, with what extra metadata traffic, and when the
 * demand data is available. Concrete schemes: Banshee (src/core) and
 * the baselines NoCache, CacheOnly, Alloy(+BEAR), Unison, TDC, HMA
 * (src/schemes).
 */

#ifndef BANSHEE_MEM_SCHEME_HH
#define BANSHEE_MEM_SCHEME_HH

#include <cstdint>
#include <memory>
#include <string>

#include <array>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_model.hh"
#include "mem/request.hh"
#include "os/os_services.hh"
#include "os/page_table.hh"
#include "telemetry/span_trace.hh"
#include "tenant/tenant_map.hh"

namespace banshee {

class BatmanController;
class ResizeHost;

/** Everything a scheme needs from the surrounding system. */
struct SchemeContext
{
    EventQueue *eq = nullptr;
    DramModel *inPkg = nullptr;   ///< may be null (NoCache)
    DramModel *offPkg = nullptr;  ///< may be null (CacheOnly)
    std::uint32_t mcId = 0;       ///< this controller's index
    std::uint32_t numMcs = 1;     ///< page -> MC striping factor
    std::uint64_t cacheBytesPerMc = 0; ///< in-package capacity share
    PageTableManager *pageTable = nullptr;
    OsServices *os = nullptr;
    BatmanController *batman = nullptr; ///< optional bandwidth balancer
    const TenantMap *tenants = nullptr; ///< null = single-tenant run
    std::uint64_t seed = 1;
};

class DramCacheScheme
{
  public:
    DramCacheScheme(const SchemeContext &ctx, std::string name)
        : ctx_(ctx), name_(std::move(name)),
          rng_(ctx.seed * 0x9e3779b97f4a7c15ull + ctx.mcId),
          stats_(name_ + std::to_string(ctx.mcId)),
          statAccesses_(stats_.counter("accesses")),
          statHits_(stats_.counter("hits")),
          statMisses_(stats_.counter("misses"))
    {
    }

    virtual ~DramCacheScheme() = default;

    /**
     * Demand line fetch from the LLC. @p done must eventually fire
     * with the cycle the 64 B line is available.
     */
    virtual void demandFetch(LineAddr line, const MappingInfo &mapping,
                             CoreId core, MissDoneFn done) = 0;

    /** Posted dirty-line eviction from the LLC (no mapping attached). */
    virtual void demandWriteback(LineAddr line) = 0;

    /**
     * The scheme's dynamic-resize interface, or nullptr when the
     * scheme does not support runtime capacity changes (only Banshee
     * does: resizing rides on its lazy PTE/TLB remap machinery).
     */
    virtual ResizeHost *resizeHost() { return nullptr; }

    /** Attach span tracing (null = off). Schemes tag the traffic of
     *  sampled pages and emit lifecycle instants/spans. */
    virtual void attachSpanTrace(PageJournal *journal) { spans_ = journal; }

    const std::string &name() const { return name_; }

    StatSet &stats() { return stats_; }

    std::uint64_t accesses() const { return statAccesses_.value(); }
    std::uint64_t hits() const { return statHits_.value(); }
    std::uint64_t misses() const { return statMisses_.value(); }

    double
    missRate() const
    {
        const std::uint64_t a = accesses();
        return a == 0 ? 0.0 : static_cast<double>(misses()) / a;
    }

    /** Demand accesses / misses attributed to one tenant. */
    std::uint64_t
    tenantAccesses(TenantId t) const
    {
        return tenantAccesses_[tenantBucket(t)];
    }

    std::uint64_t
    tenantMisses(TenantId t) const
    {
        return tenantMisses_[tenantBucket(t)];
    }

    virtual void
    resetStats()
    {
        stats_.reset();
        tenantAccesses_.fill(0);
        tenantMisses_.fill(0);
    }

  protected:
    /** Record a demand access outcome in the common counters. */
    void
    recordAccess(bool hit, TenantId tenant = kNoTenant)
    {
        ++statAccesses_;
        ++tenantAccesses_[tenantBucket(tenant)];
        if (hit) {
            ++statHits_;
        } else {
            ++statMisses_;
            ++tenantMisses_[tenantBucket(tenant)];
        }
    }

    /** Owner of @p addr in a multi-tenant run (else kNoTenant). */
    TenantId
    tenantOfAddr(Addr addr) const
    {
        return ctx_.tenants ? ctx_.tenants->tenantOfAddr(addr) : kNoTenant;
    }

    /** Page-local index within this MC's stripe. */
    std::uint64_t
    localPageIndex(PageNum page) const
    {
        return page / ctx_.numMcs;
    }

    /**
     * The span tag for traffic belonging to @p page: the page itself
     * when tracing is on and the page is sampled, else kNoSpanPage.
     * @p page is in the scheme's own page granularity.
     */
    PageNum
    spanPageOf(PageNum page) const
    {
        return (spans_ && spans_->sampledPage(page)) ? page : kNoSpanPage;
    }

    /** 64 B read of @p line from off-package DRAM. */
    void
    offPkgRead64(LineAddr line, TrafficCat cat, DramDoneFn done,
                 TenantId tenant = kNoTenant,
                 PageNum spanPage = kNoSpanPage)
    {
        DramRequest req;
        req.addr = lineToAddr(line);
        req.bytes = kLineBytes;
        req.isWrite = false;
        req.cat = cat;
        req.tenant = tenant;
        req.spanPage = spanPage;
        req.done = std::move(done);
        ctx_.offPkg->access(offPkgChannel(line), std::move(req));
    }

    /** Posted 64 B write of @p line to off-package DRAM. */
    void
    offPkgWrite64(LineAddr line, TrafficCat cat, TenantId tenant = kNoTenant,
                  PageNum spanPage = kNoSpanPage)
    {
        DramRequest req;
        req.addr = lineToAddr(line);
        req.bytes = kLineBytes;
        req.isWrite = true;
        req.cat = cat;
        req.tenant = tenant;
        req.spanPage = spanPage;
        ctx_.offPkg->access(offPkgChannel(line), std::move(req));
    }

    /** Access on this MC's in-package channel at a device address. */
    void
    inPkgAccess(Addr deviceAddr, std::uint32_t bytes, std::uint32_t tagBytes,
                bool isWrite, TrafficCat cat, DramDoneFn done,
                TenantId tenant = kNoTenant,
                PageNum spanPage = kNoSpanPage)
    {
        DramRequest req;
        req.addr = deviceAddr;
        req.bytes = bytes;
        req.tagBytes = tagBytes;
        req.isWrite = isWrite;
        req.cat = cat;
        req.tenant = tenant;
        req.spanPage = spanPage;
        req.done = std::move(done);
        ctx_.inPkg->access(ctx_.mcId, std::move(req));
    }

    /** Bulk (page-sized) movement on the in-package channel. */
    void
    inPkgBulk(Addr deviceAddr, std::uint64_t bytes, bool isWrite,
              TrafficCat cat, DramDoneFn done = nullptr,
              TenantId tenant = kNoTenant, PageNum spanPage = kNoSpanPage)
    {
        ctx_.inPkg->bulkAccess(ctx_.mcId, deviceAddr, bytes, isWrite, cat,
                               std::move(done), tenant, spanPage);
    }

    /** Bulk movement of a page's worth of off-package data. */
    void
    offPkgBulk(Addr byteAddr, std::uint64_t bytes, bool isWrite,
               TrafficCat cat, DramDoneFn done = nullptr,
               TenantId tenant = kNoTenant, PageNum spanPage = kNoSpanPage)
    {
        ctx_.offPkg->bulkAccess(offPkgChannel(lineOf(byteAddr)), byteAddr,
                                bytes, isWrite, cat, std::move(done), tenant,
                                spanPage);
    }

    std::uint32_t
    offPkgChannel(LineAddr line) const
    {
        return static_cast<std::uint32_t>(pageOfLine(line) %
                                          ctx_.offPkg->numChannels());
    }

    SchemeContext ctx_;
    std::string name_;
    PageJournal *spans_ = nullptr; ///< span tracing; null = off
    Rng rng_;
    StatSet stats_;
    Counter &statAccesses_;
    Counter &statHits_;
    Counter &statMisses_;
    std::array<std::uint64_t, kTenantBuckets> tenantAccesses_{};
    std::array<std::uint64_t, kTenantBuckets> tenantMisses_{};
};

/** Factory signature used by the system builder. */
using SchemeFactory =
    std::function<std::unique_ptr<DramCacheScheme>(const SchemeContext &)>;

} // namespace banshee

#endif // BANSHEE_MEM_SCHEME_HH
