#include "workload/trace.hh"

#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>

#include "common/log.hh"

namespace banshee {

namespace {

constexpr char kMagic[8] = {'B', 'S', 'H', 'T', 'R', 'C', '0', '1'};

struct DiskRecord
{
    std::uint64_t addr;
    std::uint8_t flags;
    std::uint8_t nonMemBefore;
    std::uint16_t pad;
};
static_assert(sizeof(DiskRecord) == 16, "trace record must be 16 bytes");

} // namespace

bool
writeTrace(const std::string &path, const std::vector<TraceRecord> &records)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
    const std::uint64_t n = records.size();
    ok = ok && std::fwrite(&n, sizeof(n), 1, f) == 1;
    for (const auto &r : records) {
        DiskRecord d{r.addr, r.flags, r.nonMemBefore, 0};
        ok = ok && std::fwrite(&d, sizeof(d), 1, f) == 1;
        if (!ok)
            break;
    }
    std::fclose(f);
    return ok;
}

std::vector<TraceRecord>
readTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());
    char magic[8];
    if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        std::fclose(f);
        fatal("'%s' is not a Banshee trace file", path.c_str());
    }
    std::uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f) != 1) {
        std::fclose(f);
        fatal("trace '%s': truncated header", path.c_str());
    }
    std::vector<TraceRecord> records;
    records.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        DiskRecord d;
        if (std::fread(&d, sizeof(d), 1, f) != 1) {
            std::fclose(f);
            fatal("trace '%s': truncated at record %llu", path.c_str(),
                  static_cast<unsigned long long>(i));
        }
        records.push_back(TraceRecord{d.addr, d.flags, d.nonMemBefore});
    }
    std::fclose(f);
    return records;
}

TracePattern::TracePattern(std::vector<TraceRecord> records)
    : TracePattern(std::make_shared<const std::vector<TraceRecord>>(
          std::move(records)))
{
}

TracePattern::TracePattern(Buffer records) : records_(std::move(records))
{
    sim_assert(records_ != nullptr && !records_->empty(), "empty trace");
}

std::unique_ptr<TracePattern>
TracePattern::fromFile(const std::string &path)
{
    return std::make_unique<TracePattern>(readTrace(path));
}

namespace {

/** Process-wide cache of loaded trace buffers, keyed by path. The
 *  mutex covers only load/lookup — replay touches the immutable
 *  buffer lock-free. Entries are weak so dropUnusedCachedTraces can
 *  tell live buffers from dead ones. */
std::mutex traceCacheMutex;
std::map<std::string, std::shared_ptr<const std::vector<TraceRecord>>>
    traceCache;

} // namespace

std::unique_ptr<TracePattern>
TracePattern::sharedFromFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(traceCacheMutex);
    auto it = traceCache.find(path);
    if (it == traceCache.end()) {
        it = traceCache
                 .emplace(path,
                          std::make_shared<const std::vector<TraceRecord>>(
                              readTrace(path)))
                 .first;
    }
    return std::make_unique<TracePattern>(it->second);
}

std::size_t
TracePattern::dropUnusedCachedTraces()
{
    std::lock_guard<std::mutex> lock(traceCacheMutex);
    std::size_t dropped = 0;
    for (auto it = traceCache.begin(); it != traceCache.end();) {
        // use_count == 1 means only the cache holds the buffer.
        if (it->second.use_count() == 1) {
            it = traceCache.erase(it);
            ++dropped;
        } else {
            ++it;
        }
    }
    return dropped;
}

MemOp
TracePattern::next(Rng &)
{
    const TraceRecord &r = (*records_)[pos_];
    pos_ = (pos_ + 1) % records_->size();
    MemOp op;
    op.addr = r.addr;
    op.isWrite = r.flags & TraceRecord::kWrite;
    op.dependsOnPrev = r.flags & TraceRecord::kDependsOnPrev;
    op.nonMemBefore = r.nonMemBefore;
    return op;
}

} // namespace banshee
