/**
 * @file
 * The benchmark catalog (paper Section 5.1.2, Table 4).
 *
 * Graph analytics (16 threads over a shared heap): pagerank,
 * tri_count, graph500, sgd, lsh. SPEC-like (16 independent copies):
 * bwaves, lbm, mcf, omnetpp, libquantum, gcc, milc, soplex (plus
 * gems, bzip2, leslie, cactus which only appear inside the Table 4
 * mixes). Mixes mix1..mix3 assign two copies of eight benchmarks to
 * the 16 cores.
 *
 * Every benchmark is a synthetic generator calibrated to the locality
 * regime that drives its behavior in the paper (see pattern.hh and
 * the per-benchmark comments in workloads.cc). Footprints default to
 * the scaled system (128 MB DRAM cache); @p footprintScale rescales
 * them (8.0 reproduces the paper's 1 GB-cache proportions).
 */

#ifndef BANSHEE_WORKLOAD_WORKLOADS_HH
#define BANSHEE_WORKLOAD_WORKLOADS_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "workload/pattern.hh"

namespace banshee {

class WorkloadFactory
{
  public:
    /** The 16 workloads of Figures 4-6, in the paper's order. */
    static std::vector<std::string> paperNames();

    /** The multi-threaded graph suite. */
    static std::vector<std::string> graphNames();

    /** Homogeneous SPEC-like workloads (16 copies). */
    static std::vector<std::string> specNames();

    /** All names accepted by create(), including mix components. */
    static std::vector<std::string> allNames();

    /** Tenant-mix building blocks (cache-resident vs cache-hostile). */
    static std::vector<std::string> tenantNames();

    /**
     * Private heap region [base, limit) of @p core's SPEC-style
     * workloads — the address range a multi-tenant run registers as
     * owned by the core's tenant. Graph workloads use a shared heap
     * outside every private region and cannot be partitioned.
     */
    static std::pair<Addr, Addr> privateRegion(CoreId core);

    static bool exists(const std::string &name);

    /** True for shared-heap multithreaded workloads. */
    static bool isGraph(const std::string &name);

    /**
     * Build the address-stream generator for @p core of @p name.
     * @p footprintScale scales every region size.
     */
    static std::unique_ptr<AccessPattern> create(const std::string &name,
                                                 CoreId core,
                                                 std::uint32_t numCores,
                                                 double footprintScale);
};

} // namespace banshee

#endif // BANSHEE_WORKLOAD_WORKLOADS_HH
