#include "workload/workloads.hh"

#include <algorithm>
#include <cstdint>

#include "common/log.hh"
#include "workload/trace.hh"

namespace banshee {

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

/** Private heap base for SPEC copy @p core. */
Addr
privateBase(CoreId core)
{
    return (static_cast<Addr>(core) + 1) << 36;
}

/** Shared heap base for the graph suite. */
constexpr Addr kSharedBase = 1ull << 40;

std::uint64_t
scaled(double mib, double scale)
{
    std::uint64_t bytes = static_cast<std::uint64_t>(mib * scale * kMiB);
    // Round up to a whole page; keep at least one page.
    bytes = std::max<std::uint64_t>(bytes, kPageBytes);
    return (bytes + kPageBytes - 1) & ~static_cast<std::uint64_t>(
                                          kPageBytes - 1);
}

std::unique_ptr<AccessPattern>
stream(Addr base, std::uint64_t bytes, double wf, std::uint32_t gap,
       std::uint64_t offset = 0)
{
    return std::make_unique<StreamPattern>(base, bytes, kLineBytes, wf, gap,
                                           offset);
}

std::unique_ptr<AccessPattern>
zipf(Addr base, std::uint64_t bytes, double alpha, std::uint32_t lines,
     double wf, std::uint32_t gap)
{
    return std::make_unique<ZipfPagePattern>(base, bytes / kPageBytes, alpha,
                                             lines, wf, gap);
}

std::unique_ptr<AccessPattern>
mix2(std::unique_ptr<AccessPattern> a, double wa,
     std::unique_ptr<AccessPattern> b, double wb)
{
    std::vector<MixPattern::Part> parts;
    parts.push_back({std::move(a), wa});
    parts.push_back({std::move(b), wb});
    return std::make_unique<MixPattern>(std::move(parts));
}

std::unique_ptr<AccessPattern>
mix3(std::unique_ptr<AccessPattern> a, double wa,
     std::unique_ptr<AccessPattern> b, double wb,
     std::unique_ptr<AccessPattern> c, double wc)
{
    std::vector<MixPattern::Part> parts;
    parts.push_back({std::move(a), wa});
    parts.push_back({std::move(b), wb});
    parts.push_back({std::move(c), wc});
    return std::make_unique<MixPattern>(std::move(parts));
}

/**
 * Streaming HPC kernel: a read stream over a source region plus a
 * pure sequential write stream over a separate destination region
 * (the way stencil/grid codes write a second grid). Keeping writes
 * sequential matters: destination pages become fully dirty, so a
 * page-granularity scheme's dirty-footprint writeback equals the
 * bytes an uncached system would write back anyway — the paper's
 * replace-on-miss baselines live off exactly that neutrality.
 */
std::unique_ptr<AccessPattern>
rwStream(Addr base, double readMiB, double writeMiB, std::uint32_t gap,
         double scale)
{
    const std::uint64_t readBytes = scaled(readMiB, scale);
    const std::uint64_t writeBytes = scaled(writeMiB, scale);
    const double writeFrac =
        static_cast<double>(writeBytes) / (readBytes + writeBytes);
    return mix2(stream(base, readBytes, 0.0, gap), 1.0 - writeFrac,
                std::make_unique<StreamPattern>(base + (1ull << 34),
                                                writeBytes, kLineBytes,
                                                1.0, gap),
                writeFrac);
}

/**
 * SPEC-like benchmarks, one private copy per core.
 *
 * Calibration rationale (all sizes for the scaled 128 MB-cache
 * system; x16 copies gives the aggregate footprint):
 *  - bwaves/leslie/gems/cactus: streaming HPC codes; near-full page
 *    footprints, moderate write ratios.
 *  - lbm: streaming with a heavy write ratio and essentially no page
 *    reuse inside a sweep — the adversarial case for selective
 *    caching (paper Section 5.2 calls this out for Banshee and
 *    Alloy-0.1).
 *  - libquantum: repeated sweeps of a region small enough that the
 *    16 copies fit in the DRAM cache; every scheme gets a low miss
 *    rate, caching pays off maximally.
 *  - mcf: dependent pointer chasing over a large heap; low MLP, low
 *    spatial locality.
 *  - omnetpp/milc: skewed random page visits touching only 1-2 lines
 *    per visit — the over-fetch adversary for page-granularity
 *    replace-on-miss schemes.
 *  - gcc/bzip2: moderate intensity, mid-size footprints.
 *  - soplex: mixed streaming + skewed sparse accesses.
 */
std::unique_ptr<AccessPattern>
makeSpec(const std::string &name, CoreId core, double scale)
{
    const Addr base = privateBase(core);
    if (name == "bwaves")
        return rwStream(base, 24, 8, 4, scale);
    if (name == "lbm")
        return rwStream(base, 18, 14, 3, scale);
    if (name == "mcf") {
        return mix2(std::make_unique<PointerChasePattern>(
                        base, scaled(48, scale), 0.05, 4),
                    0.7,
                    zipf(base, scaled(48, scale), 0.55, 2, 0.15, 4), 0.3);
    }
    if (name == "omnetpp")
        return zipf(base, scaled(24, scale), 0.75, 2, 0.30, 5);
    if (name == "libquantum")
        return stream(base, scaled(4, scale), 0.25, 2);
    if (name == "gcc")
        return zipf(base, scaled(16, scale), 0.6, 8, 0.20, 7);
    if (name == "milc")
        return zipf(base, scaled(32, scale), 0.45, 1, 0.30, 5);
    if (name == "soplex") {
        return mix2(stream(base, scaled(24, scale), 0.20, 4), 0.4,
                    zipf(base, scaled(24, scale), 0.7, 4, 0.20, 4), 0.6);
    }
    if (name == "gems") {
        return mix3(rwStream(base, 20, 8, 4, scale), 0.7,
                    zipf(base, scaled(28, scale), 0.5, 8, 0.20, 4), 0.2,
                    stream(base, scaled(28, scale), 0.0, 4), 0.1);
    }
    if (name == "bzip2")
        return zipf(base, scaled(12, scale), 0.5, 16, 0.25, 6);
    // Tenant-mix building blocks (bench/ext_tenant, tests):
    //  - qos_resident: slow repeated sweeps of a region that fits a
    //    modest slice quota but overflows the SRAM L3, so its
    //    residency rides entirely on the DRAM cache. Its long think
    //    gaps keep its pages' FBR counters low — cache-friendly, yet
    //    sure to lose a frequency race;
    //  - qos_churn: an intense stream over a heap larger than the
    //    whole device. Each page bursts 64 accesses per sweep,
    //    out-counting the resident's leisurely revisits in the FBR
    //    directory — eviction pressure the frequency policy *admits*,
    //    which is exactly what only a capacity quota can fence off.
    if (name == "qos_resident")
        return stream(base, scaled(4, scale), 0.25, 8);
    if (name == "qos_churn")
        return stream(base, scaled(24, scale), 0.25, 2);
    if (name == "leslie")
        return rwStream(base, 18, 6, 4, scale);
    if (name == "cactus") {
        return mix2(rwStream(base, 20, 8, 5, scale), 0.7,
                    zipf(base, scaled(12, scale), 0.5, 8, 0.20, 5), 0.3);
    }
    return nullptr;
}

/**
 * Graph analytics: 16 threads over one shared heap. Power-law vertex
 * popularity (high Zipf alpha) mixed with sequential edge-list scans;
 * each thread's scan starts at its own partition offset. These are
 * the bandwidth-hungriest workloads and the ones the in-package DRAM
 * products target (paper Section 5.1.2).
 */
std::unique_ptr<AccessPattern>
makeGraph(const std::string &name, CoreId core, std::uint32_t numCores,
          double scale)
{
    const Addr base = kSharedBase;
    auto partitionedStream = [&](double mib, double wf, std::uint32_t gap) {
        const std::uint64_t bytes = scaled(mib, scale);
        const std::uint64_t offset =
            (bytes / numCores) * core & ~static_cast<std::uint64_t>(
                                           kLineBytes - 1);
        return stream(base, bytes, wf, gap, offset);
    };
    if (name == "pagerank") {
        return mix2(zipf(base, scaled(384, scale), 0.9, 1, 0.10, 3), 0.6,
                    partitionedStream(384, 0.05, 3), 0.4);
    }
    if (name == "tri_count") {
        return mix2(zipf(base, scaled(320, scale), 0.65, 4, 0.02, 4), 0.7,
                    partitionedStream(320, 0.02, 4), 0.3);
    }
    if (name == "graph500") {
        return mix2(zipf(base, scaled(384, scale), 0.95, 2, 0.15, 3), 0.65,
                    partitionedStream(384, 0.05, 3), 0.35);
    }
    if (name == "sgd") {
        // Model parameters (hot, written) + sample stream.
        return mix2(zipf(base, scaled(32, scale), 0.6, 4, 0.40, 3), 0.5,
                    partitionedStream(256, 0.05, 3), 0.5);
    }
    if (name == "lsh") {
        return mix2(zipf(base, scaled(320, scale), 0.45, 8, 0.10, 4), 0.6,
                    partitionedStream(320, 0.05, 4), 0.4);
    }
    return nullptr;
}

/** Table 4 mixes: two copies of eight benchmarks across 16 cores. */
const std::vector<std::string> kMix1 = {
    "libquantum", "mcf", "soplex", "milc",
    "bwaves", "lbm", "omnetpp", "gcc"};
const std::vector<std::string> kMix2 = {
    "libquantum", "mcf", "soplex", "milc",
    "lbm", "omnetpp", "gems", "bzip2"};
const std::vector<std::string> kMix3 = {
    "mcf", "soplex", "milc", "bwaves",
    "gcc", "lbm", "leslie", "cactus"};

const std::vector<std::string> *
mixList(const std::string &name)
{
    if (name == "mix1")
        return &kMix1;
    if (name == "mix2")
        return &kMix2;
    if (name == "mix3")
        return &kMix3;
    return nullptr;
}

} // namespace

std::vector<std::string>
WorkloadFactory::graphNames()
{
    return {"pagerank", "tri_count", "graph500", "sgd", "lsh"};
}

std::vector<std::string>
WorkloadFactory::specNames()
{
    return {"bwaves", "lbm",  "mcf",  "omnetpp",
            "libquantum", "gcc", "milc", "soplex"};
}

std::vector<std::string>
WorkloadFactory::paperNames()
{
    std::vector<std::string> names = graphNames();
    for (const auto &n : specNames())
        names.push_back(n);
    names.push_back("mix1");
    names.push_back("mix2");
    names.push_back("mix3");
    return names;
}

std::vector<std::string>
WorkloadFactory::allNames()
{
    std::vector<std::string> names = paperNames();
    for (const char *extra : {"gems", "bzip2", "leslie", "cactus"})
        names.emplace_back(extra);
    for (const auto &n : tenantNames())
        names.push_back(n);
    return names;
}

std::vector<std::string>
WorkloadFactory::tenantNames()
{
    return {"qos_resident", "qos_churn"};
}

std::pair<Addr, Addr>
WorkloadFactory::privateRegion(CoreId core)
{
    return {privateBase(core), privateBase(core + 1)};
}

bool
WorkloadFactory::exists(const std::string &name)
{
    if (name.rfind("trace:", 0) == 0)
        return true;
    const auto names = allNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

bool
WorkloadFactory::isGraph(const std::string &name)
{
    const auto names = graphNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

std::unique_ptr<AccessPattern>
WorkloadFactory::create(const std::string &name, CoreId core,
                        std::uint32_t numCores, double footprintScale)
{
    // "trace:<path>" replays a recorded trace file on every core.
    // The file is loaded once per process and its immutable record
    // buffer shared; each core gets its own replay cursor.
    if (name.rfind("trace:", 0) == 0)
        return TracePattern::sharedFromFile(name.substr(6));
    if (const auto *list = mixList(name)) {
        const std::string &bench = (*list)[core % list->size()];
        auto p = makeSpec(bench, core, footprintScale);
        sim_assert(p != nullptr, "unknown mix component '%s'",
                   bench.c_str());
        return p;
    }
    if (isGraph(name))
        return makeGraph(name, core, numCores, footprintScale);
    if (auto p = makeSpec(name, core, footprintScale))
        return p;
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace banshee
