/**
 * @file
 * Synthetic memory-access pattern primitives.
 *
 * The paper drives its evaluation with SPEC CPU2006 and graph
 * analytics binaries under ZSim. We have neither the binaries nor a
 * binary-instrumentation substrate here, so workloads are modeled as
 * streams of (address, read/write, dependence) tuples produced by
 * composable generators. Each generator captures one locality regime
 * the paper's analysis leans on:
 *
 *  - StreamPattern       sequential sweeps (bwaves/lbm/libquantum),
 *                        full-page spatial locality, reuse distance =
 *                        region size;
 *  - ZipfPagePattern     skewed page popularity with tunable lines
 *                        touched per page visit (graph codes: high
 *                        skew; omnetpp/milc: sparse page footprints);
 *  - PointerChasePattern dependent random loads (mcf) that serialize
 *                        the core's memory-level parallelism;
 *  - MixPattern          weighted phase interleaving of the above.
 */

#ifndef BANSHEE_WORKLOAD_PATTERN_HH
#define BANSHEE_WORKLOAD_PATTERN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/alias_table.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace banshee {

/** One memory instruction plus the non-memory work preceding it. */
struct MemOp
{
    Addr addr = 0;
    std::uint8_t nonMemBefore = 0; ///< non-memory instructions before
    bool isWrite = false;
    bool dependsOnPrev = false;    ///< serializes on the previous load
};

/** Interface of every address-stream generator. */
class AccessPattern
{
  public:
    virtual ~AccessPattern() = default;

    /** Produce the next memory operation. */
    virtual MemOp next(Rng &rng) = 0;

    /**
     * Bytes of the finite sequential region this generator sweeps, or
     * 0 when it has no finite sweep (random / pointer patterns, and
     * mixes — whose embedded scans are deliberately excluded: they
     * model data sets streamed through the cache, not resident in
     * it). Used to scale warmup so cache-resident streaming working
     * sets reach steady state before measurement.
     */
    virtual std::uint64_t sweepBytes() const { return 0; }

    /** Mean instructions retired per full sweep (0 when no sweep). */
    virtual std::uint64_t sweepInstr() const { return 0; }
};

/**
 * Sequential sweep over [base, base+bytes) with a fixed stride,
 * wrapping around. Mean @p nonMemMean non-memory instructions between
 * memory ops; @p writeFraction of ops are stores.
 */
class StreamPattern : public AccessPattern
{
  public:
    StreamPattern(Addr base, std::uint64_t bytes, std::uint32_t strideBytes,
                  double writeFraction, std::uint32_t nonMemMean,
                  std::uint64_t startOffset = 0);

    MemOp next(Rng &rng) override;

    std::uint64_t sweepBytes() const override { return bytes_; }

    std::uint64_t
    sweepInstr() const override
    {
        // One memory instruction per op plus the mean non-memory gap.
        return (bytes_ / stride_) * (1 + nonMemMean_);
    }

  private:
    Addr base_;
    std::uint64_t bytes_;
    std::uint32_t stride_;
    double writeFraction_;
    std::uint32_t nonMemMean_;
    std::uint64_t pos_;
};

/**
 * Pages drawn from a Zipf(alpha) popularity distribution over
 * [base, base + numPages * 4KB). Each page visit touches
 * @p linesPerVisit lines starting at a random line (contiguously), so
 * the *page-level* spatial locality is linesPerVisit/64 — the knob
 * that separates graph codes from omnetpp/milc in the paper's
 * analysis. Page ranks are permuted by a multiplicative hash so hot
 * pages spread uniformly over cache sets.
 */
class ZipfPagePattern : public AccessPattern
{
  public:
    ZipfPagePattern(Addr base, std::uint64_t numPages, double alpha,
                    std::uint32_t linesPerVisit, double writeFraction,
                    std::uint32_t nonMemMean);

    MemOp next(Rng &rng) override;

  private:
    Addr base_;
    std::uint64_t numPages_;
    std::uint32_t linesPerVisit_;
    double writeFraction_;
    std::uint32_t nonMemMean_;

    AliasTable table_;
    std::uint64_t hotPages_;   ///< alias table covers ranks [0, hotPages)
    std::uint64_t curPage_ = 0;
    std::uint32_t curLine_ = 0;
    std::uint32_t left_ = 0;
};

/**
 * Dependent random loads over [base, base+bytes): every access waits
 * for the previous one (a pointer dereference chain), modeling mcf's
 * low memory-level parallelism.
 */
class PointerChasePattern : public AccessPattern
{
  public:
    PointerChasePattern(Addr base, std::uint64_t bytes,
                        double writeFraction, std::uint32_t nonMemMean);

    MemOp next(Rng &rng) override;

  private:
    Addr base_;
    std::uint64_t lines_;
    double writeFraction_;
    std::uint32_t nonMemMean_;
};

/**
 * Weighted interleave of child patterns in bursts (default 32 ops per
 * burst) so phase behavior looks like real program regions rather
 * than per-access coin flips.
 */
class MixPattern : public AccessPattern
{
  public:
    struct Part
    {
        std::unique_ptr<AccessPattern> pattern;
        double weight;
    };

    explicit MixPattern(std::vector<Part> parts,
                        std::uint32_t burstLength = 32);

    MemOp next(Rng &rng) override;

  private:
    std::vector<Part> parts_;
    AliasTable choose_;
    std::uint32_t burstLength_;
    std::uint32_t left_ = 0;
    std::size_t current_ = 0;
};

/** Uniform non-memory gap helper shared by the generators. */
inline std::uint8_t
sampleGap(Rng &rng, std::uint32_t mean)
{
    if (mean == 0)
        return 0;
    const std::uint64_t v = rng.nextBelow(2 * mean + 1);
    return static_cast<std::uint8_t>(v > 255 ? 255 : v);
}

} // namespace banshee

#endif // BANSHEE_WORKLOAD_PATTERN_HH
