/**
 * @file
 * Trace recording and replay.
 *
 * A small binary trace format lets downstream users drive the
 * simulator with their own address streams (e.g. captured with PIN or
 * DynamoRIO) instead of the synthetic generators. Records are
 * fixed-size and the replayer loops the trace when it runs out.
 *
 * Format: 8-byte magic "BSHTRC01", u64 record count, then per record
 * { u64 addr; u8 flags (bit0 = write, bit1 = depends-on-prev);
 *   u8 nonMemBefore; u16 pad }.
 */

#ifndef BANSHEE_WORKLOAD_TRACE_HH
#define BANSHEE_WORKLOAD_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/pattern.hh"

namespace banshee {

struct TraceRecord
{
    Addr addr = 0;
    std::uint8_t flags = 0;
    std::uint8_t nonMemBefore = 0;

    static constexpr std::uint8_t kWrite = 1;
    static constexpr std::uint8_t kDependsOnPrev = 2;
};

/** Write a trace file; returns false on I/O failure. */
bool writeTrace(const std::string &path,
                const std::vector<TraceRecord> &records);

/** Read a trace file; throws via fatal() on malformed input. */
std::vector<TraceRecord> readTrace(const std::string &path);

/**
 * Replays a trace cyclically as an AccessPattern.
 *
 * The records live behind a shared immutable buffer: every core (and
 * every experiment in a sweep) replaying the same file shares one
 * in-memory copy through sharedFromFile, each instance holding only
 * its own cursor. A 64-core run over a multi-GB trace costs one load
 * and one buffer, not 64.
 */
class TracePattern : public AccessPattern
{
  public:
    using Buffer = std::shared_ptr<const std::vector<TraceRecord>>;

    explicit TracePattern(std::vector<TraceRecord> records);
    explicit TracePattern(Buffer records);

    /** Convenience: load from file (private buffer, no cache). */
    static std::unique_ptr<TracePattern> fromFile(const std::string &path);

    /**
     * Load @p path once per process and share the immutable record
     * buffer across all patterns replaying it (thread-safe — sweep
     * workers build Systems concurrently).
     */
    static std::unique_ptr<TracePattern>
    sharedFromFile(const std::string &path);

    /** Drop cached buffers not referenced by any live pattern;
     *  returns how many were evicted (testing / long-lived hosts). */
    static std::size_t dropUnusedCachedTraces();

    MemOp next(Rng &rng) override;

    std::size_t size() const { return records_->size(); }

    /** The underlying shared buffer (tests assert sharing). */
    const Buffer &buffer() const { return records_; }

  private:
    Buffer records_;
    std::size_t pos_ = 0;
};

/** Capture every op a pattern produces (testing / trace creation). */
class RecordingPattern : public AccessPattern
{
  public:
    explicit RecordingPattern(AccessPattern &inner) : inner_(inner) {}

    MemOp
    next(Rng &rng) override
    {
        MemOp op = inner_.next(rng);
        TraceRecord r;
        r.addr = op.addr;
        r.flags = (op.isWrite ? TraceRecord::kWrite : 0) |
                  (op.dependsOnPrev ? TraceRecord::kDependsOnPrev : 0);
        r.nonMemBefore = op.nonMemBefore;
        records_.push_back(r);
        return op;
    }

    const std::vector<TraceRecord> &records() const { return records_; }

  private:
    AccessPattern &inner_;
    std::vector<TraceRecord> records_;
};

} // namespace banshee

#endif // BANSHEE_WORKLOAD_TRACE_HH
