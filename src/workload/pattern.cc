#include "workload/pattern.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace banshee {

//
// StreamPattern
//

StreamPattern::StreamPattern(Addr base, std::uint64_t bytes,
                             std::uint32_t strideBytes, double writeFraction,
                             std::uint32_t nonMemMean,
                             std::uint64_t startOffset)
    : base_(base), bytes_(bytes), stride_(strideBytes),
      writeFraction_(writeFraction), nonMemMean_(nonMemMean),
      pos_(startOffset % bytes)
{
    sim_assert(bytes_ >= stride_ && stride_ > 0, "bad stream geometry");
}

MemOp
StreamPattern::next(Rng &rng)
{
    MemOp op;
    op.addr = base_ + pos_;
    pos_ += stride_;
    if (pos_ >= bytes_)
        pos_ = 0;
    op.isWrite = rng.nextBool(writeFraction_);
    op.nonMemBefore = sampleGap(rng, nonMemMean_);
    return op;
}

//
// ZipfPagePattern
//

namespace {

/**
 * Permutation of a page rank into the region that scatters 2 MB
 * blocks but keeps consecutive ranks inside the same block: hot pages
 * cluster spatially, the way degree-sorted graph layouts and hot data
 * structures do. This is what makes large-page (2 MB) frequency
 * tracking meaningful (paper Section 4.3); at 4 KB granularity the
 * block-level clustering only affects which sets hot pages land in,
 * which the per-set candidate machinery absorbs.
 */
std::uint64_t
permute(std::uint64_t rank, std::uint64_t numPages)
{
    constexpr std::uint64_t kBlockPages = kLargePageBytes / kPageBytes;
    if (numPages <= kBlockPages)
        return (rank * 0x9e3779b97f4a7c15ull) % numPages;
    const std::uint64_t numBlocks = numPages / kBlockPages;
    const std::uint64_t block = rank / kBlockPages;
    const std::uint64_t offset = rank % kBlockPages;
    const std::uint64_t permutedBlock =
        (block * 0x9e3779b97f4a7c15ull) % numBlocks;
    return permutedBlock * kBlockPages + offset;
}

} // namespace

ZipfPagePattern::ZipfPagePattern(Addr base, std::uint64_t numPages,
                                 double alpha, std::uint32_t linesPerVisit,
                                 double writeFraction,
                                 std::uint32_t nonMemMean)
    : base_(base), numPages_(numPages),
      linesPerVisit_(std::min<std::uint32_t>(linesPerVisit, kLinesPerPage)),
      writeFraction_(writeFraction), nonMemMean_(nonMemMean)
{
    sim_assert(numPages_ > 0, "empty zipf region");
    sim_assert(linesPerVisit_ > 0, "need at least one line per visit");
    // Cap the alias table size; the tail beyond it is sampled
    // uniformly with the tail's aggregate probability. This keeps
    // construction O(64K) for multi-GB regions while preserving the
    // head of the distribution, which is what matters for caching.
    hotPages_ = std::min<std::uint64_t>(numPages_, 1ull << 16);
    std::vector<double> weights = zipfWeights(hotPages_, alpha);
    if (hotPages_ < numPages_) {
        // One extra bucket representing all tail pages together.
        double tail = 0.0;
        // Integral approximation of sum_{i=hot}^{n} i^-alpha.
        if (alpha == 1.0) {
            tail = std::log(static_cast<double>(numPages_) /
                            static_cast<double>(hotPages_));
        } else {
            const double a = 1.0 - alpha;
            tail = (std::pow(static_cast<double>(numPages_), a) -
                    std::pow(static_cast<double>(hotPages_), a)) /
                   a;
        }
        weights.push_back(std::max(tail, 0.0));
    }
    table_ = AliasTable(weights);
}

MemOp
ZipfPagePattern::next(Rng &rng)
{
    if (left_ == 0) {
        std::uint64_t rank = table_.sample(rng);
        if (rank >= hotPages_) {
            // Tail bucket: uniform over the cold pages.
            rank = hotPages_ + rng.nextBelow(numPages_ - hotPages_);
        }
        curPage_ = permute(rank, numPages_);
        left_ = linesPerVisit_;
        // Random aligned starting line keeps visits contiguous.
        const std::uint32_t maxStart = kLinesPerPage - linesPerVisit_;
        curLine_ = maxStart == 0
                       ? 0
                       : static_cast<std::uint32_t>(
                             rng.nextBelow(maxStart + 1));
    }
    MemOp op;
    op.addr = base_ + curPage_ * kPageBytes +
              static_cast<std::uint64_t>(curLine_) * kLineBytes;
    ++curLine_;
    --left_;
    op.isWrite = rng.nextBool(writeFraction_);
    op.nonMemBefore = sampleGap(rng, nonMemMean_);
    return op;
}

//
// PointerChasePattern
//

PointerChasePattern::PointerChasePattern(Addr base, std::uint64_t bytes,
                                         double writeFraction,
                                         std::uint32_t nonMemMean)
    : base_(base), lines_(bytes / kLineBytes),
      writeFraction_(writeFraction), nonMemMean_(nonMemMean)
{
    sim_assert(lines_ > 0, "empty pointer-chase region");
}

MemOp
PointerChasePattern::next(Rng &rng)
{
    MemOp op;
    op.addr = base_ + rng.nextBelow(lines_) * kLineBytes;
    op.isWrite = rng.nextBool(writeFraction_);
    op.dependsOnPrev = !op.isWrite;
    op.nonMemBefore = sampleGap(rng, nonMemMean_);
    return op;
}

//
// MixPattern
//

MixPattern::MixPattern(std::vector<Part> parts, std::uint32_t burstLength)
    : parts_(std::move(parts)), burstLength_(burstLength)
{
    sim_assert(!parts_.empty(), "mix needs at least one part");
    std::vector<double> weights;
    weights.reserve(parts_.size());
    for (const auto &p : parts_)
        weights.push_back(p.weight);
    choose_ = AliasTable(weights);
}

MemOp
MixPattern::next(Rng &rng)
{
    if (left_ == 0) {
        current_ = choose_.sample(rng);
        left_ = burstLength_;
    }
    --left_;
    return parts_[current_].pattern->next(rng);
}

} // namespace banshee
