/**
 * @file
 * Traffic categories used for the paper's bandwidth breakdowns
 * (Figures 5, 6 and 9).
 */

#ifndef BANSHEE_DRAM_TRAFFIC_HH
#define BANSHEE_DRAM_TRAFFIC_HH

#include <array>
#include <cstdint>
#include <string>

#include "tenant/tenant.hh"

namespace banshee {

/**
 * Every DRAM access is charged to one category. In-package DRAM uses
 * HitData / MissData / Tag / Counter / Replacement (Fig. 5 folds
 * Counter into Tag; Fig. 9 splits it out). Off-package DRAM uses
 * Demand / Fill / Writeback (Fig. 6 reports their sum).
 */
enum class TrafficCat : std::uint8_t
{
    HitData = 0,   ///< demand data moved on a DRAM cache hit
    MissData,      ///< speculative data read that turned out to miss
    Tag,           ///< tag reads/updates and dirty-eviction probes
    Counter,       ///< frequency-counter (metadata) reads/updates
    Replacement,   ///< data moved into/out of the cache by replacement
    Demand,        ///< off-package demand fetch
    Fill,          ///< off-package read feeding a cache fill
    Writeback,     ///< dirty data written back off-package
    Migration,     ///< data moved by a cache-resize transition
    NumCats
};

constexpr std::size_t kNumTrafficCats =
    static_cast<std::size_t>(TrafficCat::NumCats);

inline const char *
trafficCatName(TrafficCat c)
{
    static const char *names[kNumTrafficCats] = {
        "HitData", "MissData", "Tag", "Counter",
        "Replacement", "Demand", "Fill", "Writeback", "Migration",
    };
    return names[static_cast<std::size_t>(c)];
}

/**
 * Per-category byte counters for one DRAM device, with a per-tenant
 * split alongside: every byte lands in exactly one category bucket
 * and exactly one tenant bucket (untagged traffic shares the last
 * bucket), so both breakdowns conserve the device total.
 */
class TrafficStats
{
  public:
    void
    add(TrafficCat c, std::uint64_t bytes, TenantId tenant = kNoTenant)
    {
        bytes_[static_cast<std::size_t>(c)] += bytes;
        tenantBytes_[tenantBucket(tenant)] += bytes;
    }

    std::uint64_t
    bytes(TrafficCat c) const
    {
        return bytes_[static_cast<std::size_t>(c)];
    }

    /** Bytes attributed to @p tenant (kNoTenant = untagged bucket). */
    std::uint64_t
    tenantBytes(TenantId tenant) const
    {
        return tenantBytes_[tenantBucket(tenant)];
    }

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t t = 0;
        for (auto b : bytes_)
            t += b;
        return t;
    }

    // QoS scheduler accounting (zero while the scheduler is off): a
    // grant is one issued request charged to the tenant's credit, a
    // defer is one scheduling round where credit arbitration bypassed
    // the tenant's bandwidth-optimal request for a credit-positive
    // contender's.
    void addQosGrant(TenantId t) { ++qosGrants_[tenantBucket(t)]; }
    void addQosDefer(TenantId t) { ++qosDefers_[tenantBucket(t)]; }

    std::uint64_t
    qosGrants(TenantId t) const
    {
        return qosGrants_[tenantBucket(t)];
    }

    std::uint64_t
    qosDefers(TenantId t) const
    {
        return qosDefers_[tenantBucket(t)];
    }

    void
    reset()
    {
        bytes_.fill(0);
        tenantBytes_.fill(0);
        qosGrants_.fill(0);
        qosDefers_.fill(0);
    }

  private:
    std::array<std::uint64_t, kNumTrafficCats> bytes_{};
    std::array<std::uint64_t, kTenantBuckets> tenantBytes_{};
    std::array<std::uint64_t, kTenantBuckets> qosGrants_{};
    std::array<std::uint64_t, kTenantBuckets> qosDefers_{};
};

} // namespace banshee

#endif // BANSHEE_DRAM_TRAFFIC_HH
