#include "dram/dram_model.hh"

#include <algorithm>
#include <memory>

#include "telemetry/dram_hooks.hh"
#include "telemetry/span_trace.hh"

namespace banshee {

//
// DramChannel
//

DramChannel::DramChannel(EventQueue &eq, const DramTiming &timing,
                         TrafficStats &traffic, DramPowerModel &power,
                         StatSet &stats, std::string name)
    : eq_(eq), timing_(timing), traffic_(traffic), power_(power),
      name_(std::move(name)), banks_(timing.numBanks),
      kickEvent_([this] { kick(); }),
      statReqs_(stats.counter(name_ + ".requests")),
      statRowHits_(stats.counter(name_ + ".rowHits")),
      statRowConflicts_(stats.counter(name_ + ".rowConflicts")),
      statTotalLatency_(stats.counter(name_ + ".totalLatencyCycles"))
{
}

void
DramChannel::push(DramRequest req)
{
    if (telem_) {
        // Queue depth this request finds on arrival.
        if (req.isWrite)
            telem_->writeOccupancy.record(writeQ_.size());
        else
            telem_->readOccupancy.record(readQ_.size());
    }
    Pending p{std::move(req), eq_.now(), seq_++};
    if (p.req.isWrite)
        writeQ_.push_back(std::move(p));
    else
        readQ_.push_back(std::move(p));
    armKick(eq_.now());
}

void
DramChannel::armKick(Cycle when)
{
    when = std::max(when, eq_.now());
    // Supersede only to earlier cycles; re-arming is O(1) on the one
    // preallocated event (no per-arm closure, no dead heap entries
    // executing staleness filters).
    if (kickEvent_.armed() && kickEvent_.when() <= when)
        return;
    // Kick coalescing: collapse back-to-back same-cycle no-op kicks.
    // Once a kick has already fired this cycle and issued nothing
    // (lastNoopKickCycle_ == when), a further supersede by a push in
    // the same cycle would replay the identical round trip: fire,
    // see the same reserved-past-horizon bus (busFree_ cannot move
    // without an issue), and re-arm back onto the cycle it is armed
    // at now. The first no-op of the cycle is deliberately NOT
    // skipped: its re-arm pins the wheel entry at the re-arm cycle
    // that the baseline's revival semantics (event-queue invariant
    // I5) can observe; only the redundant repeats are elided. The
    // A/B knob and the coalescing unit/e2e diff tests guard this.
    if (coalesceKicks_ && kickEvent_.armed() &&
        lastNoopKickCycle_ == when &&
        kickEvent_.when() + timing_.toCore(kReserveAheadDramCycles / 2) ==
            busFree_ &&
        busFree_ > when + timing_.toCore(kReserveAheadDramCycles))
        return;
    eq_.schedule(kickEvent_, when);
}

Cycle
DramChannel::bankReadyCycle(const Pending &p) const
{
    // Mirrors issue(): earliest cycle this request's data could be on
    // the bus given only its bank's state. CAS commands pipeline: the
    // bank accepts the next column access one burst after the
    // previous one issued, so back-to-back row hits are bus-limited,
    // not tCAS-limited.
    const std::uint64_t row = p.req.addr / timing_.rowBytes;
    const Bank &bank = banks_[row % banks_.size()];
    const Cycle start = std::max(eq_.now(), bank.readyCycle);

    if (bank.openRow == row) {
        // Row-buffer hit: only the column access.
        return start + timing_.toCore(timing_.scaledCAS());
    }
    if (bank.openRow == ~0ull) {
        // Bank closed: activate then access.
        return start + timing_.toCore(timing_.scaledRCD() +
                                      timing_.scaledCAS());
    }
    // Conflict: precharge (respecting tRAS) + activate + access.
    const Cycle rasDone =
        bank.lastActStart + timing_.toCore(timing_.scaledRAS());
    const Cycle preStart = std::max(start, rasDone);
    return preStart + timing_.toCore(timing_.scaledRP() +
                                     timing_.scaledRCD() +
                                     timing_.scaledCAS());
}

bool
DramChannel::selectNext(Pending &out)
{
    if (qos_.enabled)
        return selectNextQos(out);

    // Write-drain hysteresis: start draining when the write queue is
    // high or there is nothing else to do; stop at the low watermark.
    // Note this puts no bound on an individual write's wait: a
    // co-runner that keeps the read queue nonempty can park another
    // tenant's writes below the high watermark for a long time, and
    // posted writes pin core MSHR slots (see ROADMAP: QoS-aware
    // memory scheduling).
    if (!drainingWrites_) {
        if (writeQ_.size() >= kWriteDrainHigh ||
            (readQ_.empty() && !writeQ_.empty())) {
            drainingWrites_ = true;
        }
    } else if (writeQ_.size() <= kWriteDrainLow && !readQ_.empty()) {
        drainingWrites_ = false;
    }

    std::deque<Pending> &q =
        (drainingWrites_ && !writeQ_.empty()) ? writeQ_ : readQ_;
    if (q.empty())
        return false;

    // FR-FCFS: earliest possible bus time wins; FCFS tie-break.
    std::size_t best = 0;
    Cycle bestReady = bankReadyCycle(q[0]);
    const std::size_t window = std::min<std::size_t>(q.size(), 16);
    for (std::size_t i = 1; i < window; ++i) {
        const Cycle r = bankReadyCycle(q[i]);
        if (r < bestReady) {
            bestReady = r;
            best = i;
        }
    }
    out = std::move(q[best]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(best));
    return true;
}

void
DramChannel::setQosConfig(const DramQosConfig &config)
{
    qos_ = config;
    if (qos_.epochCycles == 0)
        qos_.epochCycles = 1;
    qosBytesPerEpoch_ = config.bytesPerEpoch;
    if (qosBytesPerEpoch_ == 0) {
        // Full channel bandwidth over one epoch: busBytesPerCycle
        // every DRAM cycle for epochCycles core cycles.
        qosBytesPerEpoch_ = (qos_.epochCycles / timing_.toCore(1)) *
                            timing_.busBytesPerCycle;
    }
    qosEpochStart_ = eq_.now();
}

void
DramChannel::setQosShares(const std::array<double, kMaxTenants> &shares)
{
    qosShare_ = shares;
    qosSharesSet_ = true;
    // Reset credits to the new entitlements immediately so a share
    // change (resize commit, arbiter rebalance) binds deterministically
    // rather than waiting out the current epoch.
    for (std::size_t t = 0; t < kMaxTenants; ++t) {
        qosCredit_[t] = static_cast<std::int64_t>(
            qosShare_[t] * static_cast<double>(qosBytesPerEpoch_));
    }
}

void
DramChannel::qosRefill(Cycle now)
{
    if (now < qosEpochStart_ + qos_.epochCycles)
        return;
    // Advance by whole epochs. Credits reset rather than carry: an
    // idle tenant's unused entitlement was already spent by others
    // through work conservation, not banked.
    const Cycle elapsed = now - qosEpochStart_;
    qosEpochStart_ += (elapsed / qos_.epochCycles) * qos_.epochCycles;
    for (std::size_t t = 0; t < kMaxTenants; ++t) {
        qosCredit_[t] = static_cast<std::int64_t>(
            qosShare_[t] * static_cast<double>(qosBytesPerEpoch_));
    }
}

void
DramChannel::qosCharge(const Pending &p)
{
    traffic_.addQosGrant(p.req.tenant);
    if (qosSharesSet_ && p.req.tenant < kMaxTenants)
        qosCredit_[p.req.tenant] -= p.req.bytes; // may go negative
}

bool
DramChannel::selectNextQos(Pending &out)
{
    const Cycle now = eq_.now();
    qosRefill(now);

    // Stock write-drain hysteresis, plus the bounded write age: a
    // write parked past its cap forces (and holds) a drain regardless
    // of watermarks, so posted writes cannot wait on another tenant's
    // read stream forever.
    const bool writeOverAge =
        qos_.writeAgeCap > 0 && !writeQ_.empty() &&
        now - writeQ_.front().arrival > qos_.writeAgeCap;
    const bool readOverAge =
        qos_.readAgeCap > 0 && !readQ_.empty() &&
        now - readQ_.front().arrival > qos_.readAgeCap;
    const std::size_t drainHigh =
        qos_.writeDrainHigh > 0 ? qos_.writeDrainHigh : kWriteDrainHigh;
    const std::size_t drainLow =
        qos_.writeDrainLow > 0 ? qos_.writeDrainLow : kWriteDrainLow;
    if (!drainingWrites_) {
        if (writeQ_.size() >= drainHigh ||
            (readQ_.empty() && !writeQ_.empty()) || writeOverAge) {
            drainingWrites_ = true;
        }
    } else if (writeQ_.size() <= drainLow && !readQ_.empty() &&
               !writeOverAge) {
        drainingWrites_ = false;
    }

    // An over-age read steals single slots out of a write drain (the
    // drain state itself is untouched, so writes keep progressing
    // between stolen slots): a migration burst filling the write
    // queue otherwise blocks another tenant's reads for the whole
    // high-to-low-watermark drain. An over-age write wins the tie —
    // both sides stay bounded.
    const bool readPreempts =
        drainingWrites_ && readOverAge && !writeOverAge;
    std::deque<Pending> &q =
        (drainingWrites_ && !writeQ_.empty() && !readPreempts)
            ? writeQ_
            : readQ_;
    if (q.empty())
        return false;

    // Age-bounded FR-FCFS: the oldest request (queue front — FIFO
    // push order) beats any row hit once its wait exceeds the cap.
    const Cycle ageCap = &q == &writeQ_ ? qos_.writeAgeCap
                                        : qos_.readAgeCap;
    if (ageCap > 0 && now - q.front().arrival > ageCap) {
        out = std::move(q.front());
        q.pop_front();
        out.qosMark = kQosAged;
        qosCharge(out);
        return true;
    }

    // Credit-aware FR-FCFS over a wider window: track the overall
    // bandwidth-optimal pick and the best credit-eligible pick, and
    // prefer the eligible one. Work conserving: with no eligible
    // contender the overall best issues anyway.
    const std::size_t window = std::min<std::size_t>(
        q.size(), std::max<std::uint32_t>(qos_.window, 1));
    std::size_t best = 0;
    Cycle bestReady = bankReadyCycle(q[0]);
    std::size_t bestElig = qosEligible(q[0]) ? 0 : window; // window = none
    Cycle bestEligReady = bestReady;
    for (std::size_t i = 1; i < window; ++i) {
        const Cycle r = bankReadyCycle(q[i]);
        if (r < bestReady) {
            bestReady = r;
            best = i;
        }
        if (qosEligible(q[i]) && (bestElig == window || r < bestEligReady)) {
            bestEligReady = r;
            bestElig = i;
        }
    }
    const std::size_t pick = bestElig != window ? bestElig : best;
    if (pick != best) {
        // Credit arbitration bypassed the bandwidth-optimal request:
        // its tenant exhausted this epoch's entitlement.
        Pending &bypassed = q[best];
        bypassed.qosMark = kQosDeferred;
        traffic_.addQosDefer(bypassed.req.tenant);
        if (telem_)
            telem_->qosDeferAge.record(now - bypassed.arrival);
    }
    out = std::move(q[pick]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    qosCharge(out);
    return true;
}

void
DramChannel::issue(Pending p)
{
    const std::uint64_t row = p.req.addr / timing_.rowBytes;
    Bank &bank = banks_[row % banks_.size()];
    const Cycle start = std::max(eq_.now(), bank.readyCycle);

    Cycle casTime;
    if (bank.openRow == row) {
        casTime = start;
        ++statRowHits_;
    } else if (bank.openRow == ~0ull) {
        casTime = start + timing_.toCore(timing_.scaledRCD());
        bank.lastActStart = start;
        bank.openRow = row;
        power_.onActivate(p.req.cat, p.req.tenant, energySink_);
    } else {
        const Cycle rasDone =
            bank.lastActStart + timing_.toCore(timing_.scaledRAS());
        const Cycle preStart = std::max(start, rasDone);
        const Cycle actStart = preStart + timing_.toCore(timing_.scaledRP());
        casTime = actStart + timing_.toCore(timing_.scaledRCD());
        bank.lastActStart = actStart;
        bank.openRow = row;
        ++statRowConflicts_;
        power_.onActivate(p.req.cat, p.req.tenant, energySink_);
    }
    power_.onBurst(p.req.bytes, p.req.tagBytes, p.req.isWrite, p.req.cat,
                   p.req.tenant, energySink_);

    const Cycle dataReady = casTime + timing_.toCore(timing_.scaledCAS());
    const Cycle transfer =
        timing_.toCore(p.req.bytes / timing_.busBytesPerCycle);
    const Cycle busStart = std::max(busFree_, dataReady);
    const Cycle complete = busStart + transfer;

    busFree_ = complete;
    busBusyCycles_ += transfer;
    power_.onBusBusy(transfer, energySink_);
    // CAS commands pipeline: the bank accepts the next column access
    // one burst slot after this one issued (tCCD ~= burst length),
    // so consecutive row hits stream at full bus bandwidth while the
    // tCAS latency of each access is still paid by its own data.
    bank.readyCycle = casTime + transfer;

    ++statReqs_;
    statTotalLatency_ += complete - p.arrival;
    if (telem_) {
        const Cycle sojourn = complete - p.arrival;
        telem_->queueLatency.record(sojourn);
        if (telem_->tenantQueueLatency) {
            telem_->tenantQueueLatency[tenantBucket(p.req.tenant)].record(
                sojourn);
        }
    }

    if (spans_ && p.req.spanPage != kNoSpanPage) {
        // Queue slice (arrival -> bus grant) + service slice (grant ->
        // completion): all three times are known at issue, and the
        // journal only observes, so tracing cannot perturb timing.
        const char *qosTag = p.qosMark == kQosAged       ? "aged"
                             : p.qosMark == kQosDeferred ? "deferred"
                                                         : nullptr;
        spans_->channelRequest(spanTrack_, p.req.spanPage, p.arrival,
                               busStart, complete, p.req.isWrite,
                               p.req.cat, p.req.tenant, qosTag);
    }

    if (p.req.done) {
        if (completions_) {
            // Event-domain mode: the completion cycle is known at
            // issue time, so export it now — waiting for the event to
            // fire on this (domain-local) queue would hand it to the
            // frontend one epoch after it already ran that window.
            completions_->deliver(complete, std::move(p.req.done));
        } else {
            // The CycleFn overload passes the firing cycle
            // (== complete) straight through: the DramDoneFn moves
            // into a pooled event node with no wrapper closure.
            eq_.schedule(complete, std::move(p.req.done));
        }
    }
}

void
DramChannel::kick()
{
    ScopedTimer profile(telem_ ? telem_->kickTimer : nullptr);
    // Issue requests while the bus reservation horizon allows; bank
    // preparation of later picks overlaps earlier transfers.
    const Cycle horizon =
        eq_.now() + timing_.toCore(kReserveAheadDramCycles);
    bool issuedAny = false;
    while (busFree_ <= horizon) {
        Pending p;
        if (!selectNext(p)) {
            lastNoopKickCycle_ = issuedAny ? ~0ull : eq_.now();
            return;
        }
        issue(std::move(p));
        issuedAny = true;
    }
    // Remember no-op rounds so armKick can collapse same-cycle
    // repeats; any issue invalidates the memo (busFree_ moved).
    lastNoopKickCycle_ = issuedAny ? ~0ull : eq_.now();
    if (!readQ_.empty() || !writeQ_.empty()) {
        // Re-arm once the reserved bus time has drained.
        armKick(busFree_ - timing_.toCore(kReserveAheadDramCycles / 2));
    }
}

//
// DramModel
//

DramModel::DramModel(EventQueue &eq, DramTiming timing,
                     std::uint32_t numChannels, std::string name,
                     DramPowerParams powerParams, ChannelQueueMap *domains)
    : eq_(eq), timing_(timing), name_(std::move(name)), stats_(name_),
      power_(powerParams, timing_, numChannels, stats_)
{
    sim_assert(numChannels > 0, "DRAM device needs >= 1 channel");
    channels_.reserve(numChannels);
    for (std::uint32_t c = 0; c < numChannels; ++c) {
        EventQueue &chq = domains ? domains->nextChannelQueue() : eq_;
        channels_.push_back(std::make_unique<DramChannel>(
            chq, timing_, traffic_, power_, stats_,
            "ch" + std::to_string(c)));
    }
}

void
DramModel::bulkAccess(std::uint32_t channel, Addr addr, std::uint64_t bytes,
                      bool isWrite, TrafficCat cat, DramDoneFn done,
                      TenantId tenant, PageNum spanPage)
{
    sim_assert(bytes > 0, "empty bulk access");
    const std::uint32_t chunk = kMaxRequestBytes / 2; // 256 B pieces
    std::uint64_t remaining = bytes;
    Addr cur = addr;
    // Count-down latch: the callback fires when the last chunk lands.
    auto outstanding = std::make_shared<std::uint32_t>(
        static_cast<std::uint32_t>((bytes + chunk - 1) / chunk));
    while (remaining > 0) {
        const std::uint32_t sz =
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                remaining, chunk));
        DramRequest req;
        req.addr = cur;
        req.bytes = sz;
        req.isWrite = isWrite;
        req.cat = cat;
        req.tenant = tenant;
        req.spanPage = spanPage;
        if (done) {
            req.done = [outstanding, done](Cycle when) {
                if (--*outstanding == 0)
                    done(when);
            };
        }
        access(channel, std::move(req));
        cur += sz;
        remaining -= sz;
    }
}

double
DramModel::busUtilization(Cycle elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    Cycle busy = 0;
    for (const auto &ch : channels_)
        busy += ch->busBusyCycles();
    return static_cast<double>(busy) /
           (static_cast<double>(elapsed) * channels_.size());
}

void
DramModel::resetStats()
{
    traffic_.reset();
    stats_.reset();
    power_.resetStats(eq_.now());
    for (auto &ch : channels_)
        ch->resetStats();
}

} // namespace banshee
