/**
 * @file
 * QoS-aware channel scheduling knobs (SystemConfig::mem.qos).
 *
 * Slice quotas guarantee *residency*; they cannot govern *bandwidth*:
 * FR-FCFS favors whichever tenant happens to be streaming row hits,
 * and the write-drain hysteresis puts no bound on an individual
 * write's wait, so one tenant's posted writes park indefinitely
 * behind another's read stream (the PR-4 finding the tenant bench
 * quantifies). When enabled, each DramChannel layers three gated
 * mechanisms over the stock scheduler:
 *
 *  - per-tenant bandwidth credits: every epoch each tenant's credit
 *    resets to its entitlement share of the channel's epoch bytes;
 *    issued requests charge their tenant, and while any
 *    credit-positive tenant has an issuable request it wins over
 *    tenants that exhausted theirs. Arbitration is work-conserving:
 *    with no credit-positive contender the bandwidth-optimal request
 *    issues anyway (idle bus cycles are never spent "enforcing" a
 *    budget nobody else wants).
 *  - an age-bounded FR-FCFS pick: the oldest queued request beats any
 *    row hit once its wait exceeds the cap, bounding the starvation
 *    row-hit favoritism can inflict on a low-locality tenant;
 *  - a bounded write-drain age: a write parked past its cap forces a
 *    drain even while reads keep arriving, so posted writes (which
 *    pin core MSHR slots) cannot wait on another tenant's read
 *    stream forever.
 *
 * Everything is off by default and every member below is ignored
 * until @c enabled is set: the stock scheduler path is untouched and
 * seed-default runs are byte-identical (guarded by the ext_tenant
 * md5 check — a PR-4 write-age-bound prototype was reverted for
 * perturbing exactly that).
 */

#ifndef BANSHEE_DRAM_QOS_SCHED_HH
#define BANSHEE_DRAM_QOS_SCHED_HH

#include <cstdint>

#include "common/types.hh"

namespace banshee {

struct DramQosConfig
{
    bool enabled = false;

    /** Credit replenish period, in core cycles. */
    Cycle epochCycles = 8192;

    /**
     * Channel data bytes granted per epoch, split over the tenant
     * entitlement shares. 0 derives the channel's full epoch
     * bandwidth from its bus width (busBytesPerCycle per DRAM cycle),
     * i.e. credits only bind when tenants contend.
     */
    std::uint64_t bytesPerEpoch = 0;

    /** A read older than this (core cycles) beats any row hit;
     *  0 disables the read age bound. */
    Cycle readAgeCap = 4096;

    /** A write waiting longer than this (core cycles) forces a write
     *  drain; it also serves as the write-queue age bound while
     *  draining. 0 disables the bound. */
    Cycle writeAgeCap = 16384;

    /** Queue positions the credit-aware FR-FCFS pick scans. Wider
     *  than the stock window (16) so a credit-positive tenant's
     *  request is findable behind a flooding tenant's burst. */
    std::uint32_t window = 64;

    /**
     * Write-drain watermark overrides (0 keeps the stock 48/16).
     * Shorter drain batches trade write-side row locality for read
     * tail latency: every read that lands mid-drain waits out the
     * rest of the batch, so the high-to-low gap is the largest
     * drain-induced read stall the channel can inflict.
     */
    std::uint32_t writeDrainHigh = 0;
    std::uint32_t writeDrainLow = 0;
};

} // namespace banshee

#endif // BANSHEE_DRAM_QOS_SCHED_HH
