/**
 * @file
 * Event-driven DRAM device model.
 *
 * A DramModel owns one or more channels. Each channel has a read
 * queue, a write queue with drain hysteresis, a set of banks with
 * row-buffer state, and a shared DDR data bus. Scheduling is
 * FR-FCFS: among eligible requests the scheduler picks the one whose
 * data can be put on the bus earliest (row-buffer hits win), with
 * arrival order as the tie-break. Bank preparation (precharge /
 * activate) of later requests overlaps the data transfer of earlier
 * ones, so the model pipelines across banks like real devices.
 *
 * Large transfers must be chopped by the caller (schemes move pages
 * as a train of chunk requests); a single request may move at most
 * kMaxRequestBytes so the bus is never monopolized.
 */

#ifndef BANSHEE_DRAM_DRAM_MODEL_HH
#define BANSHEE_DRAM_DRAM_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include <array>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_timing.hh"
#include "dram/qos_sched.hh"
#include "dram/traffic.hh"
#include "power/power_model.hh"
#include "power/power_params.hh"

namespace banshee {

struct ChannelTelemetry; // telemetry/dram_hooks.hh
class PageJournal;       // telemetry/span_trace.hh

/** Completion callback: invoked with the cycle the data finished. */
using DramDoneFn = std::function<void(Cycle)>;

class DramChannel;
struct DramRequest;

/**
 * Event-domain hooks (sim/domain_engine.hh). All three interfaces
 * are inert by default: a DramModel built without a ChannelQueueMap
 * puts every channel on the system queue and never consults a router
 * or sink, keeping the serial path byte-identical.
 */

/** Assigns each DRAM channel, in construction order, to the event
 *  queue shard its scheduler will run on. */
class ChannelQueueMap
{
  public:
    virtual ~ChannelQueueMap() = default;
    virtual EventQueue &nextChannelQueue() = 0;
};

/** Frontend-side mailbox for requests bound for a channel that lives
 *  in another event domain (single producer: the frontend thread). */
class DramDomainRouter
{
  public:
    virtual ~DramDomainRouter() = default;
    virtual void send(DramChannel &ch, DramRequest req) = 0;
};

/** Channel-side export of completion callbacks: instead of firing on
 *  the channel's (domain-local) queue — which would reach the
 *  frontend in its past — completions are recorded at issue time and
 *  merged onto the frontend queue at the next epoch boundary. */
class DramCompletionSink
{
  public:
    virtual ~DramCompletionSink() = default;
    virtual void deliver(Cycle when, DramDoneFn fn) = 0;
};

/** Largest single DRAM transaction (see file comment). */
constexpr std::uint32_t kMaxRequestBytes = 512;

/** Sentinel: the request does not belong to a span-sampled page. */
constexpr PageNum kNoSpanPage = ~0ull;

struct DramRequest
{
    Addr addr = 0;              ///< device byte address (row/bank mapping)
    std::uint32_t bytes = 64;   ///< multiple of 32, <= kMaxRequestBytes
    std::uint32_t tagBytes = 0; ///< portion of @c bytes charged to Tag
    bool isWrite = false;
    TrafficCat cat = TrafficCat::Demand;
    TenantId tenant = kNoTenant; ///< tenant charged for traffic/energy
    /** Owning (sampled) page for span tracing; kNoSpanPage = untraced. */
    PageNum spanPage = kNoSpanPage;
    DramDoneFn done;            ///< may be empty (posted writes)
};

/** One DRAM channel: banks + data bus + queues + scheduler. */
class DramChannel
{
  public:
    DramChannel(EventQueue &eq, const DramTiming &timing, TrafficStats &traffic,
                DramPowerModel &power, StatSet &stats, std::string name);

    /** Enqueue a request; it becomes eligible immediately. */
    void push(DramRequest req);

    /** Data-bus busy cycles so far (core cycles), for utilization. */
    Cycle busBusyCycles() const { return busBusyCycles_; }

    std::size_t queuedReads() const { return readQ_.size(); }
    std::size_t queuedWrites() const { return writeQ_.size(); }

    /** Attach (or detach with nullptr) telemetry distributions; null
     *  keeps the scheduler free of telemetry work. */
    void setTelemetry(ChannelTelemetry *telem) { telem_ = telem; }

    /** Attach span tracing: requests tagged with a sampled page emit
     *  queue/service slices on channel track @p track. Null = off. */
    void
    setSpanTrace(PageJournal *spans, std::uint32_t track)
    {
        spans_ = spans;
        spanTrack_ = track;
    }

    /** Enable the QoS scheduler (see dram/qos_sched.hh). Until called
     *  with an enabled config, the stock FR-FCFS path runs untouched. */
    void setQosConfig(const DramQosConfig &config);

    /** Per-tenant entitlement shares (fractions summing to <= 1),
     *  indexed by TenantId. Until set, credits never bind (every
     *  tenant is exempt, as is untagged traffic throughout). */
    void setQosShares(const std::array<double, kMaxTenants> &shares);

    void resetStats() { busBusyCycles_ = 0; }

    /** A/B knob for no-op-kick coalescing: once a kick has fired this
     *  cycle and issued nothing, further same-cycle supersedes replay
     *  an identical no-op round trip and are elided (see armKick). */
    void setKickCoalescing(bool on) { coalesceKicks_ = on; }

    /** The event queue this channel's scheduler runs on (the system
     *  queue, or its domain's shard under a ChannelQueueMap). */
    EventQueue &queue() { return eq_; }

    /** Export completions to @p sink instead of scheduling them on
     *  this channel's queue (event-domain mode). Null restores the
     *  direct path. */
    void setCompletionSink(DramCompletionSink *sink) { completions_ = sink; }

    /** Charge this channel's dynamic energy to a private shard
     *  instead of the shared device model (event-domain mode). Null
     *  restores the direct path. */
    void setEnergySink(EnergyStats *shard) { energySink_ = shard; }

  private:
    struct Pending
    {
        DramRequest req;
        Cycle arrival;
        std::uint64_t seq;
        /** QoS annotation for span tracing: how scheduling treated
         *  this request (0 none, kQosAged, kQosDeferred). */
        std::uint8_t qosMark = 0;
    };

    static constexpr std::uint8_t kQosAged = 1;
    static constexpr std::uint8_t kQosDeferred = 2;

    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        Cycle readyCycle = 0;       ///< earliest next access start
        Cycle lastActStart = 0;     ///< for the tRAS constraint
    };

    /** Ensure a scheduler kick is pending at or before @p when. */
    void armKick(Cycle when);

    /** Scheduler: issue as many requests as the lookahead allows. */
    void kick();

    /**
     * Earliest cycle the data of @p p could appear on the bus if
     * issued now, considering only its bank (not the bus).
     */
    Cycle bankReadyCycle(const Pending &p) const;

    /** Issue one request: update bank/bus state, schedule completion. */
    void issue(Pending p);

    /** Pick the best eligible request; returns false if none. */
    bool selectNext(Pending &out);

    /** The QoS-gated pick: credit arbitration + age bounds. */
    bool selectNextQos(Pending &out);

    /** Lazy credit replenish on the epoch clock (no extra events, so
     *  enabling the scheduler never perturbs event ordering). */
    void qosRefill(Cycle now);

    /** Charge an issued request to its tenant's credit + counters. */
    void qosCharge(const Pending &p);

    /** Is @p p issuable under credit arbitration right now?
     *  Untagged traffic (and any out-of-range id) is always exempt:
     *  it has no entitlement to charge. */
    bool
    qosEligible(const Pending &p) const
    {
        return !qosSharesSet_ || p.req.tenant >= kMaxTenants ||
               qosCredit_[p.req.tenant] > 0;
    }

    EventQueue &eq_;
    const DramTiming &timing_;
    TrafficStats &traffic_;
    DramPowerModel &power_;
    DramCompletionSink *completions_ = nullptr;
    EnergyStats *energySink_ = nullptr;
    ChannelTelemetry *telem_ = nullptr;
    PageJournal *spans_ = nullptr;
    std::uint32_t spanTrack_ = 0;
    std::string name_;

    std::vector<Bank> banks_;
    std::deque<Pending> readQ_;
    std::deque<Pending> writeQ_;

    Cycle busFree_ = 0;          ///< cycle the data bus becomes free
    Cycle busBusyCycles_ = 0;
    /** The one reusable scheduler-kick event for this channel;
     *  armKick() re-arms it to earlier cycles in place. */
    TickEvent kickEvent_;
    bool drainingWrites_ = false;
    bool coalesceKicks_ = false;
    /** Cycle of the last kick that issued nothing (~0 = none): the
     *  guard for collapsing repeated same-cycle no-op kicks. */
    Cycle lastNoopKickCycle_ = ~0ull;
    std::uint64_t seq_ = 0;

    /** QoS scheduler state (inert until qos_.enabled). */
    DramQosConfig qos_;
    std::uint64_t qosBytesPerEpoch_ = 0; ///< resolved (0 -> bus width)
    Cycle qosEpochStart_ = 0;
    std::array<double, kMaxTenants> qosShare_{};
    std::array<std::int64_t, kMaxTenants> qosCredit_{};
    bool qosSharesSet_ = false;

    /** Write-queue drain hysteresis. */
    static constexpr std::size_t kWriteDrainHigh = 48;
    static constexpr std::size_t kWriteDrainLow = 16;
    /** Bus reservation lookahead per kick, in DRAM cycles. */
    static constexpr std::uint64_t kReserveAheadDramCycles = 64;

    Counter &statReqs_;
    Counter &statRowHits_;
    Counter &statRowConflicts_;
    Counter &statTotalLatency_;
};

/**
 * A DRAM device: N identical channels. The caller picks the channel
 * (memory controllers own channels); helpers map pages to channels.
 */
class DramModel
{
  public:
    /** @p domains, when given, assigns each channel's scheduler to an
     *  event-queue shard (sim/domain_engine.hh); null keeps every
     *  channel on @p eq (the serial path). */
    DramModel(EventQueue &eq, DramTiming timing, std::uint32_t numChannels,
              std::string name,
              DramPowerParams powerParams = DramPowerParams::inPackage(),
              ChannelQueueMap *domains = nullptr);

    /** Route requests to out-of-domain channels through @p router
     *  (installed only in event-domain mode; traffic accounting stays
     *  on the calling thread either way). */
    void setDomainRouter(DramDomainRouter *router) { router_ = router; }

    /** Issue a request on an explicit channel. */
    void
    access(std::uint32_t channel, DramRequest req)
    {
        sim_assert(channel < channels_.size(), "bad channel %u", channel);
        sim_assert(req.bytes > 0 && req.bytes % 32 == 0 &&
                       req.bytes <= kMaxRequestBytes,
                   "bad DRAM request size %u", req.bytes);
        sim_assert(req.tagBytes <= req.bytes, "tag split exceeds request");
        if (req.tagBytes > 0)
            traffic_.add(TrafficCat::Tag, req.tagBytes, req.tenant);
        traffic_.add(req.cat, req.bytes - req.tagBytes, req.tenant);
        if (router_) {
            router_->send(*channels_[channel], std::move(req));
            return;
        }
        channels_[channel]->push(std::move(req));
    }

    /**
     * Move @p bytes starting at @p addr as a train of chunk requests
     * on @p channel; @p done fires when the last chunk completes.
     */
    void bulkAccess(std::uint32_t channel, Addr addr, std::uint64_t bytes,
                    bool isWrite, TrafficCat cat, DramDoneFn done,
                    TenantId tenant = kNoTenant,
                    PageNum spanPage = kNoSpanPage);

    std::uint32_t numChannels() const { return channels_.size(); }

    /** Direct channel access (telemetry attach, tests). */
    DramChannel &channel(std::uint32_t i) { return *channels_[i]; }

    /** Apply a QoS scheduler config to every channel. */
    void
    setQosConfig(const DramQosConfig &config)
    {
        qosConfig_ = config;
        for (auto &ch : channels_)
            ch->setQosConfig(config);
    }

    /** Push per-tenant entitlement shares to every channel. */
    void
    setQosShares(const std::array<double, kMaxTenants> &shares)
    {
        for (auto &ch : channels_)
            ch->setQosShares(shares);
    }

    const DramQosConfig &qosConfig() const { return qosConfig_; }

    const DramTiming &timing() const { return timing_; }

    const TrafficStats &traffic() const { return traffic_; }

    /** State-based energy accounting for this device. */
    DramPowerModel &power() { return power_; }
    const DramPowerModel &power() const { return power_; }

    /** Aggregate data-bus utilization over @p elapsed core cycles. */
    double busUtilization(Cycle elapsed) const;

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    void resetStats();

    /**
     * Unloaded access latency in core cycles (row hit), used by tests
     * and latency-model sanity checks.
     */
    Cycle
    zeroLoadLatency(std::uint32_t bytes = 64) const
    {
        return timing_.toCore(timing_.scaledCAS() +
                              bytes / timing_.busBytesPerCycle);
    }

  private:
    EventQueue &eq_;
    DramDomainRouter *router_ = nullptr;
    DramTiming timing_;
    std::string name_;
    DramQosConfig qosConfig_;
    TrafficStats traffic_;
    StatSet stats_;
    DramPowerModel power_;
    std::vector<std::unique_ptr<DramChannel>> channels_;
};

} // namespace banshee

#endif // BANSHEE_DRAM_DRAM_MODEL_HH
