/**
 * @file
 * DRAM timing parameters.
 *
 * Defaults follow the paper's Table 2: DDR-1333-like devices with a
 * 128-bit bus per channel (32 B per DRAM cycle with DDR), timing
 * 10-10-10-24 (tCAS-tRCD-tRP-tRAS) in DRAM cycles. One DRAM cycle is
 * four core cycles (667 MHz vs 2.7 GHz), giving 21.6 GB/s per channel
 * — the paper's 21 GB/s off-package channel and, with four channels,
 * its 85 GB/s in-package device.
 */

#ifndef BANSHEE_DRAM_DRAM_TIMING_HH
#define BANSHEE_DRAM_DRAM_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace banshee {

struct DramTiming
{
    /** Length of one DRAM bus cycle in core cycles. */
    std::uint32_t dramCycleCoreCycles = 4;

    /** Column access latency (DRAM cycles). */
    std::uint32_t tCAS = 10;
    /** RAS-to-CAS delay (DRAM cycles). */
    std::uint32_t tRCD = 10;
    /** Row precharge (DRAM cycles). */
    std::uint32_t tRP = 10;
    /** Minimum row-open time (DRAM cycles). */
    std::uint32_t tRAS = 24;

    /** Bytes moved per DRAM cycle on the data bus (128-bit DDR). */
    std::uint32_t busBytesPerCycle = 32;

    /** Banks per channel. */
    std::uint32_t numBanks = 8;

    /** Row-buffer size in bytes (paper Fig. 3 assumes 8 KB rows). */
    std::uint32_t rowBytes = 8192;

    /**
     * Multiplier applied to tCAS/tRCD/tRP/tRAS for the Figure 8
     * latency sweep (1.0 = paper default, 0.66 / 0.5 = faster cache).
     */
    double latencyScale = 1.0;

    std::uint32_t scaledCAS() const { return scaled(tCAS); }
    std::uint32_t scaledRCD() const { return scaled(tRCD); }
    std::uint32_t scaledRP() const { return scaled(tRP); }
    std::uint32_t scaledRAS() const { return scaled(tRAS); }

    /** Core cycles for @p n DRAM cycles. */
    Cycle
    toCore(std::uint64_t n) const
    {
        return n * dramCycleCoreCycles;
    }

  private:
    std::uint32_t
    scaled(std::uint32_t v) const
    {
        const double s = v * latencyScale;
        return s < 1.0 ? 1u : static_cast<std::uint32_t>(s + 0.5);
    }
};

} // namespace banshee

#endif // BANSHEE_DRAM_DRAM_TIMING_HH
