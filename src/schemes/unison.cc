#include "schemes/unison.hh"

#include "common/log.hh"

namespace banshee {

UnisonScheme::UnisonScheme(const SchemeContext &ctx,
                           const UnisonConfig &config)
    : DramCacheScheme(ctx, "unison"), config_(config),
      metaBase_(ctx.cacheBytesPerMc),
      statFillLines_(stats_.counter("fillLines")),
      statVictimDirtyLines_(stats_.counter("victimDirtyLines")),
      statReplacements_(stats_.counter("replacements"))
{
    const std::uint64_t frames = ctx.cacheBytesPerMc / kPageBytes;
    sim_assert(frames >= config.ways, "unison cache too small");
    numSets_ = static_cast<std::uint32_t>(frames / config.ways);
    ways_.assign(static_cast<std::uint64_t>(numSets_) * config.ways,
                 WayEntry{});
}

UnisonScheme::WayEntry *
UnisonScheme::findWay(std::uint32_t setIdx, PageNum page)
{
    WayEntry *set =
        &ways_[static_cast<std::uint64_t>(setIdx) * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (set[w].valid && set[w].page == page)
            return &set[w];
    }
    return nullptr;
}

void
UnisonScheme::demandFetch(LineAddr line, const MappingInfo &, CoreId,
                          MissDoneFn done)
{
    const PageNum page = pageOfLine(line);
    const std::uint32_t setIdx = setOf(page);
    const std::uint32_t lineIdx = lineInPage(line);
    WayEntry *entry = findWay(setIdx, page);
    recordAccess(entry != nullptr);

    if (entry) {
        // Perfect way prediction: tags + predicted way data together
        // (96 B read), then the LRU-bit update (32 B write).
        entry->residency.touch(lineIdx, false);
        entry->lruStamp = lruCounter_++;
        const std::uint32_t way = static_cast<std::uint32_t>(
            entry - &ways_[static_cast<std::uint64_t>(setIdx) *
                           config_.ways]);
        const Addr dev = frameAddr(setIdx, way) +
                         static_cast<Addr>(lineIdx) * kLineBytes;
        inPkgAccess(dev, 96, 32, false, TrafficCat::HitData,
                    std::move(done));
        inPkgAccess(tagRowAddr(setIdx), 32, 32, true, TrafficCat::Tag,
                    nullptr);
        return;
    }

    // Miss: speculative data + tag read first, then the demand fetch.
    inPkgAccess(tagRowAddr(setIdx), 96, 32, false, TrafficCat::MissData,
                [this, line, done = std::move(done)](Cycle) mutable {
                    offPkgRead64(line, TrafficCat::Demand, std::move(done));
                });
    replaceOnMiss(page, setIdx, lineIdx);
}

void
UnisonScheme::replaceOnMiss(PageNum page, std::uint32_t setIdx,
                            std::uint32_t lineIdx)
{
    ++statReplacements_;
    WayEntry *set =
        &ways_[static_cast<std::uint64_t>(setIdx) * config_.ways];
    std::uint32_t victimWay = 0;
    std::uint64_t best = ~0ull;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!set[w].valid) {
            victimWay = w;
            best = 0;
            break;
        }
        if (set[w].lruStamp < best) {
            best = set[w].lruStamp;
            victimWay = w;
        }
    }
    WayEntry &victim = set[victimWay];

    if (victim.valid) {
        footprint_.observe(victim.residency.readGroups());
        const std::uint32_t dirtyLines =
            victim.residency.dirtyGroups() * kFootprintGroupLines;
        if (dirtyLines > 0) {
            statVictimDirtyLines_ += dirtyLines;
            inPkgBulk(frameAddr(setIdx, victimWay),
                      static_cast<std::uint64_t>(dirtyLines) * kLineBytes,
                      false, TrafficCat::Replacement);
            offPkgBulk(static_cast<Addr>(victim.page) * kPageBytes,
                       static_cast<std::uint64_t>(dirtyLines) * kLineBytes,
                       true, TrafficCat::Writeback);
        }
    }

    // Footprint-sized fill (perfect predictor: charge the average
    // blocks touched per residency, 4-line granularity).
    const std::uint32_t fillLines = footprint_.predictLines();
    statFillLines_ += fillLines;
    offPkgBulk(static_cast<Addr>(page) * kPageBytes,
               static_cast<std::uint64_t>(fillLines) * kLineBytes, false,
               TrafficCat::Fill);
    inPkgBulk(frameAddr(setIdx, victimWay),
              static_cast<std::uint64_t>(fillLines) * kLineBytes, true,
              TrafficCat::Replacement);
    // Tag update for the new page.
    inPkgAccess(tagRowAddr(setIdx), 32, 32, true, TrafficCat::Tag, nullptr);

    victim.page = page;
    victim.valid = true;
    victim.residency = PageResidency{};
    victim.residency.touch(lineIdx, false);
    victim.lruStamp = lruCounter_++;
}

void
UnisonScheme::demandWriteback(LineAddr line)
{
    const PageNum page = pageOfLine(line);
    const std::uint32_t setIdx = setOf(page);
    const std::uint32_t lineIdx = lineInPage(line);

    // Tag read to decide hit/miss on the eviction path.
    inPkgAccess(tagRowAddr(setIdx), 32, 32, false, TrafficCat::Tag, nullptr);

    WayEntry *entry = findWay(setIdx, page);
    if (entry) {
        entry->residency.touch(lineIdx, true);
        const std::uint32_t way = static_cast<std::uint32_t>(
            entry - &ways_[static_cast<std::uint64_t>(setIdx) *
                           config_.ways]);
        const Addr dev = frameAddr(setIdx, way) +
                         static_cast<Addr>(lineIdx) * kLineBytes;
        inPkgAccess(dev, kLineBytes, 0, true, TrafficCat::HitData, nullptr);
        inPkgAccess(tagRowAddr(setIdx), 32, 32, true, TrafficCat::Tag,
                    nullptr);
    } else {
        offPkgWrite64(line, TrafficCat::Writeback);
    }
}

} // namespace banshee
