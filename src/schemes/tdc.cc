#include "schemes/tdc.hh"

#include "common/log.hh"

namespace banshee {

TdcScheme::TdcScheme(const SchemeContext &ctx)
    : DramCacheScheme(ctx, "tdc"),
      statReplacements_(stats_.counter("replacements")),
      statFillLines_(stats_.counter("fillLines")),
      statVictimDirtyLines_(stats_.counter("victimDirtyLines"))
{
    numFrames_ = ctx.cacheBytesPerMc / kPageBytes;
    sim_assert(numFrames_ > 0, "TDC cache too small");
    freeFrames_.reserve(numFrames_);
    for (std::uint64_t f = 0; f < numFrames_; ++f)
        freeFrames_.push_back(numFrames_ - 1 - f);
}

void
TdcScheme::demandFetch(LineAddr line, const MappingInfo &, CoreId,
                       MissDoneFn done)
{
    const PageNum page = pageOfLine(line);
    const std::uint32_t lineIdx = lineInPage(line);
    auto it = frameOf_.find(page);
    recordAccess(it != frameOf_.end());

    if (it != frameOf_.end()) {
        it->second.residency.touch(lineIdx, false);
        const Addr dev = frameAddr(it->second.frameIdx) +
                         static_cast<Addr>(lineIdx) * kLineBytes;
        inPkgAccess(dev, kLineBytes, 0, false, TrafficCat::HitData,
                    std::move(done));
        return;
    }

    // Mapping is in the TLB (idealized): the miss goes straight to
    // off-package DRAM, no probe latency.
    offPkgRead64(line, TrafficCat::Demand, std::move(done));
    fill(page, lineIdx);
}

void
TdcScheme::evictOne()
{
    sim_assert(!fifo_.empty(), "evict from empty TDC");
    const PageNum victim = fifo_.front();
    fifo_.pop_front();
    auto it = frameOf_.find(victim);
    sim_assert(it != frameOf_.end(), "FIFO page missing from map");

    footprint_.observe(it->second.residency.readGroups());
    const std::uint32_t dirtyLines =
        it->second.residency.dirtyGroups() * kFootprintGroupLines;
    if (dirtyLines > 0) {
        statVictimDirtyLines_ += dirtyLines;
        inPkgBulk(frameAddr(it->second.frameIdx),
                  static_cast<std::uint64_t>(dirtyLines) * kLineBytes, false,
                  TrafficCat::Replacement);
        offPkgBulk(static_cast<Addr>(victim) * kPageBytes,
                   static_cast<std::uint64_t>(dirtyLines) * kLineBytes, true,
                   TrafficCat::Writeback);
    }
    freeFrames_.push_back(it->second.frameIdx);
    frameOf_.erase(it);
}

void
TdcScheme::fill(PageNum page, std::uint32_t lineIdx)
{
    ++statReplacements_;
    if (freeFrames_.empty())
        evictOne();
    const std::uint64_t frameIdx = freeFrames_.back();
    freeFrames_.pop_back();

    const std::uint32_t fillLines = footprint_.predictLines();
    statFillLines_ += fillLines;
    offPkgBulk(static_cast<Addr>(page) * kPageBytes,
               static_cast<std::uint64_t>(fillLines) * kLineBytes, false,
               TrafficCat::Fill);
    inPkgBulk(frameAddr(frameIdx),
              static_cast<std::uint64_t>(fillLines) * kLineBytes, true,
              TrafficCat::Replacement);

    Frame frame;
    frame.frameIdx = frameIdx;
    frame.residency.touch(lineIdx, false);
    frameOf_.emplace(page, frame);
    fifo_.push_back(page);
}

void
TdcScheme::demandWriteback(LineAddr line)
{
    const PageNum page = pageOfLine(line);
    const std::uint32_t lineIdx = lineInPage(line);
    auto it = frameOf_.find(page);
    if (it != frameOf_.end()) {
        it->second.residency.touch(lineIdx, true);
        const Addr dev = frameAddr(it->second.frameIdx) +
                         static_cast<Addr>(lineIdx) * kLineBytes;
        inPkgAccess(dev, kLineBytes, 0, true, TrafficCat::HitData, nullptr);
    } else {
        offPkgWrite64(line, TrafficCat::Writeback);
    }
}

} // namespace banshee
