/**
 * @file
 * Tagless DRAM Cache baseline (Lee et al., ISCA'15) as idealized by
 * the paper (Section 5.1.1): PTE/TLB-tracked mapping with *zero-cost*
 * TLB coherence (the directory-based coherence traffic, address
 * consistency scrubbing and page aliasing side effects are all waived
 * in TDC's favor), fully-associative page cache, FIFO replacement on
 * every miss, perfect footprint prediction.
 *
 * Hits move exactly 64 B; misses move 64 B from off-package plus the
 * footprint-sized replacement — the remaining bandwidth weakness
 * Banshee's frequency-based policy removes.
 */

#ifndef BANSHEE_SCHEMES_TDC_HH
#define BANSHEE_SCHEMES_TDC_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mem/scheme.hh"
#include "schemes/footprint.hh"

namespace banshee {

class TdcScheme : public DramCacheScheme
{
  public:
    explicit TdcScheme(const SchemeContext &ctx);

    void demandFetch(LineAddr line, const MappingInfo &mapping, CoreId core,
                     MissDoneFn done) override;
    void demandWriteback(LineAddr line) override;

    const FootprintPredictor &footprint() const { return footprint_; }
    std::uint64_t residentPages() const { return frameOf_.size(); }

  private:
    struct Frame
    {
        std::uint64_t frameIdx = 0;
        PageResidency residency;
    };

    Addr
    frameAddr(std::uint64_t frameIdx) const
    {
        return frameIdx * kPageBytes;
    }

    /** FIFO replacement of one page to make room. */
    void evictOne();

    void fill(PageNum page, std::uint32_t lineIdx);

    std::uint64_t numFrames_;
    std::unordered_map<PageNum, Frame> frameOf_;
    std::deque<PageNum> fifo_;
    std::vector<std::uint64_t> freeFrames_;
    FootprintPredictor footprint_;

    Counter &statReplacements_;
    Counter &statFillLines_;
    Counter &statVictimDirtyLines_;
};

} // namespace banshee

#endif // BANSHEE_SCHEMES_TDC_HH
