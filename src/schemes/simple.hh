/**
 * @file
 * The two bounding baselines: NoCache (off-package DRAM only) and
 * CacheOnly (infinite in-package DRAM), paper Section 5.1.1.
 */

#ifndef BANSHEE_SCHEMES_SIMPLE_HH
#define BANSHEE_SCHEMES_SIMPLE_HH

#include "mem/scheme.hh"

namespace banshee {

/** All traffic goes to the single off-package channel. */
class NoCacheScheme : public DramCacheScheme
{
  public:
    explicit NoCacheScheme(const SchemeContext &ctx)
        : DramCacheScheme(ctx, "nocache")
    {
    }

    void
    demandFetch(LineAddr line, const MappingInfo &, CoreId,
                MissDoneFn done) override
    {
        recordAccess(false);
        offPkgRead64(line, TrafficCat::Demand, std::move(done));
    }

    void
    demandWriteback(LineAddr line) override
    {
        offPkgWrite64(line, TrafficCat::Writeback);
    }
};

/**
 * Infinite in-package DRAM: every access hits. The system has no
 * off-package device at all, so total bandwidth is lower than a
 * cache configuration — which is why Banshee can beat CacheOnly on
 * the most bandwidth-hungry graph codes (paper Section 5.2).
 */
class CacheOnlyScheme : public DramCacheScheme
{
  public:
    explicit CacheOnlyScheme(const SchemeContext &ctx)
        : DramCacheScheme(ctx, "cacheonly")
    {
    }

    void
    demandFetch(LineAddr line, const MappingInfo &, CoreId,
                MissDoneFn done) override
    {
        recordAccess(true);
        inPkgAccess(deviceAddr(line), kLineBytes, 0, false,
                    TrafficCat::HitData, std::move(done));
    }

    void
    demandWriteback(LineAddr line) override
    {
        inPkgAccess(deviceAddr(line), kLineBytes, 0, true,
                    TrafficCat::HitData, nullptr);
    }

  private:
    Addr
    deviceAddr(LineAddr line) const
    {
        // Keep the page's row locality; fold the address onto the
        // channel's device space.
        const Addr a = lineToAddr(line) / ctx_.numMcs;
        return a;
    }
};

} // namespace banshee

#endif // BANSHEE_SCHEMES_SIMPLE_HH
