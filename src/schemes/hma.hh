/**
 * @file
 * Heterogeneous Memory Architecture baseline (Meswani et al.,
 * HPCA'15; paper Section 2.1.2 / Table 1): a purely software-managed
 * scheme. The OS periodically ranks pages by access count, moves the
 * hottest set into in-package DRAM, rewrites PTEs, flushes TLBs and
 * scrubs caches — stalling every core while it does so. Between
 * epochs the mapping is frozen, so the scheme cannot react to
 * fine-grained locality changes; that is exactly the weakness the
 * paper contrasts hardware replacement against.
 */

#ifndef BANSHEE_SCHEMES_HMA_HH
#define BANSHEE_SCHEMES_HMA_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/units.hh"
#include "mem/scheme.hh"

namespace banshee {

struct HmaConfig
{
    /** Remap interval (the paper cites 100 ms - 1 s; scaled here). */
    Cycle epoch = usToCycles(2000.0);
    /** Fixed software cost per epoch, charged to every core. */
    Cycle baseCost = usToCycles(50.0);
    /** Additional cost per migrated page, charged to every core. */
    Cycle perPageCost = usToCycles(2.0);
    /** Counter decay across epochs (divide by 2). */
    bool decayCounts = true;
};

class HmaScheme : public DramCacheScheme
{
  public:
    HmaScheme(const SchemeContext &ctx, const HmaConfig &config);

    void demandFetch(LineAddr line, const MappingInfo &mapping, CoreId core,
                     MissDoneFn done) override;
    void demandWriteback(LineAddr line) override;

    std::uint64_t epochsRun() const { return statEpochs_.value(); }

  private:
    struct Resident
    {
        std::uint64_t frameIdx = 0;
        bool dirty = false;
    };

    void armEpoch();
    void runEpoch();

    Addr
    frameAddr(std::uint64_t frameIdx) const
    {
        return frameIdx * kPageBytes;
    }

    HmaConfig config_;
    /** The software remapper's epoch clock; self-rearming. */
    TickEvent epochEvent_{[this] {
        runEpoch();
        armEpoch();
    }};
    std::uint64_t numFrames_;
    std::unordered_map<PageNum, std::uint32_t> counts_;
    std::unordered_map<PageNum, Resident> resident_;
    std::vector<std::uint64_t> freeFrames_;

    Counter &statEpochs_;
    Counter &statPagesMoved_;
};

} // namespace banshee

#endif // BANSHEE_SCHEMES_HMA_HH
