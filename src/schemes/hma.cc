#include "schemes/hma.hh"

#include <algorithm>

#include "common/log.hh"

namespace banshee {

HmaScheme::HmaScheme(const SchemeContext &ctx, const HmaConfig &config)
    : DramCacheScheme(ctx, "hma"), config_(config),
      statEpochs_(stats_.counter("epochs")),
      statPagesMoved_(stats_.counter("pagesMoved"))
{
    numFrames_ = ctx.cacheBytesPerMc / kPageBytes;
    sim_assert(numFrames_ > 0, "HMA partition too small");
    freeFrames_.reserve(numFrames_);
    for (std::uint64_t f = 0; f < numFrames_; ++f)
        freeFrames_.push_back(f);
    armEpoch();
}

void
HmaScheme::armEpoch()
{
    ctx_.eq->scheduleAfter(epochEvent_, config_.epoch);
}

void
HmaScheme::demandFetch(LineAddr line, const MappingInfo &, CoreId,
                       MissDoneFn done)
{
    const PageNum page = pageOfLine(line);
    ++counts_[page];
    auto it = resident_.find(page);
    recordAccess(it != resident_.end());
    if (it != resident_.end()) {
        const Addr dev = frameAddr(it->second.frameIdx) +
                         (lineToAddr(line) & (kPageBytes - 1));
        inPkgAccess(dev, kLineBytes, 0, false, TrafficCat::HitData,
                    std::move(done));
    } else {
        offPkgRead64(line, TrafficCat::Demand, std::move(done));
    }
}

void
HmaScheme::demandWriteback(LineAddr line)
{
    const PageNum page = pageOfLine(line);
    auto it = resident_.find(page);
    if (it != resident_.end()) {
        it->second.dirty = true;
        const Addr dev = frameAddr(it->second.frameIdx) +
                         (lineToAddr(line) & (kPageBytes - 1));
        inPkgAccess(dev, kLineBytes, 0, true, TrafficCat::HitData, nullptr);
    } else {
        offPkgWrite64(line, TrafficCat::Writeback);
    }
}

void
HmaScheme::runEpoch()
{
    ++statEpochs_;

    // Rank all pages seen this epoch by access count.
    std::vector<std::pair<std::uint32_t, PageNum>> ranked;
    ranked.reserve(counts_.size());
    for (const auto &kv : counts_)
        ranked.emplace_back(kv.second, kv.first);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });

    // The hottest numFrames_ pages form the new resident set.
    std::unordered_map<PageNum, bool> target;
    const std::size_t keep =
        std::min<std::size_t>(ranked.size(), numFrames_);
    for (std::size_t i = 0; i < keep; ++i)
        target.emplace(ranked[i].second, true);

    // Evict pages that fell out of the hot set.
    std::uint64_t moved = 0;
    for (auto it = resident_.begin(); it != resident_.end();) {
        if (target.count(it->first)) {
            ++it;
            continue;
        }
        if (it->second.dirty) {
            inPkgBulk(frameAddr(it->second.frameIdx), kPageBytes, false,
                      TrafficCat::Replacement);
            offPkgBulk(static_cast<Addr>(it->first) * kPageBytes,
                       kPageBytes, true, TrafficCat::Writeback);
        }
        freeFrames_.push_back(it->second.frameIdx);
        it = resident_.erase(it);
        ++moved;
    }

    // Fill newly hot pages into free frames.
    for (const auto &kv : target) {
        if (resident_.count(kv.first))
            continue;
        sim_assert(!freeFrames_.empty(), "HMA frame accounting error");
        const std::uint64_t frameIdx = freeFrames_.back();
        freeFrames_.pop_back();
        offPkgBulk(static_cast<Addr>(kv.first) * kPageBytes, kPageBytes,
                   false, TrafficCat::Fill);
        inPkgBulk(frameAddr(frameIdx), kPageBytes, true,
                  TrafficCat::Replacement);
        resident_[kv.first] = Resident{frameIdx, false};
        ++moved;
    }
    statPagesMoved_ += moved;

    // The OS stops every program while it migrates and rewrites PTEs.
    if (ctx_.os) {
        ctx_.os->stallAllCores(config_.baseCost +
                               config_.perPageCost * moved);
    }

    if (config_.decayCounts) {
        for (auto &kv : counts_)
            kv.second /= 2;
    }
}

} // namespace banshee
