/**
 * @file
 * BATMAN-style bandwidth balancing (paper Section 5.4.2).
 *
 * BATMAN observes the split of traffic between in- and off-package
 * DRAM and, when the in-package share exceeds a target (80 %), steers
 * part of the address space away from the cache so both memories'
 * bandwidth is used. We implement the controller as a feedback loop
 * over a hashed bypass fraction: schemes consult shouldBypass(page)
 * before caching decisions; already-cached bypassed pages keep
 * hitting and age out naturally.
 */

#ifndef BANSHEE_SCHEMES_BATMAN_HH
#define BANSHEE_SCHEMES_BATMAN_HH

#include <cstdint>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "dram/dram_model.hh"

namespace banshee {

struct BatmanParams
{
    double targetInPkgFraction = 0.8;
    double step = 0.05;
    double maxBypass = 0.95;
    Cycle epoch = usToCycles(50.0);
};

class BatmanController
{
  public:
    BatmanController(EventQueue &eq, const DramModel *inPkg,
                     const DramModel *offPkg,
                     BatmanParams params = BatmanParams{})
        : eq_(eq), inPkg_(inPkg), offPkg_(offPkg), params_(params),
          stats_("batman"),
          statEpochs_(stats_.counter("epochs")),
          statIncreases_(stats_.counter("bypassIncreases"))
    {
        armEpoch();
    }

    /** Pages hashing below the bypass fraction skip the cache. */
    bool
    shouldBypass(PageNum page) const
    {
        if (bypassFraction_ <= 0.0)
            return false;
        const std::uint64_t h = page * 0x9e3779b97f4a7c15ull;
        return static_cast<double>(h >> 11) * 0x1.0p-53 < bypassFraction_;
    }

    double bypassFraction() const { return bypassFraction_; }

    StatSet &stats() { return stats_; }

  private:
    void
    armEpoch()
    {
        eq_.scheduleAfter(epochEvent_, params_.epoch);
    }

    void
    tick()
    {
        ++statEpochs_;
        const std::uint64_t in = inPkg_ ? inPkg_->traffic().totalBytes() : 0;
        const std::uint64_t off =
            offPkg_ ? offPkg_->traffic().totalBytes() : 0;
        const std::uint64_t dIn = in - lastIn_;
        const std::uint64_t dOff = off - lastOff_;
        lastIn_ = in;
        lastOff_ = off;
        if (dIn + dOff == 0)
            return;
        const double frac =
            static_cast<double>(dIn) / static_cast<double>(dIn + dOff);
        if (frac > params_.targetInPkgFraction) {
            bypassFraction_ += params_.step;
            ++statIncreases_;
        } else {
            bypassFraction_ -= params_.step;
        }
        if (bypassFraction_ < 0.0)
            bypassFraction_ = 0.0;
        if (bypassFraction_ > params_.maxBypass)
            bypassFraction_ = params_.maxBypass;
    }

    EventQueue &eq_;
    const DramModel *inPkg_;
    const DramModel *offPkg_;
    BatmanParams params_;
    /** The bypass controller's epoch clock; self-rearming. */
    TickEvent epochEvent_{[this] {
        tick();
        armEpoch();
    }};
    double bypassFraction_ = 0.0;
    std::uint64_t lastIn_ = 0;
    std::uint64_t lastOff_ = 0;

    StatSet stats_;
    Counter &statEpochs_;
    Counter &statIncreases_;
};

} // namespace banshee

#endif // BANSHEE_SCHEMES_BATMAN_HH
