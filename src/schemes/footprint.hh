/**
 * @file
 * Footprint machinery shared by the Unison and TDC baselines.
 *
 * Both baselines replace on every miss and rely on a footprint
 * predictor to avoid fetching whole pages (paper Section 5.1.1
 * models the predictor as perfect: traffic is charged as the average
 * number of blocks touched per page fill, managed at 4-line
 * granularity, while residency-wide hits are assumed). We track the
 * actually-touched and actually-dirtied lines of each cached page and
 * feed an EWMA of the touched-group count at eviction back into the
 * fill charge — a self-calibrating, single-pass equivalent of the
 * paper's profile-then-charge methodology.
 */

#ifndef BANSHEE_SCHEMES_FOOTPRINT_HH
#define BANSHEE_SCHEMES_FOOTPRINT_HH

#include <cstdint>

#include "common/types.hh"

namespace banshee {

/** Lines per footprint group (paper: 4-line granularity). */
constexpr std::uint32_t kFootprintGroupLines = 4;

/** Touched/read/dirty line masks for one page residency. */
struct PageResidency
{
    std::uint64_t touched = 0;
    std::uint64_t readLines = 0;
    std::uint64_t dirty = 0;

    void
    touch(std::uint32_t lineIdx, bool isWrite)
    {
        touched |= 1ull << lineIdx;
        if (isWrite)
            dirty |= 1ull << lineIdx;
        else
            readLines |= 1ull << lineIdx;
    }

    /** Number of 4-line groups with at least one touched line. */
    std::uint32_t
    touchedGroups() const
    {
        return maskGroups(touched);
    }

    /**
     * Groups with at least one *read* line — the groups a footprint
     * fill actually has to fetch. Write-only lines are produced, not
     * consumed, so the predictor does not fetch them (this is what
     * keeps replace-on-every-miss schemes bandwidth-neutral on
     * write-streaming codes like lbm).
     */
    std::uint32_t
    readGroups() const
    {
        return maskGroups(readLines);
    }

    std::uint32_t
    dirtyGroups() const
    {
        return maskGroups(dirty);
    }

    static std::uint32_t
    maskGroups(std::uint64_t mask)
    {
        std::uint32_t groups = 0;
        for (std::uint32_t g = 0; g < kLinesPerPage / kFootprintGroupLines;
             ++g) {
            if (mask & (0xFull << (g * kFootprintGroupLines)))
                ++groups;
        }
        return groups;
    }
};

/** EWMA of per-residency footprints, used as the fill charge. */
class FootprintPredictor
{
  public:
    explicit FootprintPredictor(double initGroups = 8.0, double alpha = 0.1)
        : ewmaGroups_(initGroups), alpha_(alpha)
    {
    }

    /** Feed the footprint observed when a page is evicted. */
    void
    observe(std::uint32_t touchedGroups)
    {
        ewmaGroups_ = alpha_ * touchedGroups + (1.0 - alpha_) * ewmaGroups_;
    }

    /** Predicted fill size in lines (always at least one group). */
    std::uint32_t
    predictLines() const
    {
        std::uint32_t groups =
            static_cast<std::uint32_t>(ewmaGroups_ + 0.5);
        const std::uint32_t maxGroups =
            kLinesPerPage / kFootprintGroupLines;
        if (groups < 1)
            groups = 1;
        if (groups > maxGroups)
            groups = maxGroups;
        return groups * kFootprintGroupLines;
    }

    double ewmaGroups() const { return ewmaGroups_; }

  private:
    double ewmaGroups_;
    double alpha_;
};

} // namespace banshee

#endif // BANSHEE_SCHEMES_FOOTPRINT_HH
