/**
 * @file
 * Alloy Cache baseline (Qureshi & Loh, MICRO'12) with the BEAR
 * bandwidth optimizations the paper's methodology adds (Section
 * 5.1.1): stochastic cache fills (Alloy-1 fills always, Alloy-0.1
 * with 10 % probability) and a tag-only probe for LLC dirty
 * evictions.
 *
 * Direct-mapped, cacheline granularity. Tags are alloyed with data:
 * every demand access reads one 96 B TAD (64 B data + 32 B tag burst)
 * from in-package DRAM — the Tag traffic Banshee eliminates. Misses
 * pay the probe first and the off-package fetch after it (the paper
 * disables the parallel speculative fetch: it hurts when off-package
 * bandwidth is scarce).
 */

#ifndef BANSHEE_SCHEMES_ALLOY_HH
#define BANSHEE_SCHEMES_ALLOY_HH

#include <cstdint>
#include <vector>

#include "mem/scheme.hh"

namespace banshee {

struct AlloyConfig
{
    /** Probability a miss fills the cache (1.0 or 0.1 in the paper). */
    double fillProbability = 0.1;
    /** Bytes a TAD occupies in the device (64 B data + 8 B tag). */
    std::uint32_t tadStorageBytes = 72;
};

class AlloyScheme : public DramCacheScheme
{
  public:
    AlloyScheme(const SchemeContext &ctx, const AlloyConfig &config);

    void demandFetch(LineAddr line, const MappingInfo &mapping, CoreId core,
                     MissDoneFn done) override;
    void demandWriteback(LineAddr line) override;

    std::uint64_t numSets() const { return numSets_; }

  private:
    /**
     * Direct-mapped set index. The page component is hashed (models
     * OS-randomized frame placement); the line-within-page offset
     * stays sequential so a page's lines land in adjacent TADs and
     * keep their row-buffer locality.
     */
    std::uint64_t
    setOf(LineAddr line) const
    {
        const std::uint64_t page = pageOfLine(line) / ctx_.numMcs;
        const std::uint64_t h = page * 0x9e3779b97f4a7c15ull;
        return ((h >> 32) * kLinesPerPage + lineInPage(line)) % numSets_;
    }

    /** Device address of a TAD (96 B transfer granule). */
    Addr
    tadAddr(std::uint64_t set) const
    {
        return set * config_.tadStorageBytes;
    }

    void maybeFill(LineAddr line, std::uint64_t set);

    AlloyConfig config_;
    std::uint64_t numSets_;
    std::vector<LineAddr> tags_;
    std::vector<std::uint8_t> state_; ///< bit0 valid, bit1 dirty

    Counter &statFills_;
    Counter &statFillsSkipped_;
    Counter &statVictimWritebacks_;
    Counter &statWritebackProbes_;
};

} // namespace banshee

#endif // BANSHEE_SCHEMES_ALLOY_HH
