#include "schemes/alloy.hh"

#include "common/log.hh"
#include "schemes/batman.hh"

namespace banshee {

AlloyScheme::AlloyScheme(const SchemeContext &ctx, const AlloyConfig &config)
    : DramCacheScheme(ctx, "alloy"), config_(config),
      statFills_(stats_.counter("fills")),
      statFillsSkipped_(stats_.counter("fillsSkipped")),
      statVictimWritebacks_(stats_.counter("victimWritebacks")),
      statWritebackProbes_(stats_.counter("writebackProbes"))
{
    numSets_ = ctx.cacheBytesPerMc / config.tadStorageBytes;
    sim_assert(numSets_ > 0, "alloy cache too small");
    tags_.assign(numSets_, 0);
    state_.assign(numSets_, 0);
}

void
AlloyScheme::demandFetch(LineAddr line, const MappingInfo &, CoreId,
                         MissDoneFn done)
{
    const std::uint64_t set = setOf(line);
    const bool hit = (state_[set] & 1) && tags_[set] == line;
    recordAccess(hit);

    if (hit) {
        // One 96 B TAD read: data plus the tag burst.
        inPkgAccess(tadAddr(set), 96, 32, false, TrafficCat::HitData,
                    std::move(done));
        return;
    }

    // Miss: the probe must complete before the off-package fetch
    // (the parallel speculative fetch is disabled, Section 5.1.1).
    inPkgAccess(tadAddr(set), 96, 32, false, TrafficCat::MissData,
                [this, line, done = std::move(done)](Cycle) mutable {
                    offPkgRead64(line, TrafficCat::Demand, std::move(done));
                });
    maybeFill(line, set);
}

void
AlloyScheme::maybeFill(LineAddr line, std::uint64_t set)
{
    if (ctx_.batman && ctx_.batman->shouldBypass(pageOfLine(line))) {
        ++statFillsSkipped_;
        return;
    }
    if (!rng_.nextBool(config_.fillProbability)) {
        ++statFillsSkipped_;
        return;
    }
    ++statFills_;
    // Victim data was already read by the speculative TAD access, so
    // a dirty victim costs only the off-package write (BEAR fill).
    if ((state_[set] & 1) && (state_[set] & 2)) {
        ++statVictimWritebacks_;
        offPkgWrite64(tags_[set], TrafficCat::Writeback);
    }
    // Fill writes data + tag as one TAD.
    inPkgAccess(tadAddr(set), 96, 32, true, TrafficCat::Replacement,
                nullptr);
    tags_[set] = line;
    state_[set] = 1; // valid, clean
}

void
AlloyScheme::demandWriteback(LineAddr line)
{
    const std::uint64_t set = setOf(line);
    // BEAR writeback probe: a 32 B tag read decides hit/miss.
    ++statWritebackProbes_;
    inPkgAccess(tadAddr(set), 32, 32, false, TrafficCat::Tag, nullptr);

    const bool hit = (state_[set] & 1) && tags_[set] == line;
    if (hit) {
        inPkgAccess(tadAddr(set), 96, 32, true, TrafficCat::HitData,
                    nullptr);
        state_[set] |= 2; // dirty
    } else {
        // No write-allocate on the eviction path.
        offPkgWrite64(line, TrafficCat::Writeback);
    }
}

} // namespace banshee
