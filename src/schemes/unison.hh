/**
 * @file
 * Unison Cache baseline (Jevdjic et al., MICRO'14) as modeled by the
 * paper (Section 5.1.1): page granularity, way-associative with LRU,
 * perfect way prediction, perfect footprint prediction charged at
 * 4-line granularity, replacement on every miss.
 *
 * Demand hits read tags + the predicted way's data (96 B) and write
 * the LRU bits back (32 B) — at least 128 B per hit (Table 1).
 * Misses pay the speculative read, then the off-package fetch, then a
 * full replacement: footprint-sized fill plus a dirty victim's
 * footprint-sized writeback.
 */

#ifndef BANSHEE_SCHEMES_UNISON_HH
#define BANSHEE_SCHEMES_UNISON_HH

#include <cstdint>
#include <vector>

#include "mem/scheme.hh"
#include "schemes/footprint.hh"

namespace banshee {

struct UnisonConfig
{
    std::uint32_t ways = 4;
};

class UnisonScheme : public DramCacheScheme
{
  public:
    UnisonScheme(const SchemeContext &ctx, const UnisonConfig &config);

    void demandFetch(LineAddr line, const MappingInfo &mapping, CoreId core,
                     MissDoneFn done) override;
    void demandWriteback(LineAddr line) override;

    const FootprintPredictor &footprint() const { return footprint_; }

  private:
    struct WayEntry
    {
        PageNum page = 0;
        PageResidency residency;
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    /** Hashed set index (models OS-randomized frame placement). */
    std::uint32_t
    setOf(PageNum page) const
    {
        const std::uint64_t h =
            (page / ctx_.numMcs) * 0x9e3779b97f4a7c15ull;
        return static_cast<std::uint32_t>((h >> 32) % numSets_);
    }

    WayEntry *findWay(std::uint32_t setIdx, PageNum page);

    Addr
    frameAddr(std::uint32_t setIdx, std::uint32_t way) const
    {
        return (static_cast<Addr>(setIdx) * config_.ways + way) * kPageBytes;
    }

    Addr
    tagRowAddr(std::uint32_t setIdx) const
    {
        return metaBase_ + static_cast<Addr>(setIdx) * 32;
    }

    /** Replacement on a miss: evict LRU way, fill the footprint. */
    void replaceOnMiss(PageNum page, std::uint32_t setIdx,
                       std::uint32_t lineIdx);

    UnisonConfig config_;
    std::uint32_t numSets_;
    Addr metaBase_;
    std::vector<WayEntry> ways_;
    std::uint64_t lruCounter_ = 1;
    FootprintPredictor footprint_;

    Counter &statFillLines_;
    Counter &statVictimDirtyLines_;
    Counter &statReplacements_;
};

} // namespace banshee

#endif // BANSHEE_SCHEMES_UNISON_HH
