/**
 * @file
 * Approximate out-of-order core model (paper Table 2: 4-issue OoO).
 *
 * The model captures the two properties that matter for a DRAM
 * bandwidth study: limited memory-level parallelism (an MSHR budget
 * and a reorder-window constraint bound how many misses overlap) and
 * dependence chains (pointer-chasing loads serialize). Non-memory
 * instructions retire at the issue width. Cores run ahead of the
 * global event clock by at most a small skew bound, then yield, so
 * DRAM requests carry accurate issue timestamps.
 */

#ifndef BANSHEE_CPU_CORE_MODEL_HH
#define BANSHEE_CPU_CORE_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/tlb.hh"
#include "workload/pattern.hh"

namespace banshee {

struct CoreParams
{
    std::uint32_t issueWidth = 4;
    std::uint32_t robSize = 192;
    std::uint32_t mshrs = 10;
    /** Yield to the event queue when this far ahead of it. */
    Cycle skewLimit = 128;
    /** Hard cap on ops processed per activation. */
    std::uint32_t quantumOps = 4096;
    /** Instruction-fetch group size (one L1I probe per group). */
    std::uint32_t fetchGroup = 16;
    /** Per-core code footprint for the instruction stream. */
    std::uint64_t codeBytes = 16 * 1024;
};

class CoreModel
{
  public:
    CoreModel(CoreId id, const CoreParams &params, EventQueue &eq,
              CacheHierarchy &hierarchy, Tlb &tlb, AccessPattern &pattern,
              std::uint64_t rngSeed);

    /** Set the retirement target; the core parks when it reaches it. */
    void setInstrLimit(std::uint64_t limit) { instrLimit_ = limit; }

    /** Callback invoked (once) when the instruction limit is hit. */
    void onParked(std::function<void(CoreId)> fn) { onParked_ = std::move(fn); }

    /** Begin or resume execution (schedules the first activation). */
    void start();

    /**
     * Charge an external stall (interrupt handler, TLB shootdown).
     * Applied at the next instruction boundary.
     */
    void
    addStall(Cycle cycles)
    {
        pendingStall_ += cycles;
        statExternalStall_ += cycles;
    }

    CoreId id() const { return id_; }
    std::uint64_t instrRetired() const { return instrRetired_; }
    Cycle localCycle() const { return curCycle_; }
    bool parked() const { return state_ == State::Parked; }

    /**
     * Base of core @p id's instruction-stream region. Exposed so the
     * system builder can register [base, base + codeBytes) with the
     * core's tenant — the single source of truth for the layout the
     * fetch path uses.
     */
    static Addr
    codeRegionBase(CoreId id, const CoreParams &params)
    {
        return (0xC0DEull << 40) +
               static_cast<std::uint64_t>(id) * params.codeBytes * 4;
    }

    StatSet &stats() { return stats_; }

  private:
    enum class State : std::uint8_t
    {
        Idle,        ///< created, not started
        Running,     ///< activation scheduled or executing
        BlockedRob,  ///< window full, waiting on the oldest miss
        BlockedDep,  ///< dependent load waiting on the previous load
        BlockedMshr, ///< all MSHRs in flight
        Parked       ///< instruction limit reached
    };

    struct Outstanding
    {
        std::uint64_t seq = 0;
        Cycle doneCycle = 0;
        bool done = false;
        bool isLoad = false;
    };

    /** Main execution loop; runs until blocked, parked, or yielding. */
    void run();

    /** Schedule an activation at max(cycle, eq.now()). */
    void scheduleRun(Cycle at);

    /** Pop completed window entries whose time has passed. */
    void drainWindow();

    /** Memory-response handler for entries in the window. */
    void missDone(Outstanding *entry, Cycle when);

    /** Memory-response handler for posted stores / fetches. */
    void postedDone(Cycle when);

    void park();

    CoreId id_;
    CoreParams params_;
    EventQueue &eq_;
    CacheHierarchy &hierarchy_;
    Tlb &tlb_;
    AccessPattern &pattern_;
    Rng rng_;

    State state_ = State::Idle;
    /** The core's one activation event; scheduleRun() arms it. */
    TickEvent runEvent_;
    Cycle curCycle_ = 0;
    std::uint64_t instrRetired_ = 0;
    std::uint64_t instrLimit_ = 0;
    std::uint64_t instrSeq_ = 0;
    std::uint32_t issueCarry_ = 0;
    Cycle pendingStall_ = 0;

    std::deque<Outstanding> window_;
    std::uint32_t outstandingMisses_ = 0;
    Outstanding *lastLoad_ = nullptr;
    Cycle lastLoadDone_ = 0;

    bool havePendingOp_ = false;
    MemOp pendingOp_;

    std::uint64_t sinceFetch_ = 0;
    Addr codeBase_;
    Addr codePos_ = 0;

    std::function<void(CoreId)> onParked_;

    StatSet stats_;
    Counter &statInstrs_;
    Counter &statMemOps_;
    Counter &statCyclesRobStall_;
    Counter &statCyclesDepStall_;
    Counter &statCyclesMshrStall_;
    Counter &statExternalStall_;
};

} // namespace banshee

#endif // BANSHEE_CPU_CORE_MODEL_HH
