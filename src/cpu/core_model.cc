#include "cpu/core_model.hh"

#include <algorithm>

#include "common/log.hh"

namespace banshee {

CoreModel::CoreModel(CoreId id, const CoreParams &params, EventQueue &eq,
                     CacheHierarchy &hierarchy, Tlb &tlb,
                     AccessPattern &pattern, std::uint64_t rngSeed)
    : id_(id), params_(params), eq_(eq), hierarchy_(hierarchy), tlb_(tlb),
      pattern_(pattern), rng_(rngSeed),
      runEvent_([this] {
          if (state_ == State::Running)
              run();
      }),
      codeBase_(codeRegionBase(id, params)),
      stats_("core" + std::to_string(id)),
      statInstrs_(stats_.counter("instructions")),
      statMemOps_(stats_.counter("memOps")),
      statCyclesRobStall_(stats_.counter("robStallCycles")),
      statCyclesDepStall_(stats_.counter("depStallCycles")),
      statCyclesMshrStall_(stats_.counter("mshrStallCycles")),
      statExternalStall_(stats_.counter("externalStallCycles"))
{
}

void
CoreModel::start()
{
    sim_assert(state_ == State::Idle || state_ == State::Parked,
               "start() on a busy core");
    state_ = State::Running;
    scheduleRun(curCycle_);
}

void
CoreModel::scheduleRun(Cycle at)
{
    if (runEvent_.armed())
        return;
    eq_.schedule(runEvent_, std::max(at, eq_.now()));
}

void
CoreModel::drainWindow()
{
    while (!window_.empty() && window_.front().done &&
           window_.front().doneCycle <= curCycle_) {
        if (lastLoad_ == &window_.front()) {
            lastLoadDone_ = window_.front().doneCycle;
            lastLoad_ = nullptr;
        }
        window_.pop_front();
    }
}

void
CoreModel::missDone(Outstanding *entry, Cycle when)
{
    entry->done = true;
    entry->doneCycle = when;
    sim_assert(outstandingMisses_ > 0, "miss completion underflow");
    --outstandingMisses_;

    switch (state_) {
      case State::BlockedRob:
        if (!window_.empty() && entry == &window_.front()) {
            state_ = State::Running;
            statCyclesRobStall_ += when > curCycle_ ? when - curCycle_ : 0;
            curCycle_ = std::max(curCycle_, when);
            scheduleRun(curCycle_);
        }
        break;
      case State::BlockedDep:
        if (entry == lastLoad_) {
            state_ = State::Running;
            statCyclesDepStall_ += when > curCycle_ ? when - curCycle_ : 0;
            curCycle_ = std::max(curCycle_, when);
            scheduleRun(curCycle_);
        }
        break;
      case State::BlockedMshr:
        state_ = State::Running;
        statCyclesMshrStall_ += when > curCycle_ ? when - curCycle_ : 0;
        curCycle_ = std::max(curCycle_, when);
        scheduleRun(curCycle_);
        break;
      default:
        break;
    }
}

void
CoreModel::postedDone(Cycle when)
{
    sim_assert(outstandingMisses_ > 0, "posted completion underflow");
    --outstandingMisses_;
    if (state_ == State::BlockedMshr) {
        state_ = State::Running;
        statCyclesMshrStall_ += when > curCycle_ ? when - curCycle_ : 0;
        curCycle_ = std::max(curCycle_, when);
        scheduleRun(curCycle_);
    }
}

void
CoreModel::park()
{
    state_ = State::Parked;
    if (onParked_)
        onParked_(id_);
}

void
CoreModel::run()
{
    std::uint32_t budget = params_.quantumOps;

    while (true) {
        if (instrRetired_ >= instrLimit_) {
            park();
            return;
        }
        if (budget-- == 0 || curCycle_ > eq_.now() + params_.skewLimit) {
            // Yield so the event clock (and other cores) catch up.
            scheduleRun(curCycle_);
            return;
        }
        if (pendingStall_ > 0) {
            curCycle_ += pendingStall_;
            pendingStall_ = 0;
        }

        if (!havePendingOp_) {
            pendingOp_ = pattern_.next(rng_);
            havePendingOp_ = true;
        }
        const MemOp &op = pendingOp_;

        // Retire the non-memory gap at the issue width.
        issueCarry_ += op.nonMemBefore + 1; // +1 for the memory op itself
        curCycle_ += issueCarry_ / params_.issueWidth;
        issueCarry_ %= params_.issueWidth;

        drainWindow();

        // Instruction fetch: one L1I probe per fetch group.
        sinceFetch_ += op.nonMemBefore + 1;
        if (sinceFetch_ >= params_.fetchGroup) {
            sinceFetch_ = 0;
            const Addr faddr = codeBase_ + codePos_;
            codePos_ = (codePos_ + kLineBytes) % params_.codeBytes;
            auto fres = hierarchy_.fetch(
                id_, faddr, MappingInfo{},
                [this](Cycle when) { postedDone(when); });
            if (fres.pending)
                ++outstandingMisses_;
        }

        // Reorder-window constraint: the new op must be within robSize
        // instructions of the oldest incomplete one.
        while (!window_.empty() &&
               instrSeq_ - window_.front().seq >= params_.robSize) {
            Outstanding &front = window_.front();
            if (!front.done) {
                state_ = State::BlockedRob;
                return;
            }
            curCycle_ = std::max(curCycle_, front.doneCycle);
            if (lastLoad_ == &front) {
                lastLoadDone_ = front.doneCycle;
                lastLoad_ = nullptr;
            }
            window_.pop_front();
        }

        // Dependence: pointer-chasing loads wait for the previous load.
        if (op.dependsOnPrev) {
            if (lastLoad_ && !lastLoad_->done) {
                state_ = State::BlockedDep;
                return;
            }
            const Cycle ready = lastLoad_ ? lastLoad_->doneCycle
                                          : lastLoadDone_;
            curCycle_ = std::max(curCycle_, ready);
        }

        // MSHR budget: block before issuing a new memory op when full.
        if (outstandingMisses_ >= params_.mshrs) {
            state_ = State::BlockedMshr;
            return;
        }

        // Address translation (adds page-walk latency on a TLB miss).
        const Tlb::LookupResult tr = tlb_.lookup(pageOf(op.addr));
        curCycle_ += tr.latency;

        ++statMemOps_;
        if (op.isWrite) {
            // Stores are posted: they occupy an MSHR while below-L1 but
            // never block retirement.
            auto res = hierarchy_.access(
                id_, op.addr, true, tr.info,
                [this](Cycle when) { postedDone(when); });
            if (res.pending)
                ++outstandingMisses_;
        } else {
            window_.push_back(Outstanding{instrSeq_, 0, false, true});
            Outstanding *entry = &window_.back();
            auto res = hierarchy_.access(
                id_, op.addr, false, tr.info,
                [this, entry](Cycle when) { missDone(entry, when); });
            if (res.pending) {
                ++outstandingMisses_;
                lastLoad_ = entry;
            } else {
                entry->done = true;
                entry->doneCycle = curCycle_ + res.latency;
                lastLoad_ = entry;
            }
        }

        instrRetired_ += op.nonMemBefore + 1;
        statInstrs_ += op.nonMemBefore + 1;
        ++instrSeq_;
        havePendingOp_ = false;
    }
}

} // namespace banshee
