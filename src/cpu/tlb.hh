/**
 * @file
 * Per-core TLB holding Banshee's mapping extension bits.
 *
 * Entries are refilled from the *committed* PTE view, so between a
 * hardware remap and the next batch PTE update the TLB serves stale
 * mapping bits — by design. Shootdowns (flushAll) restore coherence.
 */

#ifndef BANSHEE_CPU_TLB_HH
#define BANSHEE_CPU_TLB_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/request.hh"
#include "os/page_table.hh"

namespace banshee {

struct TlbParams
{
    std::uint32_t entries = 1024;
    std::uint32_t ways = 8;
    Cycle missLatency = 100; ///< page-walk cost in cycles
};

class Tlb
{
  public:
    Tlb(const TlbParams &params, const PageTableManager &pageTable,
        std::string name);

    struct LookupResult
    {
        MappingInfo info;
        Cycle latency = 0; ///< 0 on hit, missLatency on refill
    };

    /** Translate @p page, refilling from committed PTEs on a miss. */
    LookupResult lookup(PageNum page);

    /** TLB shootdown: drop every entry. */
    void flushAll();

    std::uint64_t hits() const { return statHits_.value(); }
    std::uint64_t misses() const { return statMisses_.value(); }
    std::uint64_t shootdowns() const { return statShootdowns_.value(); }

    StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        PageNum page = 0;
        MappingInfo info;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    TlbParams params_;
    const PageTableManager &pageTable_;
    std::uint32_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t stampCounter_ = 1;

    StatSet stats_;
    Counter &statHits_;
    Counter &statMisses_;
    Counter &statShootdowns_;
};

} // namespace banshee

#endif // BANSHEE_CPU_TLB_HH
