#include "cpu/tlb.hh"

#include "common/log.hh"

namespace banshee {

Tlb::Tlb(const TlbParams &params, const PageTableManager &pageTable,
         std::string name)
    : params_(params), pageTable_(pageTable), stats_(std::move(name)),
      statHits_(stats_.counter("hits")),
      statMisses_(stats_.counter("misses")),
      statShootdowns_(stats_.counter("shootdowns"))
{
    sim_assert(params.entries % params.ways == 0,
               "TLB entries not divisible by ways");
    numSets_ = params.entries / params.ways;
    sim_assert(isPow2(numSets_), "TLB sets must be a power of two");
    entries_.assign(params.entries, Entry{});
}

Tlb::LookupResult
Tlb::lookup(PageNum page)
{
    Entry *set = &entries_[static_cast<std::uint64_t>(page & (numSets_ - 1)) *
                           params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (set[w].valid && set[w].page == page) {
            set[w].stamp = stampCounter_++;
            ++statHits_;
            return LookupResult{set[w].info, 0};
        }
    }

    // Miss: page walk reads the committed PTE.
    ++statMisses_;
    const PageMapping m = pageTable_.committedMapping(page);
    MappingInfo info;
    info.valid = true;
    info.cached = m.cached;
    info.way = m.way;
    info.version = pageTable_.committedVersion(page);

    Entry *victim = &set[0];
    for (std::uint32_t w = 1; w < params_.ways; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].stamp < victim->stamp)
            victim = &set[w];
    }
    victim->page = page;
    victim->info = info;
    victim->stamp = stampCounter_++;
    victim->valid = true;

    return LookupResult{info, params_.missLatency};
}

void
Tlb::flushAll()
{
    ++statShootdowns_;
    for (auto &e : entries_)
        e.valid = false;
}

} // namespace banshee
