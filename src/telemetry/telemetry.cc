#include "telemetry/telemetry.hh"

#include <cstdio>

#include "common/log.hh"

namespace banshee {

Telemetry::Telemetry(EventQueue &eq, const TelemetryConfig &config)
    : eq_(eq), config_(config),
      runLabel_(config.runLabel.empty() ? "run" : config.runLabel)
{
    sim_assert(config.enabled, "Telemetry built while disabled");
    // An empty path keeps the in-memory side (histograms, timers,
    // summaries()) without a JSONL sink — benches that only want
    // end-of-run percentiles use this to skip the file.
    const std::string resolved = resolveTracePath(
        config.path, config.runLabel, ".jsonl", /*perRun=*/false);
    if (!resolved.empty())
        sink_ = TraceSink::shared(resolved);
}

Histogram &
Telemetry::histogram(const std::string &name)
{
    for (std::size_t i = 0; i < ownedNames_.size(); ++i) {
        if (ownedNames_[i] == name)
            return *owned_[i];
    }
    owned_.push_back(std::make_unique<Histogram>());
    ownedNames_.push_back(name);
    registry_.addHistogram(name, *owned_.back());
    return *owned_.back();
}

ChannelTelemetry &
Telemetry::channelTelemetry(const std::string &name)
{
    channels_.push_back(std::make_unique<ChannelTelemetry>());
    ChannelTelemetry &ct = *channels_.back();
    registry_.addHistogram(name + ".queueLat", ct.queueLatency);
    registry_.addHistogram(name + ".readOcc", ct.readOccupancy);
    registry_.addHistogram(name + ".writeOcc", ct.writeOccupancy);
    registry_.addHistogram(name + ".qosDeferAge", ct.qosDeferAge);
    return ct;
}

void
Telemetry::nameTenantQueueLatency(std::size_t bucket,
                                  const std::string &metricName)
{
    sim_assert(bucket < kTenantBuckets, "bad tenant bucket %zu", bucket);
    registry_.addHistogram(metricName, tenantQlat_[bucket]);
}

void
Telemetry::event(const char *type,
                 std::initializer_list<TraceField> fields)
{
    if (sink_)
        sink_->event(runLabel_, eq_.now(), type, fields);
}

void
Telemetry::resetHistograms()
{
    for (auto &h : owned_)
        h->reset();
    for (auto &ct : channels_) {
        ct->queueLatency.reset();
        ct->readOccupancy.reset();
        ct->writeOccupancy.reset();
        ct->qosDeferAge.reset();
    }
    for (Histogram &h : tenantQlat_)
        h.reset();
}

void
Telemetry::startEpochs()
{
    registry_.start(eq_, config_.epochCycles,
                    [this](const MetricRegistry::Sample &s) {
                        if (sink_)
                            sink_->writeLine(epochJson(s));
                    });
    // Baseline sample at the measure boundary: epoch 0 carries the
    // post-reset cumulative state, so every later epoch (including the
    // first timed one) has a predecessor to delta against.
    registry_.sample(eq_.now());
}

void
Telemetry::finishEpochs()
{
    registry_.stop();
    // One closing sample so the last (partial) epoch's activity is
    // still visible in the timeline (traced via the onSample hook).
    registry_.sample(eq_.now());
}

void
Telemetry::emitProfile()
{
    if (!sink_)
        return;
    std::string json = "{\"run\": \"" + jsonEscape(runLabel_) +
                       "\", \"cycle\": " + std::to_string(eq_.now()) +
                       ", \"event\": \"profile\", \"timers\": {";
    bool first = true;
    for (const auto &kv : registry_.timers()) {
        if (!first)
            json += ", ";
        first = false;
        json += "\"" + jsonEscape(kv.first) +
                "\": {\"ns\": " + std::to_string(kv.second.ns) +
                ", \"calls\": " + std::to_string(kv.second.calls) + "}";
    }
    json += "}}";
    sink_->writeLine(json);
}

std::vector<HistogramSummary>
Telemetry::summaries() const
{
    std::vector<HistogramSummary> out;
    out.reserve(registry_.numHistograms());
    for (std::size_t i = 0; i < registry_.numHistograms(); ++i) {
        const Histogram &h = registry_.histogramAt(i);
        if (h.count() == 0)
            continue; // dormant hooks (e.g. unused tenant buckets)
        out.push_back(h.summary(registry_.histNameAt(i)));
    }
    return out;
}

std::string
Telemetry::epochJson(const MetricRegistry::Sample &s) const
{
    std::string json = "{\"run\": \"" + jsonEscape(runLabel_) +
                       "\", \"cycle\": " + std::to_string(s.cycle) +
                       ", \"event\": \"epoch\", \"epoch\": " +
                       std::to_string(s.epoch) + ", \"metrics\": {";
    const auto &names = registry_.metricNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i > 0)
            json += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6f", s.values[i]);
        json += "\"" + jsonEscape(names[i]) + "\": " + buf;
    }
    json += "}, \"hists\": {";
    const auto &hnames = registry_.histNames();
    for (std::size_t i = 0; i < hnames.size(); ++i) {
        if (i > 0)
            json += ", ";
        const MetricRegistry::HistSnapshot &h = s.hists[i];
        json += "\"" + jsonEscape(hnames[i]) +
                "\": {\"count\": " + std::to_string(h.count) +
                ", \"sum\": " + std::to_string(h.sum) +
                ", \"max\": " + std::to_string(h.max) + ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b > 0)
                json += ", ";
            json += std::to_string(h.buckets[b]);
        }
        json += "]}";
    }
    json += "}}";
    return json;
}

} // namespace banshee
