/**
 * @file
 * The per-run telemetry facade: one MetricRegistry (epoch-sampled
 * time series + phase timers), the owned histograms hot paths record
 * into, and the shared TraceSink the run's structured events go to.
 *
 * A System builds one Telemetry instance when its TelemetryConfig is
 * enabled and wires the hooks (DRAM channels, migration engines, the
 * resize controller); everything stays null/dormant otherwise. Epoch
 * samples are serialized into the trace as "epoch" events, so the
 * JSONL file carries the full timeline: metrics, histogram states,
 * and the decision events interleaved between them.
 */

#ifndef BANSHEE_TELEMETRY_TELEMETRY_HH
#define BANSHEE_TELEMETRY_TELEMETRY_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "telemetry/dram_hooks.hh"
#include "telemetry/histogram.hh"
#include "telemetry/metric_registry.hh"
#include "telemetry/telemetry_config.hh"
#include "telemetry/trace_sink.hh"

namespace banshee {

class Telemetry
{
  public:
    Telemetry(EventQueue &eq, const TelemetryConfig &config);

    const std::string &runLabel() const { return runLabel_; }

    MetricRegistry &registry() { return registry_; }

    /** The JSONL sink, or null when the config path is empty (the
     *  in-memory-only mode: histograms and summaries() still work). */
    TraceSink *sink() { return sink_.get(); }

    /** Create (or fetch) an owned histogram registered as @p name. */
    Histogram &histogram(const std::string &name);

    /** Create the telemetry block for one DRAM channel; its
     *  histograms are registered under "<name>.*". */
    ChannelTelemetry &channelTelemetry(const std::string &name);

    /** Device-level per-tenant sojourn array (tenantBucket index). */
    Histogram *tenantQueueLatency() { return tenantQlat_.data(); }

    /** Register tenant bucket @p bucket's sojourn histogram under a
     *  readable name ("tenant.<name>.queueLat"). */
    void nameTenantQueueLatency(std::size_t bucket,
                                const std::string &metricName);

    /** Named phase timer (null-safe handle for ScopedTimer). */
    PhaseTimer *timer(const std::string &name)
    {
        return &registry_.timer(name);
    }

    /** Emit one structured event stamped with run label + cycle. */
    void event(const char *type,
               std::initializer_list<TraceField> fields = {});

    /** Warmup boundary: clear histograms so measured-phase
     *  distributions start clean (timers are host-profile data and
     *  keep accumulating). */
    void resetHistograms();

    /** Begin epoch sampling; each sample is also traced. */
    void startEpochs();

    /** Final sample + stop the clock (end of the measured phase). */
    void finishEpochs();

    /** Emit the "profile" event holding the phase-timer totals. */
    void emitProfile();

    /** End-of-run digests of every registered histogram. */
    std::vector<HistogramSummary> summaries() const;

  private:
    std::string epochJson(const MetricRegistry::Sample &s) const;

    EventQueue &eq_;
    TelemetryConfig config_;
    std::string runLabel_;
    std::shared_ptr<TraceSink> sink_;
    MetricRegistry registry_;

    std::vector<std::unique_ptr<Histogram>> owned_;
    std::vector<std::string> ownedNames_;
    std::vector<std::unique_ptr<ChannelTelemetry>> channels_;
    std::array<Histogram, kTenantBuckets> tenantQlat_{};
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_TELEMETRY_HH
