/**
 * @file
 * Causal page/request tracing: sampled lifecycle spans exported as
 * Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
 *
 * Epoch telemetry (telemetry.hh) shows aggregates; the PageJournal
 * answers *why a specific page behaved that way*: a deterministic
 * hash of the page number (seeded by the run seed) selects 1/2^shift
 * of all pages, and every layer a sampled page crosses — demand
 * fetch, tag-buffer lookup, FBR admit/reject with counter values,
 * replacement fill, channel queueing vs bus service, migration
 * drain, resize remap, tenant quota reassignment, eviction + dirty
 * writeback — emits a span or instant on the page's own track.
 *
 * Sampling is a pure function of (page, seed, shift): no RNG state is
 * drawn, so tracing never perturbs the simulation, the sampled set is
 * identical across sweep thread counts, and spans-off runs are
 * byte-identical (every hook is a null-pointer check, the same
 * discipline the telemetry subsystem uses).
 *
 * Track layout (Chrome trace-event pid/tid conventions):
 *   pid 1 "pages"    — one tid per sampled page: "resident" B/E spans
 *                      bracket cache residency; instants mark access
 *                      outcomes, FBR decisions and writebacks; demand
 *                      fetches are async b/e pairs (they overlap).
 *   pid 2 "channels" — one tid per DRAM channel: async "queue" +
 *                      "service" slices per request touching a
 *                      sampled page (arrival->busStart->complete).
 *   pid 3 "control"  — resize/reassign transitions (B/E), migration
 *                      drain batches (X), per-tenant quota instants.
 *
 * scripts/spans_to_perfetto.py validates and summarizes the output.
 */

#ifndef BANSHEE_TELEMETRY_SPAN_TRACE_HH
#define BANSHEE_TELEMETRY_SPAN_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/traffic.hh"
#include "telemetry/trace_sink.hh"

namespace banshee {

/** Span tracing knobs (SystemConfig::spans, off by default). */
struct SpanTraceConfig
{
    bool enabled = false;

    /** Output path: a directory (trailing '/' or an existing dir)
     *  writes one `<label>.trace.json` per run; a file path gets the
     *  run label spliced in before its extension when the label is
     *  set. Each System owns its file exclusively — no shared sink. */
    std::string path;

    /** Sample 1/2^sampleShift of all pages (0 = every page). */
    std::uint32_t sampleShift = 6;

    /** Experiment label for per-run file routing (stamped by the
     *  sweep runner when left empty). */
    std::string runLabel;
};

/**
 * The per-System journal of sampled page lifecycles. Built once at
 * System assembly; every hook holds a raw pointer that is null when
 * tracing is off. One journal owns one output file (per-run routing
 * guarantees exclusivity), so emission needs no locking.
 */
class PageJournal
{
  public:
    PageJournal(const SpanTraceConfig &config, std::uint32_t pageBits,
                std::uint64_t seed);
    ~PageJournal();

    PageJournal(const PageJournal &) = delete;
    PageJournal &operator=(const PageJournal &) = delete;

    /**
     * The sampling predicate: a splitmix64-style mix of
     * (page, seed) accepts when the low @p shift bits are zero.
     * Pure — identical across threads, runs and call sites.
     */
    static bool sampled(PageNum page, std::uint64_t seed,
                        std::uint32_t shift);

    bool
    sampledPage(PageNum page) const
    {
        return sampled(page, seed_, config_.sampleShift);
    }

    bool
    sampledAddr(Addr addr) const
    {
        return sampledPage(addr >> pageBits_);
    }

    /** Scheme-granularity page size used for sampling (12 or 21). */
    std::uint32_t pageBits() const { return pageBits_; }

    const std::string &path() const { return path_; }

    /** One-time run metadata instant on the control "run" track. */
    void runInfo(std::initializer_list<TraceField> args);

    /** Tenant id -> name mapping for the summary script. */
    void tenantInfo(std::uint32_t id, const std::string &name,
                    double weight);

    // ----------------------------------------------------- page tracks

    /** Instant on @p page's lifecycle track (access outcome, FBR
     *  decision, writeback, blocked replacement...). */
    void pageInstant(PageNum page, const char *name, Cycle now,
                     std::initializer_list<TraceField> args = {});

    /** The page entered the DRAM cache (replacement admission). */
    void residentBegin(PageNum page, Cycle now,
                       std::initializer_list<TraceField> args);

    /** The page left the cache; @p cause is "replaced"/"migration". */
    void residentEnd(PageNum page, Cycle now, const char *cause,
                     bool dirty);

    /** One demand fetch of a line in @p page, issue to completion.
     *  Async (fetches to one page overlap across cores). */
    void fetchSpan(PageNum page, Cycle issued, Cycle complete);

    // -------------------------------------------------- channel tracks

    /** Register a channel track; returns its tid on the channel pid. */
    std::uint32_t addChannelTrack(const std::string &name);

    /** One DRAM request touching a sampled page: queue slice
     *  [arrival, busStart) then service slice [busStart, complete).
     *  @p qos optionally tags how the QoS scheduler treated the
     *  request ("aged"/"deferred"); null emits no tag. */
    void channelRequest(std::uint32_t track, PageNum page, Cycle arrival,
                        Cycle busStart, Cycle complete, bool isWrite,
                        TrafficCat cat, TenantId tenant,
                        const char *qos = nullptr);

    // -------------------------------------------------- control tracks

    /** Register a control-plane track; returns its tid. */
    std::uint32_t addControlTrack(const std::string &name);

    /** Open a span on a control track (strictly nested per track). */
    void controlBegin(std::uint32_t track, const char *name, Cycle now,
                      std::initializer_list<TraceField> args = {});

    /** Close the innermost open span on @p track. */
    void controlEnd(std::uint32_t track, Cycle now,
                    std::initializer_list<TraceField> args = {});

    /** Complete (X) event on a control track. */
    void controlComplete(std::uint32_t track, const char *name,
                         Cycle start, Cycle end,
                         std::initializer_list<TraceField> args = {});

    void controlInstant(std::uint32_t track, const char *name, Cycle now,
                        std::initializer_list<TraceField> args = {});

    /**
     * Close every still-open span (pages resident at run end, a
     * transition in flight) so each begin has an end, and flush the
     * JSON array footer. Idempotent; the destructor calls it with the
     * last cycle seen if the System did not.
     */
    void finish(Cycle now);

  private:
    struct PageState
    {
        std::uint64_t tid = 0;
        std::string asyncCat; ///< per-page category for fetch pairs
        bool resident = false;
    };

    PageState &ensurePage(PageNum page);

    /** `{"name": .., "ph": .., "pid": .., "tid": .., "ts": ..` */
    std::string head(const char *name, const char *ph, std::uint32_t pid,
                     std::uint64_t tid, Cycle ts) const;

    /** Append `, "args": {..}}` (or just `}`) and write the line. */
    void emit(std::string line, std::initializer_list<TraceField> args);

    void emitMeta(std::uint32_t pid, std::uint64_t tid,
                  const char *metaName, const std::string &value);

    SpanTraceConfig config_;
    std::uint32_t pageBits_;
    std::uint64_t seed_;
    std::string path_;
    ChromeTraceWriter writer_;

    std::map<PageNum, PageState> pages_;
    std::uint64_t nextPageTid_ = 0;
    std::uint64_t nextAsyncId_ = 0;
    std::vector<std::string> channelTracks_;
    std::vector<std::string> controlTracks_;
    /** Open control spans per track, for finish() and controlEnd(). */
    std::vector<std::vector<std::string>> controlOpen_;
    Cycle lastCycle_ = 0;
    bool finished_ = false;
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_SPAN_TRACE_HH
