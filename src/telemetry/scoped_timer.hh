/**
 * @file
 * Wall-clock phase timers.
 *
 * A PhaseTimer accumulates host nanoseconds and call counts for one
 * named phase of the simulator (event-queue loop, DRAM scheduler,
 * scheme access path). ScopedTimer is the RAII recorder; it takes a
 * pointer that is null while telemetry is disabled, so instrumented
 * hot paths pay only a branch when profiling is off. The resulting
 * profile lands in the telemetry trace next to the simulated-time
 * metrics (see ROADMAP: parallel simulation engine, "profile first").
 */

#ifndef BANSHEE_TELEMETRY_SCOPED_TIMER_HH
#define BANSHEE_TELEMETRY_SCOPED_TIMER_HH

#include <chrono>
#include <cstdint>

namespace banshee {

struct PhaseTimer
{
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;

    void
    add(std::uint64_t deltaNs)
    {
        ns += deltaNs;
        ++calls;
    }

    void
    reset()
    {
        ns = 0;
        calls = 0;
    }
};

class ScopedTimer
{
  public:
    explicit ScopedTimer(PhaseTimer *timer) : timer_(timer)
    {
        if (timer_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedTimer()
    {
        if (timer_) {
            const auto delta =
                std::chrono::steady_clock::now() - start_;
            timer_->add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    delta)
                    .count()));
        }
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    PhaseTimer *timer_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_SCOPED_TIMER_HH
