/**
 * @file
 * Configuration of the epoch-resolved telemetry subsystem.
 *
 * Disabled by default: with enabled == false the System builds no
 * registry, schedules no sampling events and attaches no histogram
 * hooks, so the simulated machine (and every bench's --json output)
 * is bit-identical to a build without telemetry.
 */

#ifndef BANSHEE_TELEMETRY_TELEMETRY_CONFIG_HH
#define BANSHEE_TELEMETRY_TELEMETRY_CONFIG_HH

#include <string>

#include "common/types.hh"
#include "common/units.hh"

namespace banshee {

struct TelemetryConfig
{
    bool enabled = false;

    /** JSONL trace output path. Several concurrent runs may share one
     *  path (bench sweeps): they append through one shared sink and
     *  every event line carries its run's label. */
    std::string path;

    /**
     * Sampling epoch in core cycles. Defaults to the resize
     * subsystem's policy epoch so metric samples line up with resize /
     * power-cap / QoS decisions in the trace.
     */
    Cycle epochCycles = usToCycles(20.0);

    /** Label identifying this run in a shared trace (the experiment
     *  label; stamped by the runner when left empty). */
    std::string runLabel;
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_TELEMETRY_CONFIG_HH
