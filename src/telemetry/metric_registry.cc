#include "telemetry/metric_registry.hh"

namespace banshee {

void
MetricRegistry::start(EventQueue &eq, Cycle epochCycles,
                      std::function<void(const Sample &)> onSample)
{
    sim_assert(epochCycles > 0, "telemetry epoch must be > 0 cycles");
    onSample_ = std::move(onSample);
    running_ = true;
    eq_ = &eq;
    epochCycles_ = epochCycles;
    eq.scheduleAfter(tickEvent_, epochCycles);
}

void
MetricRegistry::tick()
{
    if (!running_)
        return;
    sample(eq_->now());
    eq_->scheduleAfter(tickEvent_, epochCycles_);
}

const MetricRegistry::Sample &
MetricRegistry::sample(Cycle now)
{
    Sample s;
    s.cycle = now;
    s.epoch = nextEpoch_++;
    s.values.reserve(gauges_.size());
    for (const GaugeFn &g : gauges_)
        s.values.push_back(g());
    s.hists.reserve(hists_.size());
    for (const Histogram *h : hists_) {
        HistSnapshot snap;
        snap.count = h->count();
        snap.sum = h->sum();
        snap.max = h->max();
        snap.buckets = h->bucketCounts();
        s.hists.push_back(std::move(snap));
    }
    series_.push_back(std::move(s));
    if (onSample_)
        onSample_(series_.back());
    return series_.back();
}

} // namespace banshee
