/**
 * @file
 * Epoch-sampled metric time series, layered on the StatSet registry.
 *
 * Components already expose their statistics as StatSet counters and
 * accessor methods; a single end-of-run dump cannot show the
 * time-domain phenomena this repository now studies (resize drains,
 * power-cap hysteresis, per-tenant queueing under co-location). The
 * MetricRegistry closes that gap: gauges (arbitrary double-valued
 * callbacks), existing Counters / whole StatSets, and Histograms are
 * registered once at system build, then snapshotted on an epoch clock
 * into an in-memory time series. Values are cumulative-as-of-sample;
 * per-epoch rates are deltas between adjacent samples (computed by
 * consumers, e.g. scripts/telemetry_summary.py).
 *
 * The registry is dormant until start(): nothing is scheduled on the
 * event queue and no callback runs, so a disabled-telemetry system
 * does no sampling work at all.
 */

#ifndef BANSHEE_TELEMETRY_METRIC_REGISTRY_HH
#define BANSHEE_TELEMETRY_METRIC_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "telemetry/histogram.hh"
#include "telemetry/scoped_timer.hh"

namespace banshee {

class MetricRegistry
{
  public:
    using GaugeFn = std::function<double()>;

    /** Cumulative bucket state of one histogram at one sample. */
    struct HistSnapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t max = 0;
        std::vector<std::uint64_t> buckets;
    };

    /** One epoch snapshot; values/hists parallel the name vectors. */
    struct Sample
    {
        Cycle cycle = 0;
        std::uint64_t epoch = 0;
        std::vector<double> values;
        std::vector<HistSnapshot> hists;
    };

    /** Register a gauge: evaluated at every sample. */
    void
    addGauge(std::string name, GaugeFn fn)
    {
        metricNames_.push_back(std::move(name));
        gauges_.push_back(std::move(fn));
    }

    /** Register one existing Counter (reference outlives registry). */
    void
    addCounter(std::string name, const Counter &c)
    {
        addGauge(std::move(name), [&c] {
            return static_cast<double>(c.value());
        });
    }

    /** Register every counter of @p set under @p prefix. Counters
     *  created in the set after this call are not picked up. */
    void
    addStatSet(const StatSet &set, const std::string &prefix)
    {
        for (const auto &kv : set.all())
            addCounter(prefix + kv.first, *kv.second);
    }

    /** Register a histogram (reference outlives registry). */
    void
    addHistogram(std::string name, const Histogram &h)
    {
        histNames_.push_back(std::move(name));
        hists_.push_back(&h);
    }

    /** Named wall-clock phase timer (created on first use). */
    PhaseTimer &timer(const std::string &name) { return timers_[name]; }

    const std::map<std::string, PhaseTimer> &timers() const
    {
        return timers_;
    }

    /**
     * Start the epoch clock: one sample every @p epochCycles on
     * @p eq, until stop(). @p onSample (optional) observes each
     * sample as it is taken (the trace sink hook).
     */
    void start(EventQueue &eq, Cycle epochCycles,
               std::function<void(const Sample &)> onSample = nullptr);

    /** Stop sampling; the pending clock event is cancelled. */
    void
    stop()
    {
        running_ = false;
        tickEvent_.cancel();
    }

    /** Take one sample now (the epoch clock calls this). */
    const Sample &sample(Cycle now);

    const std::vector<std::string> &metricNames() const
    {
        return metricNames_;
    }
    const std::vector<std::string> &histNames() const { return histNames_; }
    const std::vector<Sample> &series() const { return series_; }

    std::size_t numHistograms() const { return hists_.size(); }
    const Histogram &histogramAt(std::size_t i) const { return *hists_[i]; }
    const std::string &histNameAt(std::size_t i) const
    {
        return histNames_[i];
    }

  private:
    void tick();

    std::vector<std::string> metricNames_;
    std::vector<GaugeFn> gauges_;
    std::vector<std::string> histNames_;
    std::vector<const Histogram *> hists_;
    std::map<std::string, PhaseTimer> timers_;

    std::vector<Sample> series_;
    std::uint64_t nextEpoch_ = 0;
    bool running_ = false;
    EventQueue *eq_ = nullptr;   ///< set by start()
    Cycle epochCycles_ = 0;
    /** The sampling clock; self-rearms in tick() while running. */
    TickEvent tickEvent_{[this] { tick(); }};
    std::function<void(const Sample &)> onSample_;
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_METRIC_REGISTRY_HH
