#include "telemetry/trace_sink.hh"

#include <map>

#include "common/log.hh"

namespace banshee {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

namespace {

std::string
quoted(const char *key)
{
    return "\"" + jsonEscape(key) + "\": ";
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

TraceField::TraceField(const char *key, std::uint64_t v)
    : json_(quoted(key) + std::to_string(v))
{
}

TraceField::TraceField(const char *key, std::uint32_t v)
    : json_(quoted(key) + std::to_string(v))
{
}

TraceField::TraceField(const char *key, int v)
    : json_(quoted(key) + std::to_string(v))
{
}

TraceField::TraceField(const char *key, double v)
    : json_(quoted(key) + fmtDouble(v))
{
}

TraceField::TraceField(const char *key, const char *v)
    : json_(quoted(key) + "\"" + jsonEscape(v) + "\"")
{
}

TraceField::TraceField(const char *key, const std::string &v)
    : json_(quoted(key) + "\"" + jsonEscape(v) + "\"")
{
}

std::shared_ptr<TraceSink>
TraceSink::shared(const std::string &path)
{
    // Sinks live for the rest of the process so a path reopened by a
    // later experiment batch appends instead of truncating the
    // earlier batch's events.
    static std::mutex mapMutex;
    static std::map<std::string, std::shared_ptr<TraceSink>> sinks;
    std::lock_guard<std::mutex> lock(mapMutex);
    auto it = sinks.find(path);
    if (it == sinks.end())
        it = sinks.emplace(path, std::make_shared<TraceSink>(path)).first;
    return it->second;
}

TraceSink::TraceSink(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
    if (file_ == nullptr)
        fatal("telemetry: cannot open '%s' for writing", path.c_str());
}

TraceSink::~TraceSink()
{
    if (file_)
        std::fclose(file_);
}

void
TraceSink::event(const std::string &run, Cycle cycle, const char *type,
                 std::initializer_list<TraceField> fields)
{
    std::string line = "{\"run\": \"" + jsonEscape(run) +
                       "\", \"cycle\": " + std::to_string(cycle) +
                       ", \"event\": \"" + jsonEscape(type) + "\"";
    for (const TraceField &f : fields) {
        line += ", ";
        line += f.json();
    }
    line += "}";
    writeLine(line);
}

void
TraceSink::writeLine(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fprintf(file_, "%s\n", json.c_str()) < 0) {
        warn_once("telemetry: write to '%s' failed; further failures "
                  "are silent",
                  path_.c_str());
        return;
    }
    // Flush per line: concurrent runs interleave whole lines and a
    // crashed run still leaves a parseable trace.
    std::fflush(file_);
}

} // namespace banshee
