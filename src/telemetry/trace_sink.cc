#include "telemetry/trace_sink.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <map>

#include "common/log.hh"

namespace banshee {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

namespace {

std::string
quoted(const char *key)
{
    return "\"" + jsonEscape(key) + "\": ";
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

TraceField::TraceField(const char *key, std::uint64_t v)
    : json_(quoted(key) + std::to_string(v))
{
}

TraceField::TraceField(const char *key, std::uint32_t v)
    : json_(quoted(key) + std::to_string(v))
{
}

TraceField::TraceField(const char *key, int v)
    : json_(quoted(key) + std::to_string(v))
{
}

TraceField::TraceField(const char *key, double v)
    : json_(quoted(key) + fmtDouble(v))
{
}

TraceField::TraceField(const char *key, const char *v)
    : json_(quoted(key) + "\"" + jsonEscape(v) + "\"")
{
}

TraceField::TraceField(const char *key, const std::string &v)
    : json_(quoted(key) + "\"" + jsonEscape(v) + "\"")
{
}

std::string
sanitizeRunLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

namespace {

bool
isDirectory(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // namespace

std::string
resolveTracePath(const std::string &path, const std::string &label,
                 const std::string &ext, bool perRun)
{
    if (path.empty())
        return path;
    const std::string name =
        label.empty() ? std::string("run") : sanitizeRunLabel(label);
    if (path.back() == '/' || isDirectory(path)) {
        std::string dir = path;
        while (dir.size() > 1 && dir.back() == '/')
            dir.pop_back();
        if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("trace: cannot create directory '%s'", dir.c_str());
        return dir + "/" + name + ext;
    }
    if (!perRun || label.empty())
        return path;
    // Splice "-<label>" before the file extension (if any) so each
    // experiment of a sweep gets a private file. Prefer the full
    // canonical extension ("x.trace.json" -> "x-<label>.trace.json"),
    // falling back to the last dot for other suffixes.
    if (!ext.empty() && path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
        return path.substr(0, path.size() - ext.size()) + "-" + name +
               ext;
    }
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "-" + name;
    return path.substr(0, dot) + "-" + name + path.substr(dot);
}

std::shared_ptr<TraceSink>
TraceSink::shared(const std::string &path)
{
    // Sinks live for the rest of the process so a path reopened by a
    // later experiment batch appends instead of truncating the
    // earlier batch's events.
    static std::mutex mapMutex;
    static std::map<std::string, std::shared_ptr<TraceSink>> sinks;
    std::lock_guard<std::mutex> lock(mapMutex);
    auto it = sinks.find(path);
    if (it == sinks.end())
        it = sinks.emplace(path, std::make_shared<TraceSink>(path)).first;
    return it->second;
}

TraceSink::TraceSink(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
    if (file_ == nullptr)
        fatal("telemetry: cannot open '%s' for writing", path.c_str());
}

TraceSink::~TraceSink()
{
    if (file_)
        std::fclose(file_);
}

void
TraceSink::event(const std::string &run, Cycle cycle, const char *type,
                 std::initializer_list<TraceField> fields)
{
    std::string line = "{\"run\": \"" + jsonEscape(run) +
                       "\", \"cycle\": " + std::to_string(cycle) +
                       ", \"event\": \"" + jsonEscape(type) + "\"";
    for (const TraceField &f : fields) {
        line += ", ";
        line += f.json();
    }
    line += "}";
    writeLine(line);
}

void
TraceSink::writeLine(const std::string &json)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (std::fprintf(file_, "%s\n", json.c_str()) < 0) {
        warn_once("telemetry: write to '%s' failed; further failures "
                  "are silent",
                  path_.c_str());
        return;
    }
    // Flush per line: concurrent runs interleave whole lines and a
    // crashed run still leaves a parseable trace.
    std::fflush(file_);
}

ChromeTraceWriter::ChromeTraceWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
    if (file_ == nullptr)
        fatal("spans: cannot open '%s' for writing", path.c_str());
    std::fprintf(file_, "[\n");
}

ChromeTraceWriter::~ChromeTraceWriter() { close(); }

void
ChromeTraceWriter::event(const std::string &json)
{
    if (!file_)
        return;
    if (std::fprintf(file_, "%s%s", first_ ? "" : ",\n", json.c_str()) <
        0) {
        warn_once("spans: write to '%s' failed; further failures are "
                  "silent",
                  path_.c_str());
        return;
    }
    first_ = false;
}

void
ChromeTraceWriter::close()
{
    if (!file_)
        return;
    std::fprintf(file_, "\n]\n");
    std::fclose(file_);
    file_ = nullptr;
}

} // namespace banshee
