/**
 * @file
 * Telemetry hooks the DRAM channel records into.
 *
 * dram_model.hh only forward-declares ChannelTelemetry and holds a
 * pointer that stays null while telemetry is disabled, so the DRAM
 * hot path pays one predictable branch per request when profiling is
 * off and the device model does not depend on the telemetry layer.
 */

#ifndef BANSHEE_TELEMETRY_DRAM_HOOKS_HH
#define BANSHEE_TELEMETRY_DRAM_HOOKS_HH

#include "telemetry/histogram.hh"
#include "telemetry/scoped_timer.hh"
#include "tenant/tenant.hh"

namespace banshee {

/** Per-channel distributions, owned by the Telemetry facade. */
struct ChannelTelemetry
{
    /** Request sojourn: arrival to data-on-bus complete, in core
     *  cycles. Bank/bus service is near constant, so the tail of this
     *  distribution is queueing delay — the quantity the tenant bench
     *  showed slice quotas cannot govern. */
    Histogram queueLatency;

    /** Read / write queue depth observed at each enqueue. */
    Histogram readOccupancy;
    Histogram writeOccupancy;

    /** Wait (core cycles) of requests the QoS credit arbitration
     *  bypassed, recorded at each defer. Empty while the scheduler
     *  is off, so summaries omit it. */
    Histogram qosDeferAge;

    /** Device-level per-tenant sojourn histograms, indexed by
     *  tenantBucket(); shared by every channel of the device. Null
     *  when the device carries no tenant-attributed traffic. */
    Histogram *tenantQueueLatency = nullptr;

    /** Host-time profile of the FR-FCFS scheduler (shared). */
    PhaseTimer *kickTimer = nullptr;
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_DRAM_HOOKS_HH
