/**
 * @file
 * Structured simulator-event trace, one JSON object per line.
 *
 * Every line carries the run label, the simulated cycle and an event
 * type, so a single file can hold the interleaved traces of a whole
 * bench sweep (runExperiments runs systems on worker threads; writes
 * are line-atomic under a mutex). Sinks are shared by path: every
 * System whose TelemetryConfig names the same file appends to one
 * process-wide sink, which truncates the file exactly once.
 *
 * scripts/telemetry_summary.py renders and validates the format.
 */

#ifndef BANSHEE_TELEMETRY_TRACE_SINK_HH
#define BANSHEE_TELEMETRY_TRACE_SINK_HH

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.hh"

namespace banshee {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * One key/value pair of a trace event, serialized at construction so
 * emit sites can pass heterogeneous braced lists.
 */
class TraceField
{
  public:
    TraceField(const char *key, std::uint64_t v);
    TraceField(const char *key, std::uint32_t v);
    TraceField(const char *key, int v);
    TraceField(const char *key, double v);
    TraceField(const char *key, const char *v);
    TraceField(const char *key, const std::string &v);

    const std::string &json() const { return json_; }

  private:
    std::string json_; ///< `"key": value`
};

/** Replace every character outside [A-Za-z0-9._-] with '_' so an
 *  experiment label is safe to use as a file name. */
std::string sanitizeRunLabel(const std::string &label);

/**
 * Resolve a trace output path against a run label.
 *
 * - empty @p path -> empty (tracing disabled);
 * - a directory (trailing '/' or an existing directory) is created if
 *   missing and yields `dir/<sanitized-label>.<ext>` ("run" when the
 *   label is empty) — one file per experiment;
 * - otherwise the path is a plain file. When @p perRun is set and the
 *   label is non-empty, "-<sanitized-label>" is spliced in before the
 *   file extension so sweep experiments never share a writer.
 */
std::string resolveTracePath(const std::string &path,
                             const std::string &label,
                             const std::string &ext, bool perRun);

class TraceSink
{
  public:
    /**
     * The shared sink for @p path: the first request opens (and
     * truncates) the file, later requests — e.g. the second
     * runExperiments batch of a bench — keep appending to it.
     */
    static std::shared_ptr<TraceSink> shared(const std::string &path);

    /** Private sink for tests; prefer shared() in the simulator. */
    explicit TraceSink(const std::string &path);
    ~TraceSink();

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Emit one event line: run label + cycle + type + fields. */
    void event(const std::string &run, Cycle cycle, const char *type,
               std::initializer_list<TraceField> fields);

    /** Emit a pre-serialized JSON object (epoch samples). The line
     *  must already include the run/cycle/event envelope. */
    void writeLine(const std::string &json);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_;
    std::mutex mutex_;
};

/**
 * Writer for Chrome trace-event JSON: a single top-level array of
 * event objects, one per line, comma-separated, closed on
 * destruction so the file loads in Perfetto / chrome://tracing.
 *
 * Unlike TraceSink this is NOT shared or locked: each PageJournal
 * owns its file exclusively (per-run path routing), and a sweep's
 * Systems never share one (see sim/runner.hh isolation contract).
 */
class ChromeTraceWriter
{
  public:
    explicit ChromeTraceWriter(const std::string &path);
    ~ChromeTraceWriter();

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** Append one pre-serialized event object (`{...}`, no comma). */
    void event(const std::string &json);

    /** Write the closing `]` now (idempotent; destructor fallback). */
    void close();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_;
    bool first_ = true;
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_TRACE_SINK_HH
