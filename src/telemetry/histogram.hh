/**
 * @file
 * Log2-bucketed histogram statistic.
 *
 * Counters (common/stats.hh) answer "how many / how much total";
 * latency questions need distributions: the QoS story established by
 * the tenant bench is a *tail* effect (one tenant's p95 channel wait
 * inflates while the mean barely moves). A Histogram buckets values
 * by floor(log2) so recording is O(1) with no allocation, the full
 * dynamic range of cycle counts fits in 48 buckets, and percentiles
 * are conservative (bucket upper bound, clamped by the true max).
 *
 * Recording is cheap but not free, so hot-path call sites hold a
 * Histogram pointer that stays null while telemetry is disabled.
 */

#ifndef BANSHEE_TELEMETRY_HISTOGRAM_HH
#define BANSHEE_TELEMETRY_HISTOGRAM_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace banshee {

/** End-of-run digest of one histogram (RunResult / JSON output). */
struct HistogramSummary
{
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t max = 0;
    /** Samples landed in the top bucket: percentiles that resolve
     *  there are the clamp value (observed max), not a bucket bound —
     *  the log2 range ran out, so treat tail quantiles as lower
     *  bounds rather than estimates. */
    bool saturated = false;
};

class Histogram
{
  public:
    /** Bucket 0 holds value 0; bucket i>=1 holds [2^(i-1), 2^i). */
    static constexpr std::uint32_t kBuckets = 48;

    static std::uint32_t
    bucketOf(std::uint64_t v)
    {
        if (v == 0)
            return 0;
        std::uint32_t b = 1;
        while (v >>= 1)
            ++b;
        return std::min(b, kBuckets - 1);
    }

    /** Smallest value a bucket can hold. */
    static std::uint64_t
    bucketLow(std::uint32_t b)
    {
        return b == 0 ? 0 : 1ull << (b - 1);
    }

    /** Largest value a bucket can hold (saturated for the last). */
    static std::uint64_t
    bucketHigh(std::uint32_t b)
    {
        if (b == 0)
            return 0;
        if (b >= kBuckets - 1)
            return ~0ull;
        return (1ull << b) - 1;
    }

    void
    record(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the bucket
     * holding the ceil(q * count)-th sample, clamped by the observed
     * max so percentiles never exceed any recorded value.
     */
    std::uint64_t
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        q = std::min(std::max(q, 0.0), 1.0);
        const std::uint64_t target = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   q * static_cast<double>(count_) + 0.9999999));
        std::uint64_t cum = 0;
        for (std::uint32_t b = 0; b < kBuckets; ++b) {
            cum += buckets_[b];
            if (cum >= target)
                return std::min(bucketHigh(b), max_);
        }
        return max_;
    }

    void
    merge(const Histogram &o)
    {
        for (std::uint32_t b = 0; b < kBuckets; ++b)
            buckets_[b] += o.buckets_[b];
        count_ += o.count_;
        sum_ += o.sum_;
        max_ = std::max(max_, o.max_);
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

    std::uint64_t bucketCount(std::uint32_t b) const { return buckets_[b]; }

    /** Bucket counts trimmed after the last nonzero bucket. */
    std::vector<std::uint64_t>
    bucketCounts() const
    {
        std::uint32_t last = 0;
        for (std::uint32_t b = 0; b < kBuckets; ++b) {
            if (buckets_[b] != 0)
                last = b + 1;
        }
        return std::vector<std::uint64_t>(buckets_.begin(),
                                          buckets_.begin() + last);
    }

    HistogramSummary
    summary(std::string name) const
    {
        HistogramSummary s;
        s.name = std::move(name);
        s.count = count_;
        s.mean = mean();
        s.p50 = percentile(0.50);
        s.p95 = percentile(0.95);
        s.p99 = percentile(0.99);
        s.max = max_;
        s.saturated = buckets_[kBuckets - 1] != 0;
        return s;
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace banshee

#endif // BANSHEE_TELEMETRY_HISTOGRAM_HH
