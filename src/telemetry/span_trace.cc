#include "telemetry/span_trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"
#include "common/units.hh"

namespace banshee {

namespace {

constexpr std::uint32_t kPagesPid = 1;
constexpr std::uint32_t kChannelsPid = 2;
constexpr std::uint32_t kControlPid = 3;

std::string
hexPage(PageNum page)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(page));
    return buf;
}

std::string
fmtUs(double us)
{
    // Fixed sub-cycle precision keeps output deterministic and gives
    // the importer strictly ordered timestamps within a cycle.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", us);
    return buf;
}

} // namespace

PageJournal::PageJournal(const SpanTraceConfig &config,
                         std::uint32_t pageBits, std::uint64_t seed)
    : config_(config), pageBits_(pageBits), seed_(seed),
      path_(resolveTracePath(config.path, config.runLabel, ".trace.json",
                             /*perRun=*/true)),
      writer_(path_)
{
    emitMeta(kPagesPid, 0, "process_name", "pages");
    emitMeta(kChannelsPid, 0, "process_name", "channels");
    emitMeta(kControlPid, 0, "process_name", "control");
    addControlTrack("run");
}

PageJournal::~PageJournal() { finish(lastCycle_); }

bool
PageJournal::sampled(PageNum page, std::uint64_t seed,
                     std::uint32_t shift)
{
    if (shift == 0)
        return true;
    // splitmix64 finalizer over the seeded page number: a pure
    // function, so the sampled set is identical across threads, call
    // sites and runs with the same seed.
    std::uint64_t x = page ^ (seed * 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return (x & ((1ull << shift) - 1)) == 0;
}

std::string
PageJournal::head(const char *name, const char *ph, std::uint32_t pid,
                  std::uint64_t tid, Cycle ts) const
{
    return std::string("{\"name\": \"") + jsonEscape(name) +
           "\", \"ph\": \"" + ph + "\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(tid) +
           ", \"ts\": " + fmtUs(cyclesToUs(ts));
}

void
PageJournal::emit(std::string line,
                  std::initializer_list<TraceField> args)
{
    if (args.size() != 0) {
        line += ", \"args\": {";
        bool first = true;
        for (const TraceField &f : args) {
            if (!first)
                line += ", ";
            line += f.json();
            first = false;
        }
        line += "}";
    }
    line += "}";
    writer_.event(line);
}

void
PageJournal::emitMeta(std::uint32_t pid, std::uint64_t tid,
                      const char *metaName, const std::string &value)
{
    writer_.event(std::string("{\"name\": \"") + metaName +
                  "\", \"ph\": \"M\", \"pid\": " + std::to_string(pid) +
                  ", \"tid\": " + std::to_string(tid) +
                  ", \"args\": {\"name\": \"" + jsonEscape(value) +
                  "\"}}");
}

PageJournal::PageState &
PageJournal::ensurePage(PageNum page)
{
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        PageState st;
        st.tid = nextPageTid_++;
        st.asyncCat = "page " + hexPage(page);
        it = pages_.emplace(page, std::move(st)).first;
        emitMeta(kPagesPid, it->second.tid, "thread_name",
                 it->second.asyncCat);
    }
    return it->second;
}

void
PageJournal::runInfo(std::initializer_list<TraceField> args)
{
    emit(head("run_info", "i", kControlPid, 0, 0) + ", \"s\": \"t\"",
         args);
}

void
PageJournal::tenantInfo(std::uint32_t id, const std::string &name,
                        double weight)
{
    emit(head("tenant", "i", kControlPid, 0, 0) + ", \"s\": \"t\"",
         {{"id", id}, {"name", name}, {"weight", weight}});
}

void
PageJournal::pageInstant(PageNum page, const char *name, Cycle now,
                         std::initializer_list<TraceField> args)
{
    PageState &st = ensurePage(page);
    lastCycle_ = std::max(lastCycle_, now);
    emit(head(name, "i", kPagesPid, st.tid, now) + ", \"s\": \"t\"",
         args);
}

void
PageJournal::residentBegin(PageNum page, Cycle now,
                           std::initializer_list<TraceField> args)
{
    PageState &st = ensurePage(page);
    lastCycle_ = std::max(lastCycle_, now);
    if (st.resident) {
        // A begin while already resident means an eviction hook was
        // bypassed (e.g. a remap that reinserted in place): close the
        // old span so the B/E stream stays balanced.
        emit(head("resident", "E", kPagesPid, st.tid, now),
             {{"cause", "reopened"}});
    }
    st.resident = true;
    emit(head("resident", "B", kPagesPid, st.tid, now), args);
}

void
PageJournal::residentEnd(PageNum page, Cycle now, const char *cause,
                         bool dirty)
{
    PageState &st = ensurePage(page);
    lastCycle_ = std::max(lastCycle_, now);
    if (!st.resident)
        return;
    st.resident = false;
    emit(head("resident", "E", kPagesPid, st.tid, now),
         {{"cause", cause}, {"dirty", dirty ? 1 : 0}});
}

void
PageJournal::fetchSpan(PageNum page, Cycle issued, Cycle complete)
{
    PageState &st = ensurePage(page);
    lastCycle_ = std::max(lastCycle_, complete);
    const std::string id = std::to_string(nextAsyncId_++);
    const std::string cat =
        ", \"cat\": \"" + jsonEscape(st.asyncCat) + "\", \"id\": \"" +
        id + "\"";
    emit(head("fetch", "b", kPagesPid, st.tid, issued) + cat, {});
    emit(head("fetch", "e", kPagesPid, st.tid, complete) + cat, {});
}

std::uint32_t
PageJournal::addChannelTrack(const std::string &name)
{
    const auto tid = static_cast<std::uint32_t>(channelTracks_.size());
    channelTracks_.push_back(name);
    emitMeta(kChannelsPid, tid, "thread_name", name);
    return tid;
}

void
PageJournal::channelRequest(std::uint32_t track, PageNum page,
                            Cycle arrival, Cycle busStart, Cycle complete,
                            bool isWrite, TrafficCat cat, TenantId tenant,
                            const char *qos)
{
    lastCycle_ = std::max(lastCycle_, complete);
    const std::string id = std::to_string(nextAsyncId_++);
    const std::string tail = ", \"cat\": \"" +
                             jsonEscape(channelTracks_[track]) +
                             "\", \"id\": \"" + id + "\"";
    // One async lane per request: a queue slice (arrival -> bus grant)
    // chained into a service slice (bus grant -> completion) under the
    // same id, so Perfetto renders the split visually and the summary
    // script attributes latency to queueing vs service per tenant.
    if (qos) {
        emit(head("queue", "b", kChannelsPid, track, arrival) + tail,
             {{"page", hexPage(page)},
              {"rw", isWrite ? "W" : "R"},
              {"cat", trafficCatName(cat)},
              {"tenant", static_cast<std::uint32_t>(tenant)},
              {"qos", qos}});
    } else {
        emit(head("queue", "b", kChannelsPid, track, arrival) + tail,
             {{"page", hexPage(page)},
              {"rw", isWrite ? "W" : "R"},
              {"cat", trafficCatName(cat)},
              {"tenant", static_cast<std::uint32_t>(tenant)}});
    }
    emit(head("queue", "e", kChannelsPid, track, busStart) + tail, {});
    emit(head("service", "b", kChannelsPid, track, busStart) + tail, {});
    emit(head("service", "e", kChannelsPid, track, complete) + tail, {});
}

std::uint32_t
PageJournal::addControlTrack(const std::string &name)
{
    const auto tid = static_cast<std::uint32_t>(controlTracks_.size());
    controlTracks_.push_back(name);
    controlOpen_.emplace_back();
    emitMeta(kControlPid, tid, "thread_name", name);
    return tid;
}

void
PageJournal::controlBegin(std::uint32_t track, const char *name,
                          Cycle now,
                          std::initializer_list<TraceField> args)
{
    lastCycle_ = std::max(lastCycle_, now);
    controlOpen_[track].push_back(name);
    emit(head(name, "B", kControlPid, track, now), args);
}

void
PageJournal::controlEnd(std::uint32_t track, Cycle now,
                        std::initializer_list<TraceField> args)
{
    lastCycle_ = std::max(lastCycle_, now);
    if (controlOpen_[track].empty()) {
        warn_once("spans: controlEnd on '%s' with no open span",
                  controlTracks_[track].c_str());
        return;
    }
    const std::string name = controlOpen_[track].back();
    controlOpen_[track].pop_back();
    emit(head(name.c_str(), "E", kControlPid, track, now), args);
}

void
PageJournal::controlComplete(std::uint32_t track, const char *name,
                             Cycle start, Cycle end,
                             std::initializer_list<TraceField> args)
{
    lastCycle_ = std::max(lastCycle_, end);
    emit(head(name, "X", kControlPid, track, start) +
             ", \"dur\": " + fmtUs(cyclesToUs(end - start)),
         args);
}

void
PageJournal::controlInstant(std::uint32_t track, const char *name,
                            Cycle now,
                            std::initializer_list<TraceField> args)
{
    lastCycle_ = std::max(lastCycle_, now);
    emit(head(name, "i", kControlPid, track, now) + ", \"s\": \"t\"",
         args);
}

void
PageJournal::finish(Cycle now)
{
    if (finished_)
        return;
    finished_ = true;
    const Cycle end = std::max(now, lastCycle_);
    // Close pages still resident at run end (std::map iteration order
    // keeps the tail deterministic) and any in-flight control spans,
    // so every begin in the file has a matching end.
    for (auto &entry : pages_) {
        if (!entry.second.resident)
            continue;
        entry.second.resident = false;
        emit(head("resident", "E", kPagesPid, entry.second.tid, end),
             {{"cause", "run_end"}, {"truncated", 1}});
    }
    for (std::size_t t = 0; t < controlOpen_.size(); ++t) {
        while (!controlOpen_[t].empty()) {
            const std::string name = controlOpen_[t].back();
            controlOpen_[t].pop_back();
            emit(head(name.c_str(), "E", kControlPid,
                      static_cast<std::uint32_t>(t), end),
                 {{"truncated", 1}});
        }
    }
    writer_.close();
}

} // namespace banshee
