/**
 * @file
 * Three-level cache hierarchy (paper Table 2): per-core L1I/L1D and
 * L2, a shared inclusive L3, and an MSHR table that merges concurrent
 * misses to the same line across cores.
 */

#ifndef BANSHEE_CACHE_HIERARCHY_HH
#define BANSHEE_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/request.hh"

namespace banshee {

struct HierarchyParams
{
    std::uint32_t numCores = 16;
    std::uint64_t l1iSize = 32 * 1024;
    std::uint32_t l1iWays = 4;
    std::uint64_t l1dSize = 32 * 1024;
    std::uint32_t l1dWays = 8;
    std::uint64_t l2Size = 128 * 1024;
    std::uint32_t l2Ways = 8;
    std::uint64_t l3Size = 8ull * 1024 * 1024;
    std::uint32_t l3Ways = 16;
    Cycle l1Latency = 4;
    Cycle l2Latency = 12;
    Cycle l3Latency = 35;
};

/**
 * The hierarchy is functional-immediate: hits return a latency, LLC
 * misses hand a completion callback to the MemBackend. Inclusion is
 * enforced (L3 evictions back-invalidate L1/L2 copies via per-line
 * sharer masks), so every dirty line eventually reaches the backend
 * as an LLC writeback — the traffic Banshee's Tag Buffer must probe
 * for.
 */
class CacheHierarchy
{
  public:
    enum class Level : std::uint8_t { L1, L2, L3, Mem };

    struct AccessResult
    {
        Level level = Level::L1;
        Cycle latency = 0;     ///< hit latency; miss adds backend time
        bool pending = false;  ///< true when the done callback will fire
    };

    CacheHierarchy(const HierarchyParams &params, MemBackend &backend);

    /**
     * Data access from core @p core.
     *
     * On an LLC miss, @p done fires when the line arrives (latency
     * already includes the lookup path). Stores are write-allocate
     * and never pend (posted into the L1 once the line arrives).
     */
    AccessResult access(CoreId core, Addr addr, bool isWrite,
                        const MappingInfo &mapping, MissDoneFn done);

    /** Instruction fetch (separate L1I, then shared L2/L3 path). */
    AccessResult fetch(CoreId core, Addr addr, const MappingInfo &mapping,
                       MissDoneFn done);

    /** True if the line is present anywhere on chip (for tests). */
    bool presentAnywhere(LineAddr line) const;

    Cache &l1d(CoreId core) { return *l1d_[core]; }
    Cache &l1i(CoreId core) { return *l1i_[core]; }
    Cache &l2(CoreId core) { return *l2_[core]; }
    Cache &l3() { return *l3_; }

    StatSet &stats() { return stats_; }

    void resetStats();

    std::uint64_t llcMisses() const { return statLlcMisses_.value(); }

  private:
    struct MshrWaiter
    {
        CoreId core;
        bool isWrite;
        bool isFetch;
        MissDoneFn done;
    };

    struct MshrEntry
    {
        std::vector<MshrWaiter> waiters;
        MappingInfo mapping;
    };

    AccessResult accessInternal(CoreId core, Addr addr, bool isWrite,
                                bool isFetch, const MappingInfo &mapping,
                                MissDoneFn done);

    /** Install @p line into core-private levels after an L3 hit/fill. */
    void fillPrivate(CoreId core, LineAddr line, bool isWrite, bool isFetch);

    /** L1 -> L2 eviction handling (inclusive: dirty merges into L2). */
    void handleL1Victim(CoreId core, const Cache::Victim &victim);

    /** L2 -> L3 eviction handling (back-invalidate L1s, dirty to L3). */
    void handleL2Victim(CoreId core, const Cache::Victim &victim);

    /** L3 eviction: back-invalidate every sharer, write back if dirty. */
    void handleL3Victim(const Cache::Victim &victim);

    /** Called by the backend when an LLC miss completes. */
    void fillComplete(LineAddr line, Cycle when);

    HierarchyParams params_;
    MemBackend &backend_;

    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;

    std::unordered_map<LineAddr, MshrEntry> mshrs_;

    StatSet stats_;
    Counter &statAccesses_;
    Counter &statLlcMisses_;
    Counter &statMshrMerges_;
    Counter &statLlcWritebacks_;
};

} // namespace banshee

#endif // BANSHEE_CACHE_HIERARCHY_HH
