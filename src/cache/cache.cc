#include "cache/cache.hh"

#include "common/log.hh"

namespace banshee {

Cache::Cache(const CacheParams &params)
    : ways_(params.ways), policy_(params.policy),
      randState_(0x853c49e6748fea9bull), stats_(params.name),
      statHits_(stats_.counter("hits")),
      statMisses_(stats_.counter("misses")),
      statEvictions_(stats_.counter("evictions")),
      statDirtyEvictions_(stats_.counter("dirtyEvictions"))
{
    sim_assert(params.ways > 0, "cache needs at least one way");
    const std::uint64_t numLines = params.sizeBytes / params.lineBytes;
    sim_assert(numLines % params.ways == 0, "lines not divisible by ways");
    numSets_ = static_cast<std::uint32_t>(numLines / params.ways);
    sim_assert(isPow2(numSets_), "%s: number of sets must be a power of two",
               params.name.c_str());
    lines_.assign(numLines, Line{});
}

std::uint32_t
Cache::setIndex(LineAddr line) const
{
    return static_cast<std::uint32_t>(line & (numSets_ - 1));
}

Cache::Line *
Cache::findLine(LineAddr line)
{
    Line *set = &lines_[static_cast<std::uint64_t>(setIndex(line)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == line)
            return &set[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(LineAddr line) const
{
    return const_cast<Cache *>(this)->findLine(line);
}

bool
Cache::lookup(LineAddr line, bool isWrite)
{
    Line *l = findLine(line);
    if (!l) {
        ++statMisses_;
        return false;
    }
    ++statHits_;
    if (policy_ == ReplPolicy::Lru)
        l->stamp = stampCounter_++;
    if (isWrite)
        l->dirty = true;
    return true;
}

bool
Cache::contains(LineAddr line) const
{
    return findLine(line) != nullptr;
}

Cache::Victim
Cache::insert(LineAddr line, bool dirty, std::uint64_t meta)
{
    sim_assert(!findLine(line), "double insert of line %llx",
               static_cast<unsigned long long>(line));
    Line *set = &lines_[static_cast<std::uint64_t>(setIndex(line)) * ways_];

    Line *slot = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            slot = &set[w];
            break;
        }
    }

    Victim victim;
    if (!slot) {
        if (policy_ == ReplPolicy::Random) {
            // xorshift for repeatable victim picks without an Rng dep.
            randState_ ^= randState_ << 13;
            randState_ ^= randState_ >> 7;
            randState_ ^= randState_ << 17;
            slot = &set[randState_ % ways_];
        } else {
            // LRU and FIFO both evict the smallest stamp; FIFO simply
            // never refreshes stamps on hits.
            slot = &set[0];
            for (std::uint32_t w = 1; w < ways_; ++w) {
                if (set[w].stamp < slot->stamp)
                    slot = &set[w];
            }
        }
        victim.valid = true;
        victim.dirty = slot->dirty;
        victim.line = slot->tag;
        victim.meta = slot->meta;
        ++statEvictions_;
        if (slot->dirty)
            ++statDirtyEvictions_;
    }

    slot->tag = line;
    slot->valid = true;
    slot->dirty = dirty;
    slot->meta = meta;
    slot->stamp = stampCounter_++;
    return victim;
}

Cache::Victim
Cache::invalidate(LineAddr line)
{
    Victim out;
    Line *l = findLine(line);
    if (!l)
        return out;
    out.valid = true;
    out.dirty = l->dirty;
    out.line = l->tag;
    out.meta = l->meta;
    l->valid = false;
    l->dirty = false;
    l->meta = 0;
    return out;
}

void
Cache::setDirty(LineAddr line)
{
    Line *l = findLine(line);
    sim_assert(l, "setDirty on absent line %llx",
               static_cast<unsigned long long>(line));
    l->dirty = true;
}

std::uint64_t
Cache::meta(LineAddr line) const
{
    const Line *l = findLine(line);
    sim_assert(l, "meta on absent line");
    return l->meta;
}

void
Cache::setMeta(LineAddr line, std::uint64_t meta)
{
    Line *l = findLine(line);
    sim_assert(l, "setMeta on absent line");
    l->meta = meta;
}

} // namespace banshee
