#include "cache/hierarchy.hh"

#include "common/log.hh"

namespace banshee {

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               MemBackend &backend)
    : params_(params), backend_(backend), stats_("hierarchy"),
      statAccesses_(stats_.counter("accesses")),
      statLlcMisses_(stats_.counter("llcMisses")),
      statMshrMerges_(stats_.counter("mshrMerges")),
      statLlcWritebacks_(stats_.counter("llcWritebacks"))
{
    sim_assert(params.numCores <= 64,
               "sharer mask is 64 bits; %u cores requested",
               params.numCores);
    for (std::uint32_t c = 0; c < params.numCores; ++c) {
        CacheParams p;
        p.name = "l1i" + std::to_string(c);
        p.sizeBytes = params.l1iSize;
        p.ways = params.l1iWays;
        l1i_.push_back(std::make_unique<Cache>(p));
        p.name = "l1d" + std::to_string(c);
        p.sizeBytes = params.l1dSize;
        p.ways = params.l1dWays;
        l1d_.push_back(std::make_unique<Cache>(p));
        p.name = "l2_" + std::to_string(c);
        p.sizeBytes = params.l2Size;
        p.ways = params.l2Ways;
        l2_.push_back(std::make_unique<Cache>(p));
    }
    CacheParams p3;
    p3.name = "l3";
    p3.sizeBytes = params.l3Size;
    p3.ways = params.l3Ways;
    l3_ = std::make_unique<Cache>(p3);
}

CacheHierarchy::AccessResult
CacheHierarchy::access(CoreId core, Addr addr, bool isWrite,
                       const MappingInfo &mapping, MissDoneFn done)
{
    return accessInternal(core, addr, isWrite, false, mapping,
                          std::move(done));
}

CacheHierarchy::AccessResult
CacheHierarchy::fetch(CoreId core, Addr addr, const MappingInfo &mapping,
                      MissDoneFn done)
{
    return accessInternal(core, addr, false, true, mapping, std::move(done));
}

CacheHierarchy::AccessResult
CacheHierarchy::accessInternal(CoreId core, Addr addr, bool isWrite,
                               bool isFetch, const MappingInfo &mapping,
                               MissDoneFn done)
{
    ++statAccesses_;
    const LineAddr line = lineOf(addr);
    Cache &l1 = isFetch ? *l1i_[core] : *l1d_[core];

    AccessResult res;
    if (l1.lookup(line, isWrite)) {
        res.level = Level::L1;
        res.latency = params_.l1Latency;
        return res;
    }

    if (l2_[core]->lookup(line, false)) {
        fillPrivate(core, line, isWrite, isFetch);
        res.level = Level::L2;
        res.latency = params_.l2Latency;
        return res;
    }

    if (l3_->lookup(line, false)) {
        l3_->setMeta(line, l3_->meta(line) |
                               1ull << core);
        fillPrivate(core, line, isWrite, isFetch);
        res.level = Level::L3;
        res.latency = params_.l3Latency;
        return res;
    }

    // LLC miss: merge into an existing MSHR or allocate one.
    res.level = Level::Mem;
    res.latency = params_.l1Latency + params_.l2Latency + params_.l3Latency;
    res.pending = true;

    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        ++statMshrMerges_;
        it->second.waiters.push_back(
            MshrWaiter{core, isWrite, isFetch, std::move(done)});
        return res;
    }

    ++statLlcMisses_;
    MshrEntry entry;
    entry.mapping = mapping;
    entry.waiters.push_back(
        MshrWaiter{core, isWrite, isFetch, std::move(done)});
    mshrs_.emplace(line, std::move(entry));

    backend_.fetchLine(line, mapping, core,
                       [this, line](Cycle when) { fillComplete(line, when); });
    return res;
}

void
CacheHierarchy::fillPrivate(CoreId core, LineAddr line, bool isWrite,
                            bool isFetch)
{
    Cache &l1 = isFetch ? *l1i_[core] : *l1d_[core];
    if (!l2_[core]->contains(line)) {
        handleL2Victim(core, l2_[core]->insert(line, false));
    }
    if (!l1.contains(line)) {
        handleL1Victim(core, l1.insert(line, isWrite));
    } else if (isWrite) {
        l1.setDirty(line);
    }
}

void
CacheHierarchy::handleL1Victim(CoreId core, const Cache::Victim &victim)
{
    if (!victim.valid || !victim.dirty)
        return;
    // Inclusive L2: the line must still be there; merge the dirty data.
    if (l2_[core]->contains(victim.line)) {
        l2_[core]->setDirty(victim.line);
    } else if (l3_->contains(victim.line)) {
        // Possible if the L2 copy was evicted while L1 kept the line.
        l3_->setDirty(victim.line);
    } else {
        backend_.writebackLine(victim.line);
        ++statLlcWritebacks_;
    }
}

void
CacheHierarchy::handleL2Victim(CoreId core, const Cache::Victim &victim)
{
    if (!victim.valid)
        return;
    // Back-invalidate the L1 copies (inclusive L2).
    bool dirty = victim.dirty;
    dirty |= l1d_[core]->invalidate(victim.line).dirty;
    l1i_[core]->invalidate(victim.line);
    if (!dirty)
        return;
    if (l3_->contains(victim.line)) {
        l3_->setDirty(victim.line);
    } else {
        backend_.writebackLine(victim.line);
        ++statLlcWritebacks_;
    }
}

void
CacheHierarchy::handleL3Victim(const Cache::Victim &victim)
{
    if (!victim.valid)
        return;
    bool dirty = victim.dirty;
    const std::uint64_t sharers = victim.meta;
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        if (!(sharers & (1ull << c)))
            continue;
        dirty |= l1d_[c]->invalidate(victim.line).dirty;
        l1i_[c]->invalidate(victim.line);
        dirty |= l2_[c]->invalidate(victim.line).dirty;
    }
    if (dirty) {
        backend_.writebackLine(victim.line);
        ++statLlcWritebacks_;
    }
}

void
CacheHierarchy::fillComplete(LineAddr line, Cycle when)
{
    auto it = mshrs_.find(line);
    sim_assert(it != mshrs_.end(), "fill for unknown MSHR line %llx",
               static_cast<unsigned long long>(line));
    // Move waiters out before erasing; callbacks may re-enter.
    std::vector<MshrWaiter> waiters = std::move(it->second.waiters);
    mshrs_.erase(it);

    std::uint64_t sharers = 0;
    for (const auto &w : waiters)
        sharers |= 1ull << w.core;

    if (!l3_->contains(line))
        handleL3Victim(l3_->insert(line, false, sharers));
    else
        l3_->setMeta(line, l3_->meta(line) | sharers);

    for (auto &w : waiters)
        fillPrivate(w.core, line, w.isWrite, w.isFetch);

    for (auto &w : waiters) {
        if (w.done)
            w.done(when);
    }
}

bool
CacheHierarchy::presentAnywhere(LineAddr line) const
{
    if (l3_->contains(line))
        return true;
    for (std::uint32_t c = 0; c < params_.numCores; ++c) {
        if (l1d_[c]->contains(line) || l1i_[c]->contains(line) ||
            l2_[c]->contains(line)) {
            return true;
        }
    }
    return false;
}

void
CacheHierarchy::resetStats()
{
    stats_.reset();
    for (auto &c : l1i_)
        c->stats().reset();
    for (auto &c : l1d_)
        c->stats().reset();
    for (auto &c : l2_)
        c->stats().reset();
    l3_->stats().reset();
}

} // namespace banshee
