/**
 * @file
 * Generic set-associative SRAM cache used for L1I/L1D/L2/L3.
 *
 * The hierarchy is functional-immediate: lookups update state at call
 * time and latencies are accounted by the caller. Only DRAM is
 * event-driven.
 */

#ifndef BANSHEE_CACHE_CACHE_HH
#define BANSHEE_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace banshee {

/** Replacement policy of an SRAM cache. */
enum class ReplPolicy : std::uint8_t { Lru, Fifo, Random };

struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = kLineBytes;
    ReplPolicy policy = ReplPolicy::Lru;
};

/**
 * A set-associative cache of line addresses. Lines carry a dirty bit
 * and a 64-bit user metadata word (the shared L3 stores a sharer
 * bitmask there).
 */
class Cache
{
  public:
    struct Victim
    {
        bool valid = false;
        bool dirty = false;
        LineAddr line = 0;
        std::uint64_t meta = 0;
    };

    explicit Cache(const CacheParams &params);

    /**
     * Look up @p line. On a hit, updates replacement state and, if
     * @p isWrite, the dirty bit.
     * @return true on hit.
     */
    bool lookup(LineAddr line, bool isWrite);

    /** Hit check without any state change. */
    bool contains(LineAddr line) const;

    /**
     * Insert @p line (must not be present). Returns the evicted
     * victim, if any.
     */
    Victim insert(LineAddr line, bool dirty, std::uint64_t meta = 0);

    /**
     * Remove @p line if present.
     * @return the removed entry (valid=false if it was absent).
     */
    Victim invalidate(LineAddr line);

    /** Set the dirty bit of a resident line (asserts presence). */
    void setDirty(LineAddr line);

    /** Read a resident line's metadata word (asserts presence). */
    std::uint64_t meta(LineAddr line) const;

    /** Update a resident line's metadata word (asserts presence). */
    void setMeta(LineAddr line, std::uint64_t meta);

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t ways() const { return ways_; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    std::uint64_t hits() const { return statHits_.value(); }
    std::uint64_t misses() const { return statMisses_.value(); }

  private:
    struct Line
    {
        LineAddr tag = 0;
        std::uint64_t stamp = 0; ///< LRU/FIFO ordering stamp
        std::uint64_t meta = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setIndex(LineAddr line) const;
    Line *findLine(LineAddr line);
    const Line *findLine(LineAddr line) const;

    std::uint32_t numSets_;
    std::uint32_t ways_;
    ReplPolicy policy_;
    std::vector<Line> lines_;
    std::uint64_t stampCounter_ = 1;
    std::uint64_t randState_;

    StatSet stats_;
    Counter &statHits_;
    Counter &statMisses_;
    Counter &statEvictions_;
    Counter &statDirtyEvictions_;
};

} // namespace banshee

#endif // BANSHEE_CACHE_CACHE_HH
