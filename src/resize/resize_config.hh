/**
 * @file
 * Configuration of the dynamic DRAM-cache resizing subsystem.
 *
 * The in-package cache of each memory controller is divided into
 * `numSlices` equal groups of sets ("slices"). Pages are placed onto
 * slices through a consistent-hash ring, so deactivating K of N
 * slices remaps (and therefore migrates) only ~K/N of the resident
 * pages; the naive alternative (FlushAll) drains the entire cache on
 * every size change, the way a mod-N indexed cache would have to.
 *
 * Resizes are decided by an epoch-driven policy fed from the scheme's
 * demand statistics, and executed by a background migration engine
 * that drains remapped pages through the normal DRAM bandwidth model,
 * rate-limited so demand traffic keeps flowing.
 */

#ifndef BANSHEE_RESIZE_RESIZE_CONFIG_HH
#define BANSHEE_RESIZE_RESIZE_CONFIG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "common/units.hh"

namespace banshee {

/** How a resize transition relocates resident pages. */
enum class ResizeStrategy : std::uint8_t
{
    ConsistentHash, ///< migrate only pages whose slice changed (~K/N)
    FlushAll        ///< naive baseline: drain every resident page
};

const char *resizeStrategyName(ResizeStrategy s);

/** Virtual-node ring geometry (see ConsistentHashMapper). */
struct ConsistentHashParams
{
    std::uint32_t numSlices = 8;
    /** Virtual nodes per slice; more = better balance, bigger ring. */
    std::uint32_t vnodesPerSlice = 64;
    std::uint64_t ringSeed = 0x5eedc0de;
};

/** Rate limiting of the background drain (see MigrationEngine). */
struct MigrationParams
{
    /** Pages drained per engine tick. */
    std::uint32_t pagesPerBatch = 8;
    /** Cycles between ticks — paces migration against demand. */
    Cycle batchInterval = nsToCycles(200.0);
    /** Back-off when the Tag Buffer cannot take more remaps. */
    Cycle retryInterval = usToCycles(1.0);
};

/** One entry of a scripted resize schedule. */
struct ResizeStep
{
    std::uint64_t epoch = 0;        ///< measured-phase epoch index
    std::uint32_t targetSlices = 0; ///< active slices to resize to
};

/**
 * What the controller observed over one epoch, summed over all MCs:
 * the demand-traffic delta plus the in-package device's mean power
 * (zero when no power model is attached).
 */
struct ResizeEpochStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Mean in-package device power over the epoch (W). */
    double avgPowerWatts = 0.0;
    /** Background + refresh share of @c avgPowerWatts (W) — the part
     *  slice gating can actually shed. */
    double bgRefreshWatts = 0.0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

struct ResizePolicyConfig
{
    enum class Kind : std::uint8_t
    {
        Schedule, ///< scripted steps (benches, tests, external control)
        Adaptive, ///< stats-fed: shrink when cold, grow when thrashing
        PowerCap, ///< watt budget (see power/power_cap_policy.hh)
        Qos       ///< multi-tenant arbiter (see tenant/qos_arbiter.hh)
    };

    Kind kind = Kind::Schedule;

    /** Epoch length; the policy is evaluated once per epoch. */
    Cycle epoch = usToCycles(20.0);

    /** Scripted resizes (Kind::Schedule). */
    std::vector<ResizeStep> schedule;

    // Adaptive knobs (Kind::Adaptive).
    /** Shrink by one slice when the epoch miss rate is below this. */
    double shrinkMissRate = 0.02;
    /** Grow by one slice when the epoch miss rate is above this. */
    double growMissRate = 0.20;
    /** Never shrink below this many active slices. */
    std::uint32_t minSlices = 1;
    /** Ignore epochs with fewer demand accesses than this (noise). */
    std::uint64_t minEpochAccesses = 1000;

    // Power-cap knobs (Kind::PowerCap; also compose into Kind::Qos,
    // where the cap sheds from the tenant furthest over quota).
    /** In-package device power budget (W); <= 0 disables the cap. */
    double powerCapWatts = 0.0;
    /** Grow hysteresis as a fraction of one slice's power share. */
    double powerGrowMargin = 1.0;

    // QoS-arbiter knobs (Kind::Qos).
    /** Never arbitrate a tenant below this many owned slices. */
    std::uint32_t minSlicesPerTenant = 1;
    /** Entitlement hysteresis: rebalance only when a tenant sits more
     *  than this many slices under its weight-entitled share. */
    double qosDeficitSlack = 0.5;
};

struct ResizeConfig
{
    bool enabled = false;
    ResizeStrategy strategy = ResizeStrategy::ConsistentHash;
    ConsistentHashParams hash;
    MigrationParams migration;
    ResizePolicyConfig policy;
    /**
     * Multi-tenant slice partitioning: when non-empty, the slices of
     * every domain are apportioned over these quota weights (tenant t
     * owns its share of the ring's points) and page placement becomes
     * tenant-aware. Filled by SystemConfig::withTenants.
     */
    std::vector<double> tenantWeights;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_RESIZE_CONFIG_HH
