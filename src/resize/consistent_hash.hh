/**
 * @file
 * Consistent-hash placement of pages onto cache slices.
 *
 * Classic virtual-node ring (Karger et al.), in the role Chang et
 * al.'s hardware consistent-hashing mechanism plays for resizable
 * DRAM caches: every slice owns `vnodesPerSlice` pseudo-random points
 * on a 64-bit ring; a page belongs to the first *active* slice at or
 * after hash(page). Deactivating a slice therefore remaps exactly the
 * pages that belonged to it (they spill to their ring successors),
 * and reactivating it remaps exactly the pages that return — in both
 * directions the remapped fraction is ~K/N for K of N slices, while a
 * mod-N index would remap nearly everything.
 *
 * The ring is immutable after construction; activation state is a
 * bitmap consulted during the successor walk, so resizes are O(1) and
 * lookups stay O(log ring + walk).
 *
 * Multi-tenant partitioning: each slice may be owned by a tenant.
 * A tenant-tagged lookup walks to the first active slice its tenant
 * may use (its own slices, or shared kNoTenant slices), so a tenant's
 * pages are confined to its quota. Because every slice contributes
 * the same number of virtual nodes, a tenant owning k of N slices
 * owns k/N of the ring's points — its quota is its share of ring
 * points — and the ~K/N remap bound holds per tenant: deactivating or
 * reassigning one of a tenant's slices remaps only that slice's
 * pages onto the tenant's remaining slices.
 */

#ifndef BANSHEE_RESIZE_CONSISTENT_HASH_HH
#define BANSHEE_RESIZE_CONSISTENT_HASH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "resize/resize_config.hh"
#include "tenant/tenant.hh"

namespace banshee {

class ConsistentHashMapper
{
  public:
    explicit ConsistentHashMapper(const ConsistentHashParams &params);

    std::uint32_t numSlices() const { return params_.numSlices; }
    std::uint32_t activeSlices() const { return activeCount_; }

    bool
    isActive(std::uint32_t slice) const
    {
        return active_[slice];
    }

    /** Activate/deactivate a slice. At least one must stay active. */
    void setActive(std::uint32_t slice, bool active);

    /** Hand slice @p slice to tenant @p t (kNoTenant = shared). */
    void
    setSliceTenant(std::uint32_t slice, TenantId t)
    {
        sliceTenant_[slice] = t;
    }

    TenantId
    sliceTenant(std::uint32_t slice) const
    {
        return sliceTenant_[slice];
    }

    /** Active slices currently owned by tenant @p t. */
    std::uint32_t
    slicesOwnedBy(TenantId t) const
    {
        std::uint32_t n = 0;
        for (std::uint32_t s = 0; s < params_.numSlices; ++s)
            n += (active_[s] && sliceTenant_[s] == t) ? 1 : 0;
        return n;
    }

    /**
     * The active slice owning @p page for tenant @p tenant: the first
     * active slice on the successor walk that the tenant may use (its
     * own, or a shared one). Untagged lookups (kNoTenant) accept any
     * active slice — the single-tenant behavior. If the tenant owns
     * no eligible slice at all, the first active slice stands in so
     * lookups never fail during ownership transitions.
     */
    std::uint32_t sliceOf(PageNum page, TenantId tenant = kNoTenant) const;

    /** splitmix64 — the ring's key hash (exposed for tests). */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

  private:
    struct VNode
    {
        std::uint64_t point;
        std::uint32_t slice;

        bool
        operator<(const VNode &o) const
        {
            return point != o.point ? point < o.point : slice < o.slice;
        }
    };

    ConsistentHashParams params_;
    std::vector<VNode> ring_; ///< sorted by point
    std::vector<bool> active_;
    std::vector<TenantId> sliceTenant_; ///< kNoTenant = shared
    std::uint32_t activeCount_;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_CONSISTENT_HASH_HH
