#include "resize/consistent_hash.hh"

#include <algorithm>

#include "common/log.hh"

namespace banshee {

const char *
resizeStrategyName(ResizeStrategy s)
{
    switch (s) {
      case ResizeStrategy::ConsistentHash:
        return "ConsistentHash";
      case ResizeStrategy::FlushAll:
        return "FlushAll";
    }
    return "?";
}

ConsistentHashMapper::ConsistentHashMapper(const ConsistentHashParams &params)
    : params_(params), active_(params.numSlices, true),
      sliceTenant_(params.numSlices, kNoTenant),
      activeCount_(params.numSlices)
{
    sim_assert(params.numSlices > 0, "mapper needs at least one slice");
    sim_assert(params.vnodesPerSlice > 0, "mapper needs virtual nodes");

    ring_.reserve(static_cast<std::size_t>(params.numSlices) *
                  params.vnodesPerSlice);
    for (std::uint32_t s = 0; s < params.numSlices; ++s) {
        // Each vnode point is a splitmix64 chain seeded per slice, so
        // the ring is deterministic in (seed, slice, vnode index).
        std::uint64_t h = params.ringSeed * 0x9e3779b97f4a7c15ull + s;
        for (std::uint32_t v = 0; v < params.vnodesPerSlice; ++v) {
            h = mix(h);
            ring_.push_back(VNode{h, s});
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

void
ConsistentHashMapper::setActive(std::uint32_t slice, bool active)
{
    sim_assert(slice < params_.numSlices, "bad slice %u", slice);
    if (active_[slice] == active)
        return;
    if (!active)
        sim_assert(activeCount_ > 1, "cannot deactivate the last slice");
    active_[slice] = active;
    activeCount_ += active ? 1 : -1;
}

std::uint32_t
ConsistentHashMapper::sliceOf(PageNum page, TenantId tenant) const
{
    const std::uint64_t point = mix(page);
    // First vnode at or after the key's point, wrapping at the end;
    // then walk to the first vnode of an active slice the tenant may
    // use. The first active slice of any owner is remembered as a
    // fallback for tenants that (transiently) own nothing eligible.
    std::size_t idx =
        std::lower_bound(ring_.begin(), ring_.end(),
                         VNode{point, 0}) -
        ring_.begin();
    std::uint32_t fallback = params_.numSlices;
    for (std::size_t step = 0; step < ring_.size(); ++step) {
        const VNode &vn = ring_[(idx + step) % ring_.size()];
        if (!active_[vn.slice])
            continue;
        const TenantId owner = sliceTenant_[vn.slice];
        if (tenant == kNoTenant || owner == kNoTenant || owner == tenant)
            return vn.slice;
        if (fallback == params_.numSlices)
            fallback = vn.slice;
    }
    if (fallback < params_.numSlices)
        return fallback;
    panic("consistent-hash ring has no active slice");
}

} // namespace banshee
