/**
 * @file
 * Per-memory-controller resize state: slice-aware set mapping plus
 * the migration engine that executes transitions.
 *
 * The controller's sets are split into numSlices contiguous groups.
 * A page's home set is (slice base + hash % setsPerSlice) where the
 * slice comes from the consistent-hash ring, so only pages whose
 * slice assignment changes ever move. During a transition, pages
 * queued for migration are *pinned* to their old set — demand hits
 * and LLC writebacks keep finding them at their physical frame until
 * the engine has written them back and published the un-mapping —
 * which is what makes the drain safe to run concurrently with demand
 * traffic instead of stopping the world.
 */

#ifndef BANSHEE_RESIZE_RESIZE_DOMAIN_HH
#define BANSHEE_RESIZE_RESIZE_DOMAIN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/event_queue.hh"
#include "resize/consistent_hash.hh"
#include "resize/migration_engine.hh"
#include "resize/resize_config.hh"
#include "resize/resize_host.hh"

namespace banshee {

class ResizeDomain
{
  public:
    ResizeDomain(EventQueue &eq, ResizeHost &host, const ResizeConfig &config,
                 std::string name);

    /**
     * Resize-aware set index for @p page. @p mixedHash is the
     * scheme's existing page-placement hash, reused as the offset
     * within the slice so the no-resize layout and the 1-slice layout
     * spread pages identically. In a partitioned (multi-tenant)
     * layout the successor walk is restricted to the page's tenant's
     * slices, confining each tenant to its quota.
     */
    std::uint32_t
    setOf(PageNum page, std::uint64_t mixedHash) const
    {
        auto pin = pinned_.find(page);
        if (pin != pinned_.end())
            return pin->second;
        const std::uint32_t slice =
            mapper_.sliceOf(page, partitioned_ ? host_.pageTenant(page)
                                               : kNoTenant);
        return slice * setsPerSlice_ +
               static_cast<std::uint32_t>(mixedHash % setsPerSlice_);
    }

    /** True while a transition's drain is still in flight. */
    bool migrationActive() const { return engine_.active(); }

    std::uint32_t activeSlices() const { return mapper_.activeSlices(); }
    std::uint32_t totalSlices() const { return mapper_.numSlices(); }
    std::uint32_t setsPerSlice() const { return setsPerSlice_; }

    bool
    sliceActive(std::uint32_t slice) const
    {
        return mapper_.isActive(slice);
    }

    /** Slice owning set @p setIdx (layout, not ring). */
    std::uint32_t
    sliceOfSet(std::uint32_t setIdx) const
    {
        return setIdx / setsPerSlice_;
    }

    /** True when slices are partitioned between tenants. */
    bool partitioned() const { return partitioned_; }

    /** Active slices owned by tenant @p t (partitioned layouts). */
    std::uint32_t
    slicesOwnedBy(TenantId t) const
    {
        return mapper_.slicesOwnedBy(t);
    }

    /**
     * Start a transition to @p targetActive slices; @p onDone fires
     * when the drain completes. Shrinks deactivate the highest-id
     * active slices, grows reactivate the lowest-id inactive ones, so
     * schedules are deterministic. In a partitioned layout @p donor
     * restricts a shrink to slices owned by that tenant, and a grown
     * slice is handed to @p receiver (kNoTenant = unrestricted).
     */
    void resizeTo(std::uint32_t targetActive, std::function<void()> onDone,
                  TenantId donor = kNoTenant,
                  TenantId receiver = kNoTenant);

    /**
     * Highest-id active slice owned by @p donor that a reassignment
     * or shrink may take, or numSlices when the donor has none. The
     * controller queries domain 0 and applies the same slice to every
     * domain so layouts stay in lockstep.
     */
    std::uint32_t pickDonorSlice(TenantId donor) const;

    /**
     * Hand active slice @p slice to tenant @p to and drain every
     * resident page whose home changed — the donor's pages leave the
     * slice, and the receiver's pages elsewhere fold into it.
     */
    void reassignSlice(std::uint32_t slice, TenantId to,
                       std::function<void()> onDone);

    /** A frame left the cache through normal replacement; drop any
     *  pin so future accesses use the page's new home set. */
    void
    notifyFrameEvicted(PageNum page)
    {
        if (pinned_.erase(page) > 0)
            ++layoutGeneration_;
    }

    /**
     * Monotone counter bumped on every page->set mapping mutation:
     * slice activation flips, slice ownership changes, pin inserts at
     * drain start, and pin drops (drain progress or eviction). A
     * cached (page, setOf(page)) pair is valid iff the generation it
     * was computed under still matches — the invalidation contract the
     * scheme's per-core mapping memo relies on.
     */
    std::uint64_t layoutGeneration() const { return layoutGeneration_; }

    MigrationEngine &engine() { return engine_; }
    const MigrationEngine &engine() const { return engine_; }
    const ConsistentHashMapper &mapper() const { return mapper_; }
    ResizeHost &host() { return host_; }

  private:
    /** Queue every resident page whose home set changed under the
     *  current layout and start the drain. */
    void startDrain(std::function<void()> onDone);

    ResizeHost &host_;
    ConsistentHashMapper mapper_;
    MigrationEngine engine_;
    ResizeStrategy strategy_;
    bool partitioned_ = false;
    std::uint32_t setsPerSlice_;
    /** Pages awaiting migration -> the old set they still occupy. */
    std::unordered_map<PageNum, std::uint32_t> pinned_;
    std::uint64_t layoutGeneration_ = 0;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_RESIZE_DOMAIN_HH
