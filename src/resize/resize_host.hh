/**
 * @file
 * What the resizing subsystem needs from a DRAM-cache scheme.
 *
 * A scheme that supports dynamic resizing exposes its directory of
 * resident pages, a tag-buffer admission check, and a frame-eviction
 * primitive that charges migration traffic through the DRAM model and
 * publishes the remap through Banshee's lazy PTE/TLB machinery (tag
 * buffer remap entry + deferred batch commit). Keeping this an
 * interface lets the MigrationEngine be unit-tested against a fake
 * host and keeps src/resize free of dependencies on src/core.
 */

#ifndef BANSHEE_RESIZE_RESIZE_HOST_HH
#define BANSHEE_RESIZE_RESIZE_HOST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "tenant/tenant.hh"

namespace banshee {

class ResizeDomain;

class ResizeHost
{
  public:
    virtual ~ResizeHost() = default;

    /** Sets in this controller's directory. */
    virtual std::uint32_t numSets() const = 0;

    /** Visit every valid resident frame: fn(set, way, page, dirty). */
    virtual void forEachResident(
        const std::function<void(std::uint32_t, std::uint32_t, PageNum,
                                 bool)> &fn) = 0;

    /** Is @p page still resident at (set, way)? Re-checked at drain
     *  time: normal replacement may have evicted it meanwhile. */
    virtual bool residentAt(std::uint32_t set, std::uint32_t way,
                            PageNum page) = 0;

    /** Can the tag buffer take the remap entry an eviction needs? */
    virtual bool canEvictFrame(PageNum page) const = 0;

    /**
     * Drain one frame: write the page back off-package if dirty
     * (charged as TrafficCat::Migration), invalidate the directory
     * entry, and publish the un-mapping through the tag buffer so
     * PTEs/TLBs learn of it at the next batch commit.
     * @return true if the page was dirty (a writeback was issued).
     */
    virtual bool evictFrame(std::uint32_t set, std::uint32_t way) = 0;

    /** Ask the OS to run the batch PTE-update routine (frees remap
     *  slots in the tag buffer). */
    virtual void requestMappingCommit() = 0;

    /** Attach the per-controller resize domain (set mapping + engine)
     *  once the subsystem is built. */
    virtual void attachResizeDomain(ResizeDomain *domain) = 0;

    // Demand statistics feeding the resize policy.
    virtual std::uint64_t demandAccesses() const = 0;
    virtual std::uint64_t demandMisses() const = 0;

    // Per-tenant demand statistics feeding the QoS arbiter. Hosts
    // without tenant tracking report zero.
    virtual std::uint64_t
    demandAccessesOf(TenantId t) const
    {
        (void)t;
        return 0;
    }

    virtual std::uint64_t
    demandMissesOf(TenantId t) const
    {
        (void)t;
        return 0;
    }

    /** Owner of a (scheme-granularity) page, for tenant-aware slice
     *  placement; kNoTenant when the host has no tenant tracking. */
    virtual TenantId
    pageTenant(PageNum page) const
    {
        (void)page;
        return kNoTenant;
    }

    /**
     * A shrink transition just committed: the drained slices' pages
     * are gone for good. Hosts with frequency-based replacement decay
     * their counters here — otherwise the stale resident set's
     * accumulated counts keep every re-admission candidate below the
     * anti-churn threshold and recovery crawls. Default: nothing.
     */
    virtual void onCapacityLoss() {}

    /** Test hook: assert directory / page-table / slice consistency. */
    virtual void verifyResidencyConsistent() = 0;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_RESIZE_HOST_HH
