/**
 * @file
 * Background drain of remapped pages during a cache resize.
 *
 * Instead of a stop-the-world flush, the engine walks the list of
 * frames whose slice assignment changed and evicts them in small
 * rate-limited batches on the event queue, so migration writebacks
 * interleave with demand traffic in the DRAM controllers' queues
 * exactly like any other requests. When the Tag Buffer cannot accept
 * further remap entries the engine requests the OS batch PTE-update
 * (the same lazy machinery replacements use) and backs off; the
 * resize controller kicks it again the moment the update completes.
 */

#ifndef BANSHEE_RESIZE_MIGRATION_ENGINE_HH
#define BANSHEE_RESIZE_MIGRATION_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "resize/resize_config.hh"
#include "resize/resize_host.hh"
#include "telemetry/histogram.hh"

namespace banshee {

class PageJournal; // telemetry/span_trace.hh

class MigrationEngine
{
  public:
    MigrationEngine(EventQueue &eq, ResizeHost &host,
                    const MigrationParams &params, std::string name);

    /** Queue one frame for draining (before start()). */
    void enqueue(std::uint32_t set, std::uint32_t way, PageNum page);

    /**
     * Begin draining the queued frames; @p onDrained fires (possibly
     * immediately) once the backlog is empty. @p onPageDone fires for
     * every queued page as it is drained or skipped.
     */
    void start(std::function<void(PageNum)> onPageDone,
               std::function<void()> onDrained);

    /** Re-arm a stalled engine (e.g. after a PTE update freed tag
     *  buffer space). No-op when idle or already armed. */
    void kick();

    bool active() const { return active_; }
    std::size_t backlog() const { return pending_.size(); }

    std::uint64_t pagesDrained() const { return statDrained_.value(); }
    std::uint64_t dirtyPagesDrained() const { return statDirty_.value(); }
    std::uint64_t pagesSkipped() const { return statSkipped_.value(); }
    std::uint64_t tagBufferStalls() const { return statStalls_.value(); }

    /** Attach (or detach with nullptr) a drain-batch latency
     *  distribution: arm-to-completion time of each batch, so tag
     *  buffer stalls show up as a stretched tail. */
    void setTelemetry(Histogram *batchLat) { batchLat_ = batchLat; }

    /** Attach span tracing: each drain batch becomes a complete span
     *  on control track @p track. Null = off. */
    void
    setSpanTrace(PageJournal *spans, std::uint32_t track)
    {
        spans_ = spans;
        spanTrack_ = track;
    }

    StatSet &stats() { return stats_; }

  private:
    struct Frame
    {
        std::uint32_t set;
        std::uint32_t way;
        PageNum page;
    };

    /** Drain up to pagesPerBatch frames, then re-arm or finish. */
    void tick();

    void armTick(Cycle delay);

    EventQueue &eq_;
    ResizeHost &host_;
    MigrationParams params_;
    std::deque<Frame> pending_;
    std::function<void(PageNum)> onPageDone_;
    std::function<void()> onDrained_;
    bool active_ = false;
    /** The engine's one drain-tick event; armTick() re-arms it. */
    TickEvent tickEvent_{[this] { tick(); }};
    Histogram *batchLat_ = nullptr;
    PageJournal *spans_ = nullptr;
    std::uint32_t spanTrack_ = 0;
    Cycle batchStart_ = kNoCycle; ///< arming cycle of the current batch

    StatSet stats_;
    Counter &statDrained_;
    Counter &statDirty_;
    Counter &statSkipped_;
    Counter &statStalls_;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_MIGRATION_ENGINE_HH
