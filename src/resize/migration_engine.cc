#include "resize/migration_engine.hh"

#include "common/log.hh"
#include "telemetry/span_trace.hh"

namespace banshee {

MigrationEngine::MigrationEngine(EventQueue &eq, ResizeHost &host,
                                 const MigrationParams &params,
                                 std::string name)
    : eq_(eq), host_(host), params_(params), stats_(std::move(name)),
      statDrained_(stats_.counter("pagesDrained")),
      statDirty_(stats_.counter("dirtyPagesDrained")),
      statSkipped_(stats_.counter("pagesSkipped")),
      statStalls_(stats_.counter("tagBufferStalls"))
{
    sim_assert(params.pagesPerBatch > 0, "migration batch must be > 0");
}

void
MigrationEngine::enqueue(std::uint32_t set, std::uint32_t way, PageNum page)
{
    sim_assert(!active_, "enqueue while a drain is in flight");
    pending_.push_back(Frame{set, way, page});
}

void
MigrationEngine::start(std::function<void(PageNum)> onPageDone,
                       std::function<void()> onDrained)
{
    sim_assert(!active_, "drain already in flight");
    onPageDone_ = std::move(onPageDone);
    onDrained_ = std::move(onDrained);
    active_ = true;
    if (pending_.empty()) {
        // Nothing to move (e.g. a grow into a cold cache).
        active_ = false;
        if (onDrained_)
            onDrained_();
        return;
    }
    armTick(0);
}

void
MigrationEngine::kick()
{
    if (active_)
        armTick(0);
}

void
MigrationEngine::armTick(Cycle delay)
{
    // An earlier (or equal) tick is already pending; a *later* one is
    // superseded so a kick() can cut a stall's back-off short — the
    // re-arm drops the stale queue entry in place.
    const Cycle when = eq_.now() + delay;
    if ((batchLat_ || spans_) && batchStart_ == kNoCycle)
        batchStart_ = eq_.now();
    if (tickEvent_.armed() && tickEvent_.when() <= when)
        return;
    eq_.schedule(tickEvent_, when);
}

void
MigrationEngine::tick()
{
    if (!active_)
        return;

    for (std::uint32_t n = 0; n < params_.pagesPerBatch &&
                              !pending_.empty();
         ++n) {
        const Frame f = pending_.front();

        if (!host_.residentAt(f.set, f.way, f.page)) {
            // Normal replacement already evicted (and, if dirty,
            // wrote back) this frame while it sat in the backlog.
            pending_.pop_front();
            ++statSkipped_;
            if (onPageDone_)
                onPageDone_(f.page);
            continue;
        }

        if (!host_.canEvictFrame(f.page)) {
            // Tag buffer saturated with remaps: ask the OS to run the
            // batch PTE update and retry after it drains (the resize
            // controller also kicks us on update completion).
            ++statStalls_;
            host_.requestMappingCommit();
            armTick(params_.retryInterval);
            return;
        }

        pending_.pop_front();
        if (host_.evictFrame(f.set, f.way))
            ++statDirty_;
        ++statDrained_;
        if (onPageDone_)
            onPageDone_(f.page);
    }

    // A full batch made it through (stall returns above keep the batch
    // open): arm-to-now includes any retry back-offs it suffered.
    if (batchStart_ != kNoCycle) {
        if (batchLat_)
            batchLat_->record(eq_.now() - batchStart_);
        if (spans_) {
            spans_->controlComplete(
                spanTrack_, "drain_batch", batchStart_, eq_.now(),
                {{"backlog",
                  static_cast<std::uint64_t>(pending_.size())}});
        }
        batchStart_ = kNoCycle;
    }

    if (pending_.empty()) {
        active_ = false;
        if (onDrained_)
            onDrained_();
        return;
    }
    armTick(params_.batchInterval);
}

} // namespace banshee
