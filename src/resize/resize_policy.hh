/**
 * @file
 * Epoch-driven resize decisions.
 *
 * Once per epoch the controller feeds the policy the demand-access
 * delta (and the in-package device's epoch power) observed across all
 * memory controllers. Schedule mode replays a scripted list of
 * (epoch, target) steps — the mode benches and external capacity
 * managers use. Adaptive mode is stats-fed: a near-zero miss rate
 * means the working set fits comfortably and slices can be powered
 * down; a high miss rate means the cache is thrashing and should grow
 * back. PowerCap mode delegates to PowerCapPolicy, which picks the
 * slice count from a watt budget.
 */

#ifndef BANSHEE_RESIZE_RESIZE_POLICY_HH
#define BANSHEE_RESIZE_RESIZE_POLICY_HH

#include <cstdint>
#include <optional>

#include "power/power_cap_policy.hh"
#include "resize/resize_config.hh"

namespace banshee {

class ResizePolicy
{
  public:
    explicit ResizePolicy(const ResizePolicyConfig &config)
        : config_(config), powerCap_(config)
    {
    }

    /**
     * Decide the target active-slice count for @p epochIndex, or
     * nullopt to stay put. Pure function of its inputs.
     */
    std::optional<std::uint32_t> decide(std::uint64_t epochIndex,
                                        const ResizeEpochStats &stats,
                                        std::uint32_t activeSlices,
                                        std::uint32_t totalSlices) const;

    const ResizePolicyConfig &config() const { return config_; }

  private:
    ResizePolicyConfig config_;
    PowerCapPolicy powerCap_;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_RESIZE_POLICY_HH
