#include "resize/resize_policy.hh"

#include <algorithm>

namespace banshee {

std::optional<std::uint32_t>
ResizePolicy::decide(std::uint64_t epochIndex, const ResizeEpochStats &stats,
                     std::uint32_t activeSlices,
                     std::uint32_t totalSlices) const
{
    if (config_.kind == ResizePolicyConfig::Kind::Schedule) {
        for (const ResizeStep &step : config_.schedule) {
            if (step.epoch != epochIndex)
                continue;
            const std::uint32_t target =
                std::clamp<std::uint32_t>(step.targetSlices, 1, totalSlices);
            if (target != activeSlices)
                return target;
        }
        return std::nullopt;
    }

    if (config_.kind == ResizePolicyConfig::Kind::PowerCap)
        return powerCap_.decide(stats, activeSlices, totalSlices);

    // Qos decisions carry donor/receiver tenants and are made by the
    // controller's QosArbiterPolicy, not this scalar interface.
    if (config_.kind == ResizePolicyConfig::Kind::Qos)
        return std::nullopt;

    // Adaptive: need a statistically meaningful epoch to act.
    if (stats.accesses < config_.minEpochAccesses)
        return std::nullopt;

    const double missRate = stats.missRate();
    if (missRate < config_.shrinkMissRate &&
        activeSlices > std::max<std::uint32_t>(config_.minSlices, 1)) {
        return activeSlices - 1;
    }
    if (missRate > config_.growMissRate && activeSlices < totalSlices)
        return activeSlices + 1;
    return std::nullopt;
}

} // namespace banshee
