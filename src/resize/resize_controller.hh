/**
 * @file
 * System-wide coordination of DRAM-cache resizing.
 *
 * The controller owns one ResizeDomain per memory controller and an
 * epoch clock on the event queue. Every epoch it samples the demand
 * counters (and, when a power model is attached, the in-package
 * device's epoch power), asks the ResizePolicy for a target, and —
 * when one comes back — starts the transition on every domain
 * simultaneously (the slice layout must stay identical across
 * controllers because pages stripe over them). It also bridges the OS
 * cooperation loop: when a batch PTE update completes, stalled
 * migration engines are kicked so the drain resumes immediately
 * instead of waiting out its back-off.
 *
 * Power gating: the controller drives the power model's gated-slice
 * fraction in both directions — a grow powers its slices up the
 * moment the transition starts (they must refresh before data lands),
 * a shrink powers its slices down only when the drain completes (they
 * hold live data until then).
 */

#ifndef BANSHEE_RESIZE_RESIZE_CONTROLLER_HH
#define BANSHEE_RESIZE_RESIZE_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "os/os_services.hh"
#include "power/power_model.hh"
#include "resize/resize_config.hh"
#include "resize/resize_domain.hh"
#include "resize/resize_policy.hh"
#include "tenant/qos_arbiter.hh"
#include "tenant/tenant_map.hh"

namespace banshee {

class Telemetry;    // telemetry/telemetry.hh
class PageJournal;  // telemetry/span_trace.hh
class DramModel;    // dram/dram_model.hh

class ResizeController
{
  public:
    ResizeController(EventQueue &eq, OsServices &os,
                     const ResizeConfig &config);

    /** Register one scheme instance; builds and attaches its domain. */
    void addHost(ResizeHost &host, const std::string &name);

    /**
     * Attach the in-package device's power model: deactivated slices
     * gate their share of background/refresh power, and epoch power
     * readings feed the PowerCap policy. Optional — without it,
     * resizing works but saves no modeled energy. Re-attaching (or
     * attaching mid-run) reseeds the epoch-power baseline from the
     * model's current accumulators, so the first epoch reading is the
     * epoch's power — not the model's lifetime energy, which would
     * masquerade as a huge draw and trigger a spurious cap shed.
     */
    void attachPowerModel(DramPowerModel *power);

    /**
     * Multi-tenant runs: attach the tenant map. When the policy kind
     * is Qos this builds the arbiter over the map's quota weights.
     * Non-const: runtime quota changes (setTenantWeights) write the
     * map so reporting stays in step with arbitration.
     */
    void attachTenants(TenantMap *tenants);

    /** Runtime quota change: the QoS arbiter rebalances toward the
     *  new weights over the following epochs. */
    void setTenantWeights(const std::vector<double> &weights);

    /**
     * Attach the device whose channels run the QoS credit scheduler
     * (the in-package device — the contended tier). Entitlement shares
     * are pushed now and re-pushed at every transition commit, so
     * channel bandwidth credit tracks the live slice partition the
     * same way residency quota does. Null detaches.
     */
    void attachQosDevice(DramModel *dev);

    /** Attach (or detach with nullptr) the trace-event sink: resize
     *  targets, cap sheds, QoS decisions and commits are logged. */
    void attachTelemetry(Telemetry *telem) { telem_ = telem; }

    /**
     * Attach span tracing: transitions become begin/end spans on a
     * "resize" control track, each domain's drain batches land on
     * their own "migration.<i>" track, and per-tenant quota changes
     * are marked on "tenant.<name>" tracks. Call after addHost and
     * attachTenants. Null = off.
     */
    void attachSpanTrace(PageJournal *spans);

    /** Active slices owned by tenant @p t (0 when unpartitioned). */
    std::uint32_t
    slicesOwnedBy(TenantId t) const
    {
        return domains_.empty() ? 0 : domains_[0]->slicesOwnedBy(t);
    }

    /** Smoothed epoch power the cap policy sees (tests). */
    double epochPowerEwmaWatts() const { return ewmaPowerWatts_; }

    std::size_t numDomains() const { return domains_.size(); }
    ResizeDomain &domain(std::size_t i) { return *domains_[i]; }

    /** Called at the warmup/measure boundary: reset the epoch clock
     *  and begin evaluating the policy. */
    void onMeasureStart();

    /** Stop scheduling further epochs (tests drain the queue dry). */
    void stopEpochs() { epochsStopped_ = true; }

    /** Manually trigger a resize (external capacity manager). Returns
     *  false if one is already in flight or the size would not change.
     *  @p donor / @p receiver steer whose slices shrink or grow in a
     *  partitioned layout (kNoTenant = unrestricted). */
    bool requestResize(std::uint32_t targetSlices,
                       TenantId donor = kNoTenant,
                       TenantId receiver = kNoTenant);

    /** Move one of @p donor's slices to @p receiver (QoS decision or
     *  external quota manager). Returns false when busy or the donor
     *  owns nothing. */
    bool requestReassign(TenantId donor, TenantId receiver);

    bool resizeInProgress() const { return pendingDomains_ > 0; }

    std::uint32_t
    activeSlices() const
    {
        return domains_.empty() ? config_.hash.numSlices
                                : domains_[0]->activeSlices();
    }

    std::uint32_t totalSlices() const { return config_.hash.numSlices; }

    /** Test hook: assert every domain's host is internally consistent. */
    void verifyResidencyConsistent();

    void resetStats();

    // Aggregates over all domains' migration engines.
    std::uint64_t pagesMigrated() const;
    std::uint64_t dirtyPagesMigrated() const;
    std::uint64_t pagesSkipped() const;
    std::uint64_t tagBufferStalls() const;

    std::uint64_t resizesStarted() const { return statStarted_.value(); }
    std::uint64_t
    resizesCompleted() const
    {
        return statCompleted_.value();
    }

    std::uint64_t
    reassignsCompleted() const
    {
        return statReassigns_.value();
    }

    StatSet &stats() { return stats_; }

  private:
    void epochTick();

    /** Run the QoS arbiter for this epoch and apply its decision. */
    void qosTick(const ResizeEpochStats &epoch);

    /** Completion callback shared by resizes and reassignments;
     *  @p traceEvent names the commit event in the telemetry trace.
     *  @p capacityLoss marks a shrink: hosts are told so they can
     *  unfreeze replacement state (FBR decay). */
    std::function<void()> transitionDone(Counter &completions,
                                         const char *traceEvent,
                                         bool capacityLoss = false);

    /** Recompute tenant entitlement shares and push them to the QoS
     *  device (no-op without one). */
    void pushQosShares();

    /** Fraction of the device to gate for @p active of total slices. */
    double
    gatedFractionFor(std::uint32_t active) const
    {
        return 1.0 - static_cast<double>(active) /
                         static_cast<double>(totalSlices());
    }

    EventQueue &eq_;
    OsServices &os_;
    ResizeConfig config_;
    ResizePolicy policy_;
    DramPowerModel *power_ = nullptr;
    Telemetry *telem_ = nullptr;
    PageJournal *spans_ = nullptr;
    std::uint32_t spanTrack_ = 0;
    std::vector<std::uint32_t> tenantSpanTracks_;
    TenantMap *tenants_ = nullptr;
    DramModel *qosDev_ = nullptr;
    std::unique_ptr<QosArbiterPolicy> qos_;
    std::vector<std::unique_ptr<ResizeDomain>> domains_;

    std::uint64_t epochIndex_ = 0;
    bool epochsStopped_ = false;
    /** The controller's epoch clock; re-armed each epochTick(). */
    TickEvent epochEvent_{[this] { epochTick(); }};
    std::uint32_t pendingDomains_ = 0;
    /** Policy target awaiting an idle engine (deferred, not dropped). */
    std::optional<std::uint32_t> pendingTarget_;
    std::uint64_t prevAccesses_ = 0;
    std::uint64_t prevMisses_ = 0;
    std::array<std::uint64_t, kTenantBuckets> prevTenantAccesses_{};
    std::array<std::uint64_t, kTenantBuckets> prevTenantMisses_{};
    double prevTotalPJ_ = 0.0;
    double prevBgRefPJ_ = 0.0;
    /** Running (exponentially smoothed) epoch power — the reading the
     *  PowerCap policy sees. Replacement traffic arrives in bursts
     *  (tag-buffer fill -> batch PTE commit cadence), so the smoothing
     *  window must span several bursts or the policy would track the
     *  inter-burst baseline and flap across the cap. */
    double ewmaPowerWatts_ = 0.0;
    bool ewmaValid_ = false;
    static constexpr double kPowerEwmaAlpha = 0.1;
    /** Incremental-policy settling time: epochs to hold decisions
     *  after a transition completes. The EWMA is reseeded at
     *  completion, so the hold only needs to gather a couple of
     *  post-transition samples before deciding again. */
    std::uint64_t holdEpochs_ = 0;
    static constexpr std::uint64_t kSettleEpochs = 2;

    StatSet stats_;
    Counter &statStarted_;
    Counter &statCompleted_;
    Counter &statEpochs_;
    Counter &statDeferred_;
    Counter &statReassigns_;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_RESIZE_CONTROLLER_HH
