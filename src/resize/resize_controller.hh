/**
 * @file
 * System-wide coordination of DRAM-cache resizing.
 *
 * The controller owns one ResizeDomain per memory controller and an
 * epoch clock on the event queue. Every epoch it samples the demand
 * counters, asks the ResizePolicy for a target, and — when one comes
 * back — starts the transition on every domain simultaneously (the
 * slice layout must stay identical across controllers because pages
 * stripe over them). It also bridges the OS cooperation loop: when a
 * batch PTE update completes, stalled migration engines are kicked so
 * the drain resumes immediately instead of waiting out its back-off.
 */

#ifndef BANSHEE_RESIZE_RESIZE_CONTROLLER_HH
#define BANSHEE_RESIZE_RESIZE_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "os/os_services.hh"
#include "resize/resize_config.hh"
#include "resize/resize_domain.hh"
#include "resize/resize_policy.hh"

namespace banshee {

class ResizeController
{
  public:
    ResizeController(EventQueue &eq, OsServices &os,
                     const ResizeConfig &config);

    /** Register one scheme instance; builds and attaches its domain. */
    void addHost(ResizeHost &host, const std::string &name);

    std::size_t numDomains() const { return domains_.size(); }
    ResizeDomain &domain(std::size_t i) { return *domains_[i]; }

    /** Called at the warmup/measure boundary: reset the epoch clock
     *  and begin evaluating the policy. */
    void onMeasureStart();

    /** Stop scheduling further epochs (tests drain the queue dry). */
    void stopEpochs() { epochsStopped_ = true; }

    /** Manually trigger a resize (external capacity manager). Returns
     *  false if one is already in flight or the size would not change. */
    bool requestResize(std::uint32_t targetSlices);

    bool resizeInProgress() const { return pendingDomains_ > 0; }

    std::uint32_t
    activeSlices() const
    {
        return domains_.empty() ? config_.hash.numSlices
                                : domains_[0]->activeSlices();
    }

    std::uint32_t totalSlices() const { return config_.hash.numSlices; }

    /** Test hook: assert every domain's host is internally consistent. */
    void verifyResidencyConsistent();

    void resetStats();

    // Aggregates over all domains' migration engines.
    std::uint64_t pagesMigrated() const;
    std::uint64_t dirtyPagesMigrated() const;
    std::uint64_t pagesSkipped() const;
    std::uint64_t tagBufferStalls() const;

    std::uint64_t resizesStarted() const { return statStarted_.value(); }
    std::uint64_t
    resizesCompleted() const
    {
        return statCompleted_.value();
    }

    StatSet &stats() { return stats_; }

  private:
    void epochTick();

    EventQueue &eq_;
    OsServices &os_;
    ResizeConfig config_;
    ResizePolicy policy_;
    std::vector<std::unique_ptr<ResizeDomain>> domains_;

    std::uint64_t epochIndex_ = 0;
    bool epochsStopped_ = false;
    std::uint32_t pendingDomains_ = 0;
    /** Policy target awaiting an idle engine (deferred, not dropped). */
    std::optional<std::uint32_t> pendingTarget_;
    std::uint64_t prevAccesses_ = 0;
    std::uint64_t prevMisses_ = 0;

    StatSet stats_;
    Counter &statStarted_;
    Counter &statCompleted_;
    Counter &statEpochs_;
    Counter &statDeferred_;
};

} // namespace banshee

#endif // BANSHEE_RESIZE_RESIZE_CONTROLLER_HH
