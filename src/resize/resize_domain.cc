#include "resize/resize_domain.hh"

#include "common/log.hh"

namespace banshee {

ResizeDomain::ResizeDomain(EventQueue &eq, ResizeHost &host,
                           const ResizeConfig &config, std::string name)
    : host_(host), mapper_(config.hash),
      engine_(eq, host, config.migration, name + ".engine"),
      strategy_(config.strategy)
{
    const std::uint32_t numSets = host.numSets();
    sim_assert(numSets % config.hash.numSlices == 0,
               "sets (%u) not divisible into %u slices", numSets,
               config.hash.numSlices);
    setsPerSlice_ = numSets / config.hash.numSlices;
}

void
ResizeDomain::resizeTo(std::uint32_t targetActive,
                       std::function<void()> onDone)
{
    sim_assert(!engine_.active(), "resize while a drain is in flight");
    sim_assert(targetActive >= 1 && targetActive <= mapper_.numSlices(),
               "bad resize target %u", targetActive);
    sim_assert(targetActive != mapper_.activeSlices(),
               "resize to the current size");

    // Flip slice activation first so the post-resize mapping is
    // available while scanning for pages that must move.
    if (targetActive < mapper_.activeSlices()) {
        for (std::uint32_t s = mapper_.numSlices();
             s-- > 0 && mapper_.activeSlices() > targetActive;) {
            if (mapper_.isActive(s))
                mapper_.setActive(s, false);
        }
    } else {
        for (std::uint32_t s = 0;
             s < mapper_.numSlices() && mapper_.activeSlices() < targetActive;
             ++s) {
            if (!mapper_.isActive(s))
                mapper_.setActive(s, true);
        }
    }

    // Queue every resident page whose home set changed (consistent
    // hashing keeps that to ~K/N of residents); the FlushAll baseline
    // drains everything, the way a mod-N indexed cache would have to.
    host_.forEachResident([this](std::uint32_t set, std::uint32_t way,
                                 PageNum page, bool dirty) {
        (void)dirty;
        const std::uint32_t slice = mapper_.sliceOf(page);
        const bool moved = sliceOfSet(set) != slice;
        if (strategy_ == ResizeStrategy::FlushAll || moved) {
            pinned_[page] = set;
            engine_.enqueue(set, way, page);
        }
    });

    engine_.start([this](PageNum page) { pinned_.erase(page); },
                  std::move(onDone));
}

} // namespace banshee
