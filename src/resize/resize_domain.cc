#include "resize/resize_domain.hh"

#include "common/log.hh"

namespace banshee {

ResizeDomain::ResizeDomain(EventQueue &eq, ResizeHost &host,
                           const ResizeConfig &config, std::string name)
    : host_(host), mapper_(config.hash),
      engine_(eq, host, config.migration, name + ".engine"),
      strategy_(config.strategy)
{
    const std::uint32_t numSets = host.numSets();
    sim_assert(numSets % config.hash.numSlices == 0,
               "sets (%u) not divisible into %u slices", numSets,
               config.hash.numSlices);
    setsPerSlice_ = numSets / config.hash.numSlices;

    // Multi-tenant layout: apportion the slices over the quota
    // weights (largest remainder, one-slice floor) and hand them out
    // in contiguous id runs so every domain builds the same layout.
    if (!config.tenantWeights.empty()) {
        partitioned_ = true;
        const auto counts =
            apportionSlices(config.tenantWeights, config.hash.numSlices);
        std::uint32_t next = 0;
        for (std::size_t t = 0; t < counts.size(); ++t) {
            for (std::uint32_t i = 0; i < counts[t]; ++i)
                mapper_.setSliceTenant(next++, static_cast<TenantId>(t));
        }
    }
}

void
ResizeDomain::startDrain(std::function<void()> onDone)
{
    // Queue every resident page whose home set changed (consistent
    // hashing keeps that to ~K/N of residents); the FlushAll baseline
    // drains everything, the way a mod-N indexed cache would have to.
    host_.forEachResident([this](std::uint32_t set, std::uint32_t way,
                                 PageNum page, bool dirty) {
        (void)dirty;
        const std::uint32_t slice =
            mapper_.sliceOf(page, partitioned_ ? host_.pageTenant(page)
                                               : kNoTenant);
        const bool moved = sliceOfSet(set) != slice;
        if (strategy_ == ResizeStrategy::FlushAll || moved) {
            pinned_[page] = set;
            engine_.enqueue(set, way, page);
        }
    });

    // One bump covers the activation/ownership flips the caller just
    // made plus the pin inserts above: no demand access can interleave
    // between the flips and here (all synchronous), so memoized
    // mappings from before the transition are invalidated exactly
    // once. Pin drops during the drain bump individually below.
    ++layoutGeneration_;

    engine_.start(
        [this](PageNum page) {
            pinned_.erase(page);
            ++layoutGeneration_;
        },
        std::move(onDone));
}

void
ResizeDomain::resizeTo(std::uint32_t targetActive,
                       std::function<void()> onDone, TenantId donor,
                       TenantId receiver)
{
    sim_assert(!engine_.active(), "resize while a drain is in flight");
    sim_assert(targetActive >= 1 && targetActive <= mapper_.numSlices(),
               "bad resize target %u", targetActive);
    sim_assert(targetActive != mapper_.activeSlices(),
               "resize to the current size");

    // Flip slice activation first so the post-resize mapping is
    // available while scanning for pages that must move.
    if (targetActive < mapper_.activeSlices()) {
        // Two passes: the donor's slices first (QoS shed), then any
        // active slice, both highest-id first for determinism. In a
        // partitioned layout the unrestricted pass still respects a
        // one-slice floor per tenant: a scalar policy (PowerCap,
        // Adaptive) composed with quotas must not deactivate a
        // tenant's last slice — that would silently void its quota
        // through the sliceOf cross-tenant fallback. The shrink then
        // simply stops short of the target.
        auto deactivate = [&](TenantId owner) {
            for (std::uint32_t s = mapper_.numSlices();
                 s-- > 0 && mapper_.activeSlices() > targetActive;) {
                if (!mapper_.isActive(s))
                    continue;
                if (owner != kNoTenant && mapper_.sliceTenant(s) != owner)
                    continue;
                if (partitioned_ &&
                    mapper_.slicesOwnedBy(mapper_.sliceTenant(s)) <= 1)
                    continue;
                mapper_.setActive(s, false);
            }
        };
        if (donor != kNoTenant)
            deactivate(donor);
        deactivate(kNoTenant);
    } else {
        for (std::uint32_t s = 0;
             s < mapper_.numSlices() && mapper_.activeSlices() < targetActive;
             ++s) {
            if (!mapper_.isActive(s)) {
                mapper_.setActive(s, true);
                if (partitioned_ && receiver != kNoTenant)
                    mapper_.setSliceTenant(s, receiver);
            }
        }
    }

    startDrain(std::move(onDone));
}

std::uint32_t
ResizeDomain::pickDonorSlice(TenantId donor) const
{
    for (std::uint32_t s = mapper_.numSlices(); s-- > 0;) {
        if (mapper_.isActive(s) && mapper_.sliceTenant(s) == donor)
            return s;
    }
    return mapper_.numSlices();
}

void
ResizeDomain::reassignSlice(std::uint32_t slice, TenantId to,
                            std::function<void()> onDone)
{
    sim_assert(!engine_.active(), "reassign while a drain is in flight");
    sim_assert(partitioned_, "reassignment needs a partitioned layout");
    sim_assert(slice < mapper_.numSlices() && mapper_.isActive(slice),
               "reassignment of an invalid slice %u", slice);

    mapper_.setSliceTenant(slice, to);
    startDrain(std::move(onDone));
}

} // namespace banshee
