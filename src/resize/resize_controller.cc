#include "resize/resize_controller.hh"

#include "common/log.hh"

namespace banshee {

ResizeController::ResizeController(EventQueue &eq, OsServices &os,
                                   const ResizeConfig &config)
    : eq_(eq), os_(os), config_(config), policy_(config.policy),
      stats_("resize"),
      statStarted_(stats_.counter("resizesStarted")),
      statCompleted_(stats_.counter("resizesCompleted")),
      statEpochs_(stats_.counter("epochsEvaluated")),
      statDeferred_(stats_.counter("decisionsDeferred"))
{
    sim_assert(config.enabled, "controller built with resize disabled");
    // When the batch PTE update finishes, remap slots have been
    // harvested from every tag buffer: resume stalled drains now.
    os_.registerUpdateListener([this] {
        for (auto &d : domains_)
            d->engine().kick();
    });
}

void
ResizeController::addHost(ResizeHost &host, const std::string &name)
{
    domains_.push_back(
        std::make_unique<ResizeDomain>(eq_, host, config_, name));
    host.attachResizeDomain(domains_.back().get());
}

void
ResizeController::onMeasureStart()
{
    epochIndex_ = 0;
    prevAccesses_ = 0;
    prevMisses_ = 0;
    for (auto &d : domains_) {
        prevAccesses_ += d->host().demandAccesses();
        prevMisses_ += d->host().demandMisses();
    }
    eq_.scheduleAfter(config_.policy.epoch, [this] { epochTick(); });
}

void
ResizeController::epochTick()
{
    ++statEpochs_;

    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    for (auto &d : domains_) {
        accesses += d->host().demandAccesses();
        misses += d->host().demandMisses();
    }
    ResizeEpochStats epoch;
    epoch.accesses = accesses - prevAccesses_;
    epoch.misses = misses - prevMisses_;
    prevAccesses_ = accesses;
    prevMisses_ = misses;

    const auto target = policy_.decide(epochIndex_, epoch, activeSlices(),
                                       totalSlices());
    if (target.has_value())
        pendingTarget_ = *target;

    // A target that arrives while a previous transition is still
    // draining is deferred and retried every epoch until it applies
    // (or becomes moot), so scheduled steps are never silently lost.
    if (pendingTarget_.has_value()) {
        if (*pendingTarget_ == activeSlices()) {
            pendingTarget_.reset();
        } else if (requestResize(*pendingTarget_)) {
            pendingTarget_.reset();
        } else {
            ++statDeferred_;
        }
    }

    ++epochIndex_;
    if (!epochsStopped_)
        eq_.scheduleAfter(config_.policy.epoch, [this] { epochTick(); });
}

bool
ResizeController::requestResize(std::uint32_t targetSlices)
{
    if (resizeInProgress() || targetSlices == activeSlices() ||
        targetSlices < 1 || targetSlices > totalSlices()) {
        return false;
    }
    ++statStarted_;
    inform("resize: %u -> %u active slices (%s)", activeSlices(),
           targetSlices, resizeStrategyName(config_.strategy));

    pendingDomains_ = static_cast<std::uint32_t>(domains_.size());
    for (auto &d : domains_) {
        d->resizeTo(targetSlices, [this] {
            sim_assert(pendingDomains_ > 0, "stray drain completion");
            if (--pendingDomains_ == 0) {
                ++statCompleted_;
                // Fold the transition's remaps into the PTEs promptly
                // so TLBs reconverge on the new layout.
                os_.requestResizeCommit();
            }
        });
    }
    return true;
}

void
ResizeController::verifyResidencyConsistent()
{
    for (auto &d : domains_)
        d->host().verifyResidencyConsistent();
}

void
ResizeController::resetStats()
{
    stats_.reset();
    for (auto &d : domains_)
        d->engine().stats().reset();
}

std::uint64_t
ResizeController::pagesMigrated() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().pagesDrained();
    return n;
}

std::uint64_t
ResizeController::dirtyPagesMigrated() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().dirtyPagesDrained();
    return n;
}

std::uint64_t
ResizeController::pagesSkipped() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().pagesSkipped();
    return n;
}

std::uint64_t
ResizeController::tagBufferStalls() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().tagBufferStalls();
    return n;
}

} // namespace banshee
