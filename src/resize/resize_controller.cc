#include "resize/resize_controller.hh"

#include "common/log.hh"
#include "common/units.hh"

namespace banshee {

ResizeController::ResizeController(EventQueue &eq, OsServices &os,
                                   const ResizeConfig &config)
    : eq_(eq), os_(os), config_(config), policy_(config.policy),
      stats_("resize"),
      statStarted_(stats_.counter("resizesStarted")),
      statCompleted_(stats_.counter("resizesCompleted")),
      statEpochs_(stats_.counter("epochsEvaluated")),
      statDeferred_(stats_.counter("decisionsDeferred"))
{
    sim_assert(config.enabled, "controller built with resize disabled");
    // When the batch PTE update finishes, remap slots have been
    // harvested from every tag buffer: resume stalled drains now.
    os_.registerUpdateListener([this] {
        for (auto &d : domains_)
            d->engine().kick();
    });
}

void
ResizeController::addHost(ResizeHost &host, const std::string &name)
{
    domains_.push_back(
        std::make_unique<ResizeDomain>(eq_, host, config_, name));
    host.attachResizeDomain(domains_.back().get());
}

void
ResizeController::attachPowerModel(DramPowerModel *power)
{
    power_ = power;
    if (power_) {
        power_->setGatedSliceFraction(gatedFractionFor(activeSlices()),
                                      eq_.now());
    }
}

void
ResizeController::onMeasureStart()
{
    epochIndex_ = 0;
    prevAccesses_ = 0;
    prevMisses_ = 0;
    for (auto &d : domains_) {
        prevAccesses_ += d->host().demandAccesses();
        prevMisses_ += d->host().demandMisses();
    }
    // The measure boundary zeroes the power model's accumulators
    // (System::resetAllStats), so epoch energy deltas restart at 0.
    prevTotalPJ_ = 0.0;
    prevBgRefPJ_ = 0.0;
    ewmaValid_ = false;
    eq_.scheduleAfter(config_.policy.epoch, [this] { epochTick(); });
}

void
ResizeController::epochTick()
{
    ++statEpochs_;

    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    for (auto &d : domains_) {
        accesses += d->host().demandAccesses();
        misses += d->host().demandMisses();
    }
    ResizeEpochStats epoch;
    epoch.accesses = accesses - prevAccesses_;
    epoch.misses = misses - prevMisses_;
    prevAccesses_ = accesses;
    prevMisses_ = misses;

    if (power_) {
        const double totalPJ = power_->totalEnergyPJ(eq_.now());
        const double bgRefPJ = power_->energy().backgroundPJ() +
                               power_->energy().refreshPJ();
        const double epochNs = static_cast<double>(config_.policy.epoch) *
                               1e9 / kCoreFreqHz;
        // pJ / ns = mW.
        const double rawWatts =
            (totalPJ - prevTotalPJ_) / epochNs * 1e-3;
        epoch.bgRefreshWatts = (bgRefPJ - prevBgRefPJ_) / epochNs * 1e-3;
        prevTotalPJ_ = totalPJ;
        prevBgRefPJ_ = bgRefPJ;
        ewmaPowerWatts_ = ewmaValid_
                              ? kPowerEwmaAlpha * rawWatts +
                                    (1.0 - kPowerEwmaAlpha) *
                                        ewmaPowerWatts_
                              : rawWatts;
        ewmaValid_ = true;
        epoch.avgPowerWatts = ewmaPowerWatts_;
    }

    const auto target = policy_.decide(epochIndex_, epoch, activeSlices(),
                                       totalSlices());
    if (config_.policy.kind == ResizePolicyConfig::Kind::Schedule) {
        if (target.has_value())
            pendingTarget_ = *target;
    } else {
        // Incremental policies (Adaptive, PowerCap) re-decide from
        // fresh measurements every epoch: carrying a stale target
        // across a drain would overshoot the steady state, and epochs
        // measured mid-transition (or before the smoothed reading has
        // settled on the new layout) are transitional — hold.
        const bool settling = resizeInProgress() || holdEpochs_ > 0;
        if (holdEpochs_ > 0)
            --holdEpochs_;
        pendingTarget_ = settling ? std::nullopt : target;
    }

    // A target that arrives while a previous transition is still
    // draining is deferred and retried every epoch until it applies
    // (or becomes moot), so scheduled steps are never silently lost.
    if (pendingTarget_.has_value()) {
        if (*pendingTarget_ == activeSlices()) {
            pendingTarget_.reset();
        } else if (requestResize(*pendingTarget_)) {
            pendingTarget_.reset();
        } else {
            ++statDeferred_;
        }
    }

    ++epochIndex_;
    if (!epochsStopped_)
        eq_.scheduleAfter(config_.policy.epoch, [this] { epochTick(); });
}

bool
ResizeController::requestResize(std::uint32_t targetSlices)
{
    if (resizeInProgress() || targetSlices == activeSlices() ||
        targetSlices < 1 || targetSlices > totalSlices()) {
        return false;
    }
    ++statStarted_;
    inform("resize: %u -> %u active slices (%s)", activeSlices(),
           targetSlices, resizeStrategyName(config_.strategy));

    // Growing? The incoming slices must power up (and refresh) before
    // any data lands in them. Shrinking slices stay powered until the
    // drain finishes — they hold live data throughout.
    if (power_ && targetSlices > activeSlices()) {
        power_->setGatedSliceFraction(gatedFractionFor(targetSlices),
                                      eq_.now());
    }

    pendingDomains_ = static_cast<std::uint32_t>(domains_.size());
    for (auto &d : domains_) {
        d->resizeTo(targetSlices, [this] {
            sim_assert(pendingDomains_ > 0, "stray drain completion");
            if (--pendingDomains_ == 0) {
                ++statCompleted_;
                holdEpochs_ = kSettleEpochs;
                // Reseed the running average: samples taken under the
                // old slice layout (and the drain's migration bursts)
                // would otherwise dominate the slow EWMA for ~1/alpha
                // epochs and drive redundant decisions.
                ewmaValid_ = false;
                if (power_) {
                    power_->setGatedSliceFraction(
                        gatedFractionFor(activeSlices()), eq_.now());
                }
                // Fold the transition's remaps into the PTEs promptly
                // so TLBs reconverge on the new layout.
                os_.requestResizeCommit();
            }
        });
    }
    return true;
}

void
ResizeController::verifyResidencyConsistent()
{
    for (auto &d : domains_)
        d->host().verifyResidencyConsistent();
}

void
ResizeController::resetStats()
{
    stats_.reset();
    for (auto &d : domains_)
        d->engine().stats().reset();
}

std::uint64_t
ResizeController::pagesMigrated() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().pagesDrained();
    return n;
}

std::uint64_t
ResizeController::dirtyPagesMigrated() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().dirtyPagesDrained();
    return n;
}

std::uint64_t
ResizeController::pagesSkipped() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().pagesSkipped();
    return n;
}

std::uint64_t
ResizeController::tagBufferStalls() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().tagBufferStalls();
    return n;
}

} // namespace banshee
