#include "resize/resize_controller.hh"

#include "common/log.hh"
#include "common/units.hh"
#include "dram/dram_model.hh"
#include "telemetry/span_trace.hh"
#include "telemetry/telemetry.hh"

namespace banshee {

ResizeController::ResizeController(EventQueue &eq, OsServices &os,
                                   const ResizeConfig &config)
    : eq_(eq), os_(os), config_(config), policy_(config.policy),
      stats_("resize"),
      statStarted_(stats_.counter("resizesStarted")),
      statCompleted_(stats_.counter("resizesCompleted")),
      statEpochs_(stats_.counter("epochsEvaluated")),
      statDeferred_(stats_.counter("decisionsDeferred")),
      statReassigns_(stats_.counter("slicesReassigned"))
{
    sim_assert(config.enabled, "controller built with resize disabled");
    // When the batch PTE update finishes, remap slots have been
    // harvested from every tag buffer: resume stalled drains now.
    os_.registerUpdateListener([this] {
        for (auto &d : domains_)
            d->engine().kick();
    });
}

void
ResizeController::addHost(ResizeHost &host, const std::string &name)
{
    domains_.push_back(
        std::make_unique<ResizeDomain>(eq_, host, config_, name));
    host.attachResizeDomain(domains_.back().get());
}

void
ResizeController::attachPowerModel(DramPowerModel *power)
{
    power_ = power;
    // Seed the epoch-power baseline from the model's *current*
    // accumulators and restart the EWMA at the next reading. Without
    // this, a (re-)attach mid-run would compute the first epoch's
    // power as (lifetime energy - 0) / epoch — an enormous phantom
    // draw that trips the cap policy into a spurious cold-start shed.
    ewmaValid_ = false;
    if (power_) {
        prevTotalPJ_ = power_->totalEnergyPJ(eq_.now());
        prevBgRefPJ_ = power_->energy().backgroundPJ() +
                       power_->energy().refreshPJ();
        power_->setGatedSliceFraction(gatedFractionFor(activeSlices()),
                                      eq_.now());
    }
}

void
ResizeController::attachTenants(TenantMap *tenants)
{
    tenants_ = tenants;
    if (tenants_ && config_.policy.kind == ResizePolicyConfig::Kind::Qos) {
        qos_ = std::make_unique<QosArbiterPolicy>(config_.policy,
                                                  tenants_->weights());
    }
}

void
ResizeController::attachSpanTrace(PageJournal *spans)
{
    spans_ = spans;
    tenantSpanTracks_.clear();
    if (!spans_)
        return;
    spanTrack_ = spans_->addControlTrack("resize");
    // ResizeDomains have no public name; index-named tracks keep the
    // drain batches of each memory controller apart.
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        domains_[i]->engine().setSpanTrace(
            spans_,
            spans_->addControlTrack("migration." + std::to_string(i)));
    }
    if (tenants_) {
        for (std::uint32_t t = 0; t < tenants_->numTenants(); ++t) {
            tenantSpanTracks_.push_back(spans_->addControlTrack(
                "tenant." +
                tenants_->config(static_cast<TenantId>(t)).name));
        }
    }
}

void
ResizeController::setTenantWeights(const std::vector<double> &weights)
{
    sim_assert(qos_ != nullptr, "weight update without a QoS arbiter");
    sim_assert(weights.size() == tenants_->numTenants(),
               "weight update changes the tenant count");
    // Keep the TenantMap in step: it is what reports (RunResult,
    // JSON) and what future arbiter rebuilds read — a quota change
    // must not leave the two weight sources divergent.
    for (std::uint32_t t = 0; t < tenants_->numTenants(); ++t)
        tenants_->setWeight(static_cast<TenantId>(t), weights[t]);
    qos_->setWeights(weights);
}

void
ResizeController::attachQosDevice(DramModel *dev)
{
    qosDev_ = dev;
    pushQosShares();
}

void
ResizeController::pushQosShares()
{
    if (!qosDev_ || !tenants_)
        return;
    std::array<double, kMaxTenants> shares{};
    const std::uint32_t n = std::min<std::uint32_t>(
        tenants_->numTenants(), kMaxTenants);
    // Bandwidth entitlement follows the live slice partition when one
    // exists (so every reassign/resize commit rebalances channel
    // credit alongside residency), else the configured quota weights.
    std::uint32_t ownedTotal = 0;
    for (std::uint32_t t = 0; t < n; ++t)
        ownedTotal += slicesOwnedBy(static_cast<TenantId>(t));
    if (ownedTotal > 0) {
        for (std::uint32_t t = 0; t < n; ++t) {
            shares[t] =
                static_cast<double>(slicesOwnedBy(static_cast<TenantId>(t))) /
                static_cast<double>(ownedTotal);
        }
    } else {
        double wsum = 0.0;
        for (std::uint32_t t = 0; t < n; ++t)
            wsum += tenants_->weight(static_cast<TenantId>(t));
        if (wsum <= 0.0)
            return;
        for (std::uint32_t t = 0; t < n; ++t)
            shares[t] = tenants_->weight(static_cast<TenantId>(t)) / wsum;
    }
    qosDev_->setQosShares(shares);
}

void
ResizeController::onMeasureStart()
{
    epochIndex_ = 0;
    prevAccesses_ = 0;
    prevMisses_ = 0;
    prevTenantAccesses_.fill(0);
    prevTenantMisses_.fill(0);
    for (auto &d : domains_) {
        prevAccesses_ += d->host().demandAccesses();
        prevMisses_ += d->host().demandMisses();
        if (tenants_) {
            for (std::uint32_t t = 0; t < tenants_->numTenants(); ++t) {
                prevTenantAccesses_[t] +=
                    d->host().demandAccessesOf(static_cast<TenantId>(t));
                prevTenantMisses_[t] +=
                    d->host().demandMissesOf(static_cast<TenantId>(t));
            }
        }
    }
    // The measure boundary zeroes the power model's accumulators
    // (System::resetAllStats), so epoch energy deltas restart at 0.
    prevTotalPJ_ = 0.0;
    prevBgRefPJ_ = 0.0;
    ewmaValid_ = false;
    eq_.scheduleAfter(epochEvent_, config_.policy.epoch);
}

void
ResizeController::epochTick()
{
    ++statEpochs_;

    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    for (auto &d : domains_) {
        accesses += d->host().demandAccesses();
        misses += d->host().demandMisses();
    }
    ResizeEpochStats epoch;
    epoch.accesses = accesses - prevAccesses_;
    epoch.misses = misses - prevMisses_;
    prevAccesses_ = accesses;
    prevMisses_ = misses;

    if (power_) {
        const double totalPJ = power_->totalEnergyPJ(eq_.now());
        const double bgRefPJ = power_->energy().backgroundPJ() +
                               power_->energy().refreshPJ();
        const double epochNs = static_cast<double>(config_.policy.epoch) *
                               1e9 / kCoreFreqHz;
        // pJ / ns = mW.
        const double rawWatts =
            (totalPJ - prevTotalPJ_) / epochNs * 1e-3;
        epoch.bgRefreshWatts = (bgRefPJ - prevBgRefPJ_) / epochNs * 1e-3;
        prevTotalPJ_ = totalPJ;
        prevBgRefPJ_ = bgRefPJ;
        ewmaPowerWatts_ = ewmaValid_
                              ? kPowerEwmaAlpha * rawWatts +
                                    (1.0 - kPowerEwmaAlpha) *
                                        ewmaPowerWatts_
                              : rawWatts;
        ewmaValid_ = true;
        epoch.avgPowerWatts = ewmaPowerWatts_;
    }

    if (qos_) {
        qosTick(epoch);
    } else {
        const auto target = policy_.decide(epochIndex_, epoch,
                                           activeSlices(), totalSlices());
        if (telem_ && target.has_value() && *target != activeSlices()) {
            if (config_.policy.kind == ResizePolicyConfig::Kind::PowerCap &&
                *target < activeSlices()) {
                telem_->event("powercap_shed",
                              {{"from", activeSlices()},
                               {"to", *target},
                               {"watts", epoch.avgPowerWatts},
                               {"capWatts", config_.policy.powerCapWatts}});
            } else {
                telem_->event("resize_target",
                              {{"from", activeSlices()}, {"to", *target}});
            }
        }
        if (config_.policy.kind == ResizePolicyConfig::Kind::Schedule) {
            if (target.has_value())
                pendingTarget_ = *target;
        } else {
            // Incremental policies (Adaptive, PowerCap) re-decide from
            // fresh measurements every epoch: carrying a stale target
            // across a drain would overshoot the steady state, and
            // epochs measured mid-transition (or before the smoothed
            // reading has settled on the new layout) are transitional
            // — hold.
            const bool settling = resizeInProgress() || holdEpochs_ > 0;
            if (holdEpochs_ > 0)
                --holdEpochs_;
            pendingTarget_ = settling ? std::nullopt : target;
        }

        // A target that arrives while a previous transition is still
        // draining is deferred and retried every epoch until it
        // applies (or becomes moot), so scheduled steps are never
        // silently lost.
        if (pendingTarget_.has_value()) {
            if (*pendingTarget_ == activeSlices()) {
                pendingTarget_.reset();
            } else if (requestResize(*pendingTarget_)) {
                pendingTarget_.reset();
            } else {
                ++statDeferred_;
            }
        }
    }

    ++epochIndex_;
    if (!epochsStopped_)
        eq_.scheduleAfter(epochEvent_, config_.policy.epoch);
}

void
ResizeController::qosTick(const ResizeEpochStats &epoch)
{
    const std::uint32_t n = tenants_->numTenants();

    // Per-tenant demand deltas, kept current every epoch (even while
    // settling) so a post-transition decision sees one epoch's worth.
    std::vector<TenantEpochStats> ts(n);
    for (std::uint32_t t = 0; t < n; ++t) {
        std::uint64_t acc = 0;
        std::uint64_t mis = 0;
        for (auto &d : domains_) {
            acc += d->host().demandAccessesOf(static_cast<TenantId>(t));
            mis += d->host().demandMissesOf(static_cast<TenantId>(t));
        }
        ts[t].accesses = acc - prevTenantAccesses_[t];
        ts[t].misses = mis - prevTenantMisses_[t];
        prevTenantAccesses_[t] = acc;
        prevTenantMisses_[t] = mis;
    }

    // Like the incremental scalar policies: decisions made from
    // mid-transition measurements are transitional — hold.
    const bool settling = resizeInProgress() || holdEpochs_ > 0;
    if (holdEpochs_ > 0)
        --holdEpochs_;
    if (settling)
        return;

    std::vector<std::uint32_t> owned(n);
    for (std::uint32_t t = 0; t < n; ++t)
        owned[t] = slicesOwnedBy(static_cast<TenantId>(t));

    const QosDecision d =
        qos_->decide(ts, epoch, owned, activeSlices(), totalSlices());
    if (spans_ && !d.empty()) {
        spans_->controlInstant(
            spanTrack_, "qos_decision", eq_.now(),
            {{"reason", qosReasonName(d.reason)},
             {"donor", static_cast<std::uint32_t>(d.donor)},
             {"receiver", static_cast<std::uint32_t>(d.receiver)}});
    }
    if (telem_ && !d.empty()) {
        if (d.targetActive.has_value()) {
            telem_->event("qos_resize",
                          {{"from", activeSlices()},
                           {"to", *d.targetActive},
                           {"donor", d.donor},
                           {"receiver", d.receiver},
                           {"reason", qosReasonName(d.reason)},
                           {"watts", epoch.avgPowerWatts},
                           {"capWatts", config_.policy.powerCapWatts}});
        } else if (d.reassign()) {
            telem_->event("qos_reassign",
                          {{"donor", d.donor},
                           {"receiver", d.receiver},
                           {"reason", qosReasonName(d.reason)}});
        }
    }
    if (d.targetActive.has_value())
        requestResize(*d.targetActive, d.donor, d.receiver);
    else if (d.reassign())
        requestReassign(d.donor, d.receiver);
}

std::function<void()>
ResizeController::transitionDone(Counter &completions,
                                 const char *traceEvent,
                                 bool capacityLoss)
{
    return [this, &completions, traceEvent, capacityLoss] {
        sim_assert(pendingDomains_ > 0, "stray drain completion");
        if (--pendingDomains_ == 0) {
            ++completions;
            if (capacityLoss) {
                // The drained slices' pages are gone, but their FBR
                // counters would still outrank every newcomer: let
                // the host decay them so the survivors re-earn their
                // residency against re-admission candidates.
                for (auto &d : domains_)
                    d->host().onCapacityLoss();
            }
            // Entitlements may have moved with the slices.
            pushQosShares();
            if (telem_) {
                telem_->event(traceEvent,
                              {{"activeSlices", activeSlices()},
                               {"pagesMigrated", pagesMigrated()},
                               {"tagBufferStalls", tagBufferStalls()}});
            }
            if (spans_) {
                spans_->controlEnd(
                    spanTrack_, eq_.now(),
                    {{"activeSlices", activeSlices()},
                     {"pagesMigrated", pagesMigrated()},
                     {"tagBufferStalls", tagBufferStalls()}});
                // Quota marks on every tenant track: the commit is
                // when a reassigned slice actually changes hands.
                for (std::uint32_t t = 0; t < tenantSpanTracks_.size();
                     ++t) {
                    spans_->controlInstant(
                        tenantSpanTracks_[t], "quota", eq_.now(),
                        {{"slices",
                          slicesOwnedBy(static_cast<TenantId>(t))}});
                }
            }
            holdEpochs_ = kSettleEpochs;
            // Reseed the running average: samples taken under the
            // old slice layout (and the drain's migration bursts)
            // would otherwise dominate the slow EWMA for ~1/alpha
            // epochs and drive redundant decisions.
            ewmaValid_ = false;
            if (power_) {
                power_->setGatedSliceFraction(
                    gatedFractionFor(activeSlices()), eq_.now());
            }
            // Fold the transition's remaps into the PTEs promptly
            // so TLBs reconverge on the new layout.
            os_.requestResizeCommit();
        }
    };
}

bool
ResizeController::requestResize(std::uint32_t targetSlices, TenantId donor,
                                TenantId receiver)
{
    if (resizeInProgress() || targetSlices == activeSlices() ||
        targetSlices < 1 || targetSlices > totalSlices()) {
        return false;
    }
    ++statStarted_;
    inform("resize: %u -> %u active slices (%s)", activeSlices(),
           targetSlices, resizeStrategyName(config_.strategy));
    if (telem_) {
        telem_->event("resize_start",
                      {{"from", activeSlices()},
                       {"to", targetSlices},
                       {"strategy", resizeStrategyName(config_.strategy)},
                       {"donor", donor},
                       {"receiver", receiver}});
    }
    if (spans_) {
        spans_->controlBegin(
            spanTrack_, "resize", eq_.now(),
            {{"from", activeSlices()},
             {"to", targetSlices},
             {"strategy", resizeStrategyName(config_.strategy)},
             {"donor", static_cast<std::uint32_t>(donor)},
             {"receiver", static_cast<std::uint32_t>(receiver)}});
    }

    // Growing? The incoming slices must power up (and refresh) before
    // any data lands in them. Shrinking slices stay powered until the
    // drain finishes — they hold live data throughout.
    if (power_ && targetSlices > activeSlices()) {
        power_->setGatedSliceFraction(gatedFractionFor(targetSlices),
                                      eq_.now());
    }

    const bool capacityLoss = targetSlices < activeSlices();
    pendingDomains_ = static_cast<std::uint32_t>(domains_.size());
    for (auto &d : domains_)
        d->resizeTo(targetSlices,
                    transitionDone(statCompleted_, "resize_commit",
                                   capacityLoss),
                    donor, receiver);
    return true;
}

bool
ResizeController::requestReassign(TenantId donor, TenantId receiver)
{
    if (resizeInProgress() || donor == receiver || donor == kNoTenant ||
        receiver == kNoTenant || domains_.empty()) {
        return false;
    }
    // The arbiter checks the floor before proposing, but this entry
    // point is public (external quota managers): never strip a donor
    // below its slice floor — quota is a guarantee, not a default.
    const std::uint32_t floor =
        std::max<std::uint32_t>(config_.policy.minSlicesPerTenant, 1);
    if (domains_[0]->slicesOwnedBy(donor) <= floor)
        return false;
    // Domain 0 picks the slice; the layouts are in lockstep, so the
    // same id is the donor's on every domain.
    const std::uint32_t slice = domains_[0]->pickDonorSlice(donor);
    if (slice >= totalSlices())
        return false;
    inform("qos: slice %u moves tenant %u -> %u", slice, donor, receiver);
    if (spans_) {
        spans_->controlBegin(
            spanTrack_, "reassign", eq_.now(),
            {{"slice", slice},
             {"donor", static_cast<std::uint32_t>(donor)},
             {"receiver", static_cast<std::uint32_t>(receiver)}});
    }

    pendingDomains_ = static_cast<std::uint32_t>(domains_.size());
    for (auto &d : domains_)
        d->reassignSlice(slice, receiver,
                         transitionDone(statReassigns_, "reassign_commit"));
    return true;
}

void
ResizeController::verifyResidencyConsistent()
{
    for (auto &d : domains_)
        d->host().verifyResidencyConsistent();
}

void
ResizeController::resetStats()
{
    stats_.reset();
    for (auto &d : domains_)
        d->engine().stats().reset();
}

std::uint64_t
ResizeController::pagesMigrated() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().pagesDrained();
    return n;
}

std::uint64_t
ResizeController::dirtyPagesMigrated() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().dirtyPagesDrained();
    return n;
}

std::uint64_t
ResizeController::pagesSkipped() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().pagesSkipped();
    return n;
}

std::uint64_t
ResizeController::tagBufferStalls() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d->engine().tagBufferStalls();
    return n;
}

} // namespace banshee
