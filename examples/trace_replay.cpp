/**
 * @file
 * Domain scenario 3: driving the simulator with a user-supplied
 * memory trace instead of the synthetic generators — the integration
 * path for users who have PIN/DynamoRIO traces of their own
 * applications.
 *
 * With no arguments the example synthesizes a demonstration trace
 * (a blocked matrix-like sweep), writes it to a temp file, then
 * replays it on every core under Banshee and Alloy and compares.
 *
 * Usage: trace_replay [trace-file]
 */

#include <cstdio>
#include <string>

#include "sim/report.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "workload/trace.hh"

using namespace banshee;

namespace {

/** Build a demonstration trace: hot tiles + a cold stream. */
std::string
makeDemoTrace()
{
    std::vector<TraceRecord> records;
    Rng rng(99);
    Addr hotBase = 0x10000000;
    Addr coldBase = 0x80000000;
    Addr coldPos = 0;
    for (int i = 0; i < 200000; ++i) {
        TraceRecord r;
        if (i % 4 != 0) {
            // Hot tile: 2 MB region, skewed reuse.
            r.addr = hotBase + (rng.nextBelow(1 << 15) * 64);
            r.flags = rng.nextBool(0.2) ? TraceRecord::kWrite : 0;
        } else {
            // Cold stream over 256 MB.
            r.addr = coldBase + coldPos;
            coldPos = (coldPos + 64) % (256ull << 20);
            r.flags = 0;
        }
        r.nonMemBefore = static_cast<std::uint8_t>(rng.nextBelow(7));
        records.push_back(r);
    }
    const std::string path = "/tmp/banshee_demo.bshtrc";
    if (!writeTrace(path, records)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    return path;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string path = argc > 1 ? argv[1] : makeDemoTrace();
    printBanner("Trace replay: user traces through the full system",
                "library integration example (trace format "
                "BSHTRC01, see src/workload/trace.hh)");

    // The factory accepts "trace:<path>" as a workload name: every
    // core replays the trace (with its own phase).
    for (const SchemeKind kind :
         {SchemeKind::Banshee, SchemeKind::Alloy, SchemeKind::NoCache}) {
        SystemConfig c = SystemConfig::scaledDefault();
        c.withScheme(kind);
        c.withAlloyFillProb(0.1);
        c.workload = "trace:" + path;
        c.warmupInstrPerCore = 200'000;
        c.measureInstrPerCore = 400'000;

        std::printf("scheme %-10s : ", schemeKindName(kind));
        std::fflush(stdout);
        System system(c);
        const RunResult r = system.run();
        std::printf("cycles %-12llu missRate %.3f  inPkg %.2f B/i  "
                    "offPkg %.2f B/i\n",
                    static_cast<unsigned long long>(r.cycles), r.missRate,
                    r.inPkgTotalBpi(), r.offPkgTotalBpi());
    }
    return 0;
}
