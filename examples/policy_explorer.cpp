/**
 * @file
 * Domain scenario 2: exploring Banshee's replacement-policy design
 * space on one workload — the knobs a system architect would tune:
 * sampling coefficient, replacement threshold, associativity and tag
 * buffer size. Prints one row per configuration.
 *
 * Usage: policy_explorer [workload]
 */

#include <cstdio>
#include <string>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/system_config.hh"
#include "workload/workloads.hh"

using namespace banshee;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "omnetpp";
    if (!WorkloadFactory::exists(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        return 1;
    }

    printBanner("Banshee policy explorer on '" + workload + "'",
                "Banshee (MICRO'17), Sections 4.2 and 5.5");

    SystemConfig base = SystemConfig::scaledDefault();
    base.workload = workload;
    base.withScheme(SchemeKind::Banshee);
    base.warmupInstrPerCore /= 2;
    base.measureInstrPerCore /= 2;

    std::vector<Experiment> exps;
    auto add = [&](const std::string &label,
                   const std::function<void(SystemConfig &)> &tweak) {
        SystemConfig c = base;
        tweak(c);
        exps.push_back(Experiment{label, c});
    };

    add("default (coeff 0.1, thr auto, 4 way)", [](SystemConfig &) {});
    add("coeff 1.0", [](SystemConfig &c) {
        c.banshee.samplingCoeff = 1.0;
    });
    add("coeff 0.01", [](SystemConfig &c) {
        c.banshee.samplingCoeff = 0.01;
    });
    add("threshold 0 (greedy)", [](SystemConfig &c) {
        c.banshee.replaceThreshold = 0.0;
    });
    add("threshold 10 (sticky)", [](SystemConfig &c) {
        c.banshee.replaceThreshold = 10.0;
    });
    add("1 way", [](SystemConfig &c) { c.banshee.ways = 1; });
    add("8 way", [](SystemConfig &c) { c.banshee.ways = 8; });
    add("tag buffer 256", [](SystemConfig &c) {
        c.banshee.tagBuffer.entries = 256;
    });
    add("LRU every miss", [](SystemConfig &c) {
        c.banshee.policy = BansheeConfig::Policy::LruEveryMiss;
    });
    add("FBR no sampling", [](SystemConfig &c) {
        c.banshee.policy = BansheeConfig::Policy::FbrNoSample;
    });

    const auto results = runExperiments(exps);

    TablePrinter table({"configuration", "cycles", "missRate",
                        "inPkg B/i", "offPkg B/i", "pteUpdates"},
                       13);
    table.printHeader();
    for (std::size_t i = 0; i < exps.size(); ++i) {
        const RunResult &r = results[i];
        table.printRow({exps[i].label, std::to_string(r.cycles),
                        fmt(r.missRate, 3), fmt(r.inPkgTotalBpi()),
                        fmt(r.offPkgTotalBpi()),
                        std::to_string(r.pteUpdateRuns)});
    }

    std::printf("\nThings to look for: greedy replacement (threshold 0) "
                "buys hit rate with replacement\ntraffic; no-sampling "
                "doubles metadata bytes; a tiny tag buffer flushes "
                "PTEs often.\n");
    return 0;
}
