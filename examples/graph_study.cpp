/**
 * @file
 * Domain scenario 1: a throughput-computing (graph analytics) study —
 * the workloads in-package DRAM products target (paper Section 1).
 * Runs the full graph suite under every DRAM cache design and prints
 * a compact comparison: speedup over NoCache, DRAM cache miss rate,
 * and the traffic split across the two memories.
 *
 * Usage: graph_study [--quick]
 */

#include <cstdio>
#include <string>

#include "sim/report.hh"
#include "sim/runner.hh"
#include "sim/system_config.hh"
#include "workload/workloads.hh"

using namespace banshee;

int
main(int argc, char **argv)
{
    SystemConfig base = SystemConfig::scaledDefault();
    if (argc > 1 && std::string(argv[1]) == "--quick") {
        base.warmupInstrPerCore /= 4;
        base.measureInstrPerCore /= 4;
    }

    printBanner("Graph analytics study: all DRAM cache designs on the "
                "multi-threaded graph suite",
                "Banshee (MICRO'17), Sections 1 and 5.2");

    std::vector<Experiment> exps;
    for (const auto &w : WorkloadFactory::graphNames()) {
        for (auto &e : schemeSweep(base, w))
            exps.push_back(std::move(e));
    }
    const auto results = runExperiments(exps);

    TablePrinter table({"workload", "scheme", "speedup", "missRate",
                        "inPkg B/i", "offPkg B/i"},
                       12);
    table.printHeader();

    // Locate the NoCache baseline of each workload for normalization.
    std::map<std::string, Cycle> baseline;
    for (std::size_t i = 0; i < exps.size(); ++i) {
        if (results[i].scheme == "NoCache")
            baseline[results[i].workload] = results[i].cycles;
    }
    for (std::size_t i = 0; i < exps.size(); ++i) {
        const RunResult &r = results[i];
        if (r.scheme == "NoCache")
            continue;
        table.printRow({r.workload, r.scheme,
                        fmt(static_cast<double>(baseline[r.workload]) /
                            r.cycles),
                        fmt(r.missRate, 3), fmt(r.inPkgTotalBpi()),
                        fmt(r.offPkgTotalBpi())});
    }

    std::printf("\nReading guide: graph codes are bandwidth-bound; the "
                "design that moves the fewest\nbytes per instruction "
                "wins. Banshee's demand path moves exactly 64 B per "
                "access\nand replacement is throttled by the "
                "frequency threshold.\n");
    return 0;
}
