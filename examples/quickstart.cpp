/**
 * @file
 * Quickstart: build a 16-core system with a Banshee DRAM cache, run
 * the pagerank workload, and print the headline statistics — the
 * smallest end-to-end use of the library's public API.
 *
 * Usage: quickstart [workload]
 */

#include <cstdio>
#include <string>

#include "sim/system.hh"
#include "sim/system_config.hh"
#include "workload/workloads.hh"

using namespace banshee;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "pagerank";
    if (!WorkloadFactory::exists(workload)) {
        std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
        std::fprintf(stderr, "available:");
        for (const auto &n : WorkloadFactory::allNames())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    // 1. Start from the scaled default system (Table 2 shape, 128 MB
    //    in-package DRAM cache) and pick the Banshee scheme.
    SystemConfig config = SystemConfig::scaledDefault();
    config.workload = workload;
    config.withScheme(SchemeKind::Banshee);

    // 2. Build and run (warmup + measured phase).
    System system(config);
    RunResult r = system.run();

    // 3. Inspect the results.
    std::printf("workload            : %s\n", r.workload.c_str());
    std::printf("scheme              : %s\n", r.scheme.c_str());
    std::printf("instructions        : %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles              : %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("IPC                 : %.3f\n", r.ipc);
    std::printf("DRAM cache accesses : %llu\n",
                static_cast<unsigned long long>(r.dramCacheAccesses));
    std::printf("DRAM cache miss rate: %.1f%%\n", 100.0 * r.missRate);
    std::printf("MPKI                : %.2f\n", r.mpki);
    std::printf("in-pkg  traffic     : %.2f bytes/instr "
                "(hit %.2f, tag+ctr %.2f, repl %.2f)\n",
                r.inPkgTotalBpi(), r.inPkgBpi(TrafficCat::HitData),
                r.inPkgBpi(TrafficCat::Tag) +
                    r.inPkgBpi(TrafficCat::Counter),
                r.inPkgBpi(TrafficCat::Replacement));
    std::printf("off-pkg traffic     : %.2f bytes/instr\n",
                r.offPkgTotalBpi());
    std::printf("bus utilization     : in %.1f%%  off %.1f%%\n",
                100.0 * r.inPkgBusUtil, 100.0 * r.offPkgBusUtil);
    std::printf("PTE update runs     : %llu\n",
                static_cast<unsigned long long>(r.pteUpdateRuns));
    return 0;
}
